//! Discrete-event machinery of the flow-level simulator.
//!
//! A minimal, deterministic event queue: events fire in time order, ties
//! broken by insertion sequence (so same-timestamp events are FIFO, as in
//! ns-3's scheduler).

use score_topology::{ServerId, VmId};
use score_xen::MigrationSample;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Events the S-CORE scenario simulator processes.
#[derive(Debug, Clone, PartialEq)]
pub enum SimEvent {
    /// The token arrives at (the dom0 of) a VM.
    TokenArrive {
        /// The VM receiving the token.
        vm: VmId,
    },
    /// Periodic cost sampling tick.
    Sample,
    /// A trace-driven traffic delta fires: the session applies the next
    /// pending update batch in place (sparse ledger re-pricing), between
    /// token holds and cost samples.
    TrafficShift,
    /// A live migration finished moving a VM.
    MigrationComplete {
        /// The migrated VM.
        vm: VmId,
        /// The destination server.
        to: ServerId,
        /// Timing/bytes of the migration.
        sample: MigrationSample,
    },
    /// End of simulation.
    End,
}

#[derive(Debug, Clone)]
struct Scheduled {
    time_s: f64,
    seq: u64,
    event: SimEvent,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time_s == other.time_s && self.seq == other.seq
    }
}

impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap and we want the
        // earliest event first.
        other
            .time_s
            .total_cmp(&self.time_s)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic time-ordered event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
    now_s: f64,
}

impl EventQueue {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `time_s`.
    ///
    /// # Panics
    ///
    /// Panics if `time_s` is in the past or not finite.
    pub fn schedule_at(&mut self, time_s: f64, event: SimEvent) {
        assert!(time_s.is_finite(), "event time must be finite");
        assert!(
            time_s >= self.now_s,
            "cannot schedule into the past ({time_s} < {})",
            self.now_s
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { time_s, seq, event });
    }

    /// Schedules `event` `delay_s` seconds from now.
    pub fn schedule_in(&mut self, delay_s: f64, event: SimEvent) {
        self.schedule_at(self.now_s + delay_s, event);
    }

    /// Timestamp of the earliest pending event, without popping it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time_s)
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(f64, SimEvent)> {
        let s = self.heap.pop()?;
        self.now_s = s.time_s;
        Some((s.time_s, s.event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(5.0, SimEvent::Sample);
        q.schedule_at(1.0, SimEvent::TokenArrive { vm: VmId::new(0) });
        q.schedule_at(3.0, SimEvent::End);
        let order: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t).collect();
        assert_eq!(order, vec![1.0, 3.0, 5.0]);
        assert_eq!(q.now_s(), 5.0);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        q.schedule_at(1.0, SimEvent::TokenArrive { vm: VmId::new(1) });
        q.schedule_at(1.0, SimEvent::TokenArrive { vm: VmId::new(2) });
        let (_, e1) = q.pop().unwrap();
        let (_, e2) = q.pop().unwrap();
        assert_eq!(e1, SimEvent::TokenArrive { vm: VmId::new(1) });
        assert_eq!(e2, SimEvent::TokenArrive { vm: VmId::new(2) });
    }

    #[test]
    fn relative_scheduling_advances_with_clock() {
        let mut q = EventQueue::new();
        q.schedule_in(2.0, SimEvent::Sample);
        q.pop();
        q.schedule_in(2.0, SimEvent::End);
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, 4.0);
        assert_eq!(e, SimEvent::End);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn past_scheduling_rejected() {
        let mut q = EventQueue::new();
        q.schedule_at(5.0, SimEvent::Sample);
        q.pop();
        q.schedule_at(1.0, SimEvent::End);
    }

    #[test]
    fn empty_queue() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
    }
}
