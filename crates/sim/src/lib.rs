//! Flow-level discrete-event data-center simulator for S-CORE — the
//! reproduction's stand-in for the paper's ns-3 environment (§VI) — and
//! the **`Scenario`/`Session` experiment API** every binary, example and
//! bench in this repository runs through.
//!
//! * [`spec`] — [`Scenario`]: a fully serde-round-trippable experiment
//!   description (`TopologySpec` × `WorkloadSpec` × `PlacementSpec` ×
//!   `PolicySpec` × `EngineSpec` × `ForecastSpec` × `TimingSpec`), with
//!   builder and paper presets;
//! * [`session`] — [`Session`]: the materialized cluster + token ring +
//!   event clock, advanced with `step`/`run`/`run_to_horizon`; costs are
//!   sampled from an incremental `CostLedger` in `O(1)`;
//! * [`matrix`] — [`ScenarioMatrix`]: policy × topology × intensity
//!   (× engine) sweeps collected into one [`MatrixReport`] with a
//!   single JSON writer; [`MatrixRunner`] fans the cells out onto a
//!   work-stealing pool with bit-identical results;
//! * [`report`] — [`RunReport`]: one unified, JSON-serializable result
//!   format (cost trajectory, migration ratios, link utilization,
//!   flow-table ops);
//! * [`events`] — the deterministic discrete-event queue;
//! * [`metrics`] — utilization CDF snapshots (Fig. 4a), CSV and ASCII
//!   plotting helpers.
//!
//! # Example
//!
//! ```
//! use score_sim::{PolicyKind, Scenario};
//! use score_traffic::TrafficIntensity;
//!
//! let scenario = Scenario::builder()
//!     .canonical_tree(32, 5)
//!     .sparse_traffic(7)
//!     .policy(PolicyKind::HighestLevelFirst)
//!     .horizon(60.0)
//!     .build();
//! let mut session = scenario.session().unwrap();
//! session.run_to_horizon();
//! let report = session.report();
//! assert!(report.final_cost <= report.initial_cost);
//! // The spec round-trips through JSON; the report serializes too.
//! assert_eq!(Scenario::from_json(&scenario.to_json()).unwrap(), scenario);
//! let _json = report.to_json();
//! # let _ = TrafficIntensity::Sparse;
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod events;
pub mod matrix;
pub mod metrics;
pub mod report;
pub mod session;
pub mod spec;

pub use events::{EventQueue, SimEvent};
pub use matrix::{MatrixCell, MatrixReport, MatrixRunner, RunLength, ScenarioMatrix};
pub use metrics::{ascii_chart, jain_fairness, series_to_csv, UtilizationSnapshot};
pub use report::{
    FlowTableOps, ForecastStats, HypervisorStats, MigrationEvent, RecoveryStats, RunReport,
    TraceReplayStats,
};
pub use session::{FaultOutcome, Session, TrafficPhase};
pub use spec::{
    EngineSpec, ForecastSpec, PlacementSpec, PolicyKind, PolicySpec, ResourceSpec, Scenario,
    ScenarioBuilder, ScenarioError, TimingSpec, TopologyKind, TopologySpec, TraceSpec,
    WorkloadSpec,
};
