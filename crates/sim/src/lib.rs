//! Flow-level discrete-event data-center simulator for S-CORE — the
//! reproduction's stand-in for the paper's ns-3 environment (§VI).
//!
//! The paper simulates 2560-host canonical trees and k = 16 fat-trees in
//! ns-3, with each server modelled as "a VM hypervisor network application"
//! supporting in- and out-migration. S-CORE's decisions depend on *average*
//! pairwise rates over long windows, not packet-level dynamics, so this
//! simulator operates at flow granularity:
//!
//! * [`events`] — a deterministic discrete-event queue;
//! * [`scenario`] — topology + workload + initial-placement recipes at
//!   paper scale and CI scale;
//! * [`runner`] — drives the S-CORE token ring over simulated time,
//!   charging token-hold and token-pass delays and sampling the pre-copy
//!   model for every migration (cost-vs-time of Fig. 3d–i, Fig. 4b);
//! * [`metrics`] — utilization CDF snapshots (Fig. 4a), CSV and ASCII
//!   plotting helpers.
//!
//! # Example
//!
//! ```
//! use score_sim::{build_world, run_simulation, PolicyKind, ScenarioConfig, SimConfig};
//! use score_traffic::TrafficIntensity;
//!
//! let mut world = build_world(&ScenarioConfig::small_canonical(TrafficIntensity::Sparse, 7));
//! let config = SimConfig { t_end_s: 60.0, ..SimConfig::paper_default() };
//! let report = run_simulation(
//!     &mut world.cluster,
//!     &world.traffic,
//!     PolicyKind::HighestLevelFirst,
//!     &config,
//! );
//! assert!(report.final_cost <= report.initial_cost);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod events;
pub mod metrics;
pub mod runner;
pub mod scenario;

pub use events::{EventQueue, SimEvent};
pub use metrics::{ascii_chart, jain_fairness, series_to_csv, UtilizationSnapshot};
pub use runner::{
    run_dynamic, run_simulation, HypervisorStats, MigrationEvent, PolicyKind, SimConfig,
    SimReport, TrafficPhase,
};
pub use scenario::{build_world, ScenarioConfig, TopologyKind, World};
