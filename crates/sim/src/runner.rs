//! The scenario runner: S-CORE over simulated time.
//!
//! Drives a [`TokenRing`] through the event queue so that cost reduction
//! unfolds on a wall-clock axis (the x-axis of Fig. 3d–i and Fig. 4b):
//! each token hold costs decision time, token passing costs network
//! latency, and every accepted migration samples the pre-copy model for
//! its duration, bytes and downtime.

use rand::rngs::StdRng;
use rand::SeedableRng;
use score_core::{
    Cluster, CostModel, HighestLevelFirst, IterationStats, RandomNext, RoundRobin, ScoreConfig,
    ScoreEngine, TokenPolicy, TokenRing,
};
use score_topology::{ServerId, VmId};
use score_traffic::{CbrLoad, PairTraffic};
use score_xen::{PreCopyConfig, PreCopyModel};
use serde::{Deserialize, Serialize};

use crate::events::{EventQueue, SimEvent};

/// Token policy selector for configuration files and CSV columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Round-Robin (§V-A1).
    RoundRobin,
    /// Highest-Level-First (§V-A2, Algorithm 1).
    HighestLevelFirst,
    /// Highest-Cost-First (TR-2013-338-inspired extension).
    HighestCostFirst,
    /// Uniform random (ablation).
    Random,
}

impl PolicyKind {
    /// Lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::RoundRobin => "rr",
            PolicyKind::HighestLevelFirst => "hlf",
            PolicyKind::HighestCostFirst => "hcf",
            PolicyKind::Random => "random",
        }
    }

    /// Instantiates the policy.
    pub fn build(self, seed: u64) -> Box<dyn TokenPolicy> {
        match self {
            PolicyKind::RoundRobin => Box::new(RoundRobin::new()),
            PolicyKind::HighestLevelFirst => Box::new(HighestLevelFirst::new()),
            PolicyKind::HighestCostFirst => {
                Box::new(score_core::HighestCostFirst::paper_default())
            }
            PolicyKind::Random => Box::new(RandomNext::new(seed)),
        }
    }

    /// Both paper policies.
    pub fn paper_policies() -> [PolicyKind; 2] {
        [PolicyKind::HighestLevelFirst, PolicyKind::RoundRobin]
    }

    /// Every implemented policy (paper pair + extensions/ablations).
    pub fn all() -> [PolicyKind; 4] {
        [
            PolicyKind::HighestLevelFirst,
            PolicyKind::RoundRobin,
            PolicyKind::HighestCostFirst,
            PolicyKind::Random,
        ]
    }
}

/// Timing and algorithm parameters of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Simulation horizon in seconds (the paper plots 700–800 s).
    pub t_end_s: f64,
    /// Cost sampling interval in seconds.
    pub sample_interval_s: f64,
    /// Time a dom0 holds the token: flow-table aggregation + probes +
    /// decision.
    pub token_hold_s: f64,
    /// Network latency of passing the token to the next dom0.
    pub token_pass_s: f64,
    /// S-CORE decision parameters (`c_m`, bandwidth threshold).
    pub score: ScoreConfig,
    /// Pre-copy model for migration overheads.
    pub precopy: PreCopyConfig,
    /// Background load seen by migration traffic.
    pub background: CbrLoad,
    /// RNG seed (migration model noise, random policy).
    pub seed: u64,
}

impl SimConfig {
    /// Defaults that let a few thousand token holds fit the paper's 700 s
    /// horizon.
    pub fn paper_default() -> Self {
        SimConfig {
            t_end_s: 700.0,
            sample_interval_s: 5.0,
            token_hold_s: 0.08,
            token_pass_s: 0.02,
            score: ScoreConfig::paper_default(),
            precopy: PreCopyConfig::paper_default(),
            background: CbrLoad::IDLE,
            seed: 42,
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::paper_default()
    }
}

/// One migration performed during the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationEvent {
    /// Decision time.
    pub time_s: f64,
    /// The VM that moved.
    pub vm: VmId,
    /// Source server.
    pub from: ServerId,
    /// Destination server.
    pub to: ServerId,
    /// Lemma-3 gain of the move.
    pub gain: f64,
    /// Bytes moved by pre-copy.
    pub bytes: f64,
    /// Total migration duration in seconds.
    pub duration_s: f64,
    /// Stop-and-copy downtime in seconds.
    pub downtime_s: f64,
}

/// Result of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// `(time, Eq.-(2) cost)` samples.
    pub cost_series: Vec<(f64, f64)>,
    /// Cost at t = 0.
    pub initial_cost: f64,
    /// Cost at the horizon.
    pub final_cost: f64,
    /// All migrations in decision order.
    pub migrations: Vec<MigrationEvent>,
    /// Per-iteration (|V| token holds) migration statistics — the Fig. 2
    /// series.
    pub iterations: Vec<IterationStats>,
    /// Token holds executed.
    pub token_holds: usize,
}

/// In-/out-migration counts for one hypervisor — the bookkeeping the
/// paper's per-server "VM hypervisor network application" maintains
/// ("supporting in-migration … as well as out-migration", §VI).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HypervisorStats {
    /// VMs that moved onto this server.
    pub in_migrations: u32,
    /// VMs that moved off this server.
    pub out_migrations: u32,
}

impl SimReport {
    /// Total migration bytes.
    pub fn total_migration_bytes(&self) -> f64 {
        self.migrations.iter().map(|m| m.bytes).sum()
    }

    /// Per-server in-/out-migration counts (indexed by raw server id).
    pub fn hypervisor_stats(&self, num_servers: usize) -> Vec<HypervisorStats> {
        let mut stats = vec![HypervisorStats::default(); num_servers];
        for m in &self.migrations {
            stats[m.from.index()].out_migrations += 1;
            stats[m.to.index()].in_migrations += 1;
        }
        stats
    }

    /// Maximum number of migrations in flight at any instant (each
    /// migration occupies `[time_s, time_s + duration_s)`).
    pub fn max_concurrent_migrations(&self) -> usize {
        let mut events: Vec<(f64, i32)> = Vec::with_capacity(self.migrations.len() * 2);
        for m in &self.migrations {
            events.push((m.time_s, 1));
            events.push((m.time_s + m.duration_s, -1));
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut current = 0i32;
        let mut max = 0i32;
        for (_, delta) in events {
            current += delta;
            max = max.max(current);
        }
        max.max(0) as usize
    }

    /// Total VM downtime across all migrations.
    pub fn total_downtime_s(&self) -> f64 {
        self.migrations.iter().map(|m| m.downtime_s).sum()
    }

    /// Cost series normalised by a baseline cost (the "communication cost
    /// ratio" y-axis of Fig. 3d–i, with the GA-optimal as baseline).
    ///
    /// # Panics
    ///
    /// Panics if `baseline_cost` is not positive.
    pub fn ratio_series(&self, baseline_cost: f64) -> Vec<(f64, f64)> {
        assert!(baseline_cost > 0.0, "baseline cost must be positive");
        self.cost_series.iter().map(|&(t, c)| (t, c / baseline_cost)).collect()
    }
}

/// Runs S-CORE under the given policy over simulated time, mutating
/// `cluster` in place.
pub fn run_simulation(
    cluster: &mut Cluster,
    traffic: &PairTraffic,
    policy: PolicyKind,
    config: &SimConfig,
) -> SimReport {
    let num_vms = cluster.num_vms();
    let engine = ScoreEngine::new(CostModel::paper_default(), config.score);
    let model = engine.cost_model().clone();
    let mut ring = TokenRing::new(engine, policy.build(config.seed), num_vms);
    let precopy = PreCopyModel::new(config.precopy);
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut queue = EventQueue::new();
    queue.schedule_at(0.0, SimEvent::Sample);
    queue.schedule_at(config.token_hold_s.max(1e-6), SimEvent::TokenArrive {
        vm: ring.holder().unwrap_or(VmId::new(0)),
    });
    queue.schedule_at(config.t_end_s, SimEvent::End);

    let initial_cost = model.total_cost(cluster.allocation(), traffic, cluster.topo());
    let mut report = SimReport {
        cost_series: Vec::new(),
        initial_cost,
        final_cost: initial_cost,
        migrations: Vec::new(),
        iterations: Vec::new(),
        token_holds: 0,
    };

    // Per-iteration accumulator (an iteration is |V| token holds).
    let mut iter_stats = IterationStats { steps: 0, migrations: 0, total_gain: 0.0 };

    while let Some((t, event)) = queue.pop() {
        match event {
            SimEvent::End => break,
            SimEvent::Sample => {
                let cost = model.total_cost(cluster.allocation(), traffic, cluster.topo());
                report.cost_series.push((t, cost));
                if t + config.sample_interval_s <= config.t_end_s {
                    queue.schedule_in(config.sample_interval_s, SimEvent::Sample);
                }
            }
            SimEvent::MigrationComplete { .. } => {
                // Allocation already switched at decision time; the
                // completion event only exists to order bookkeeping if a
                // consumer wants in-flight counts.
            }
            SimEvent::TokenArrive { vm: _ } => {
                let Some(outcome) = ring.step(cluster, traffic) else { continue };
                report.token_holds += 1;
                iter_stats.steps += 1;
                if let Some(target) = outcome.decision.target {
                    let sample = precopy.migrate(config.background, &mut rng);
                    report.migrations.push(MigrationEvent {
                        time_s: t,
                        vm: outcome.holder,
                        from: outcome.source,
                        to: target,
                        gain: outcome.decision.gain,
                        bytes: sample.migrated_bytes,
                        duration_s: sample.total_time_s,
                        downtime_s: sample.downtime_s,
                    });
                    iter_stats.migrations += 1;
                    iter_stats.total_gain += outcome.decision.gain;
                    queue.schedule_in(
                        sample.total_time_s,
                        SimEvent::MigrationComplete { vm: outcome.holder, to: target, sample },
                    );
                }
                if iter_stats.steps as u32 >= num_vms {
                    report.iterations.push(iter_stats);
                    iter_stats = IterationStats { steps: 0, migrations: 0, total_gain: 0.0 };
                }
                if let Some(next) = outcome.next {
                    queue.schedule_in(
                        config.token_hold_s + config.token_pass_s,
                        SimEvent::TokenArrive { vm: next },
                    );
                }
            }
        }
    }

    if iter_stats.steps > 0 {
        report.iterations.push(iter_stats);
    }
    report.final_cost = model.total_cost(cluster.allocation(), traffic, cluster.topo());
    report
}

/// One phase of a dynamic workload: a traffic pattern active for a
/// duration.
#[derive(Debug, Clone)]
pub struct TrafficPhase {
    /// How long this phase lasts, seconds.
    pub duration_s: f64,
    /// The pairwise loads during the phase.
    pub traffic: PairTraffic,
}

/// Runs S-CORE across a sequence of traffic phases — the paper's
/// "always-on" operation: when the TM shifts, the token keeps circulating
/// and the allocation re-converges to the new pattern.
///
/// Returns one [`SimReport`] per phase; the cluster state carries over
/// between phases (time axes restart per phase).
///
/// # Panics
///
/// Panics if `phases` is empty or populations mismatch the cluster.
pub fn run_dynamic(
    cluster: &mut Cluster,
    phases: &[TrafficPhase],
    policy: PolicyKind,
    config: &SimConfig,
) -> Vec<SimReport> {
    assert!(!phases.is_empty(), "need at least one phase");
    phases
        .iter()
        .enumerate()
        .map(|(i, phase)| {
            let phase_config = SimConfig {
                t_end_s: phase.duration_s,
                seed: config.seed.wrapping_add(i as u64),
                ..config.clone()
            };
            run_simulation(cluster, &phase.traffic, policy, &phase_config)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{build_world, ScenarioConfig};
    use score_traffic::TrafficIntensity;

    fn quick_config() -> SimConfig {
        SimConfig {
            t_end_s: 120.0,
            sample_interval_s: 5.0,
            token_hold_s: 0.05,
            token_pass_s: 0.01,
            ..SimConfig::paper_default()
        }
    }

    #[test]
    fn simulation_reduces_cost_over_time() {
        let mut world = build_world(&ScenarioConfig::small_canonical(TrafficIntensity::Sparse, 1));
        let report = run_simulation(
            &mut world.cluster,
            &world.traffic,
            PolicyKind::RoundRobin,
            &quick_config(),
        );
        assert!(report.final_cost < report.initial_cost);
        // Series is non-increasing (S-CORE never performs a bad move).
        for w in report.cost_series.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-6);
        }
        assert!(report.token_holds > 0);
        assert!(!report.migrations.is_empty());
    }

    #[test]
    fn iteration_stats_group_by_population() {
        let mut world = build_world(&ScenarioConfig::small_canonical(TrafficIntensity::Sparse, 2));
        let vms = world.cluster.num_vms() as usize;
        let report = run_simulation(
            &mut world.cluster,
            &world.traffic,
            PolicyKind::RoundRobin,
            &quick_config(),
        );
        for (i, it) in report.iterations.iter().enumerate() {
            if i + 1 < report.iterations.len() {
                assert_eq!(it.steps, vms, "full iterations cover the population");
            }
        }
    }

    #[test]
    fn hlf_and_rr_both_converge() {
        for policy in PolicyKind::paper_policies() {
            let mut world =
                build_world(&ScenarioConfig::small_canonical(TrafficIntensity::Sparse, 3));
            let report =
                run_simulation(&mut world.cluster, &world.traffic, policy, &quick_config());
            assert!(
                report.final_cost < report.initial_cost,
                "{} must improve the initial placement",
                policy.name()
            );
        }
    }

    #[test]
    fn migration_events_have_sane_overheads() {
        let mut world = build_world(&ScenarioConfig::small_canonical(TrafficIntensity::Sparse, 4));
        let report = run_simulation(
            &mut world.cluster,
            &world.traffic,
            PolicyKind::HighestLevelFirst,
            &quick_config(),
        );
        for m in &report.migrations {
            assert!(m.gain > 0.0);
            assert!(m.bytes > 50e6 && m.bytes < 200e6);
            assert!(m.duration_s > 1.0 && m.duration_s < 15.0);
            assert!(m.downtime_s < 0.05);
        }
        assert!(report.total_migration_bytes() > 0.0);
        assert!(report.total_downtime_s() > 0.0);
    }

    #[test]
    fn ratio_series_normalises() {
        let mut world = build_world(&ScenarioConfig::small_canonical(TrafficIntensity::Sparse, 5));
        let report = run_simulation(
            &mut world.cluster,
            &world.traffic,
            PolicyKind::RoundRobin,
            &quick_config(),
        );
        let ratios = report.ratio_series(report.final_cost);
        assert!((ratios.last().unwrap().1 - 1.0).abs() < 0.2);
        assert!(ratios[0].1 >= ratios.last().unwrap().1);
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = ScenarioConfig::small_canonical(TrafficIntensity::Sparse, 6);
        let run = || {
            let mut world = build_world(&cfg);
            run_simulation(
                &mut world.cluster,
                &world.traffic,
                PolicyKind::HighestLevelFirst,
                &quick_config(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.final_cost, b.final_cost);
        assert_eq!(a.migrations.len(), b.migrations.len());
        assert_eq!(a.token_holds, b.token_holds);
    }

    #[test]
    fn hypervisor_stats_balance() {
        let mut world = build_world(&ScenarioConfig::small_canonical(TrafficIntensity::Sparse, 11));
        let servers = world.topo.num_servers();
        let report = run_simulation(
            &mut world.cluster,
            &world.traffic,
            PolicyKind::RoundRobin,
            &quick_config(),
        );
        let stats = report.hypervisor_stats(servers);
        let ins: u32 = stats.iter().map(|s| s.in_migrations).sum();
        let outs: u32 = stats.iter().map(|s| s.out_migrations).sum();
        assert_eq!(ins as usize, report.migrations.len());
        assert_eq!(outs as usize, report.migrations.len());
        // Migrations overlap in time (token keeps moving while pre-copy
        // runs), so concurrency is at least 1 when any migration happened.
        if !report.migrations.is_empty() {
            assert!(report.max_concurrent_migrations() >= 1);
        }
    }

    #[test]
    fn dynamic_phases_readapt() {
        use score_traffic::WorkloadConfig;
        // Phase 1: workload A; phase 2: a fresh workload B over the same
        // population. S-CORE must re-converge after the shift.
        let mut world = build_world(&ScenarioConfig::small_canonical(TrafficIntensity::Sparse, 8));
        let num_vms = world.traffic.num_vms();
        let traffic_b = WorkloadConfig::new(num_vms, 999).generate();
        let phases = vec![
            TrafficPhase { duration_s: 120.0, traffic: world.traffic.clone() },
            TrafficPhase { duration_s: 120.0, traffic: traffic_b },
        ];
        let reports = run_dynamic(
            &mut world.cluster,
            &phases,
            PolicyKind::HighestLevelFirst,
            &quick_config(),
        );
        assert_eq!(reports.len(), 2);
        // Phase 1 improves workload A.
        assert!(reports[0].final_cost < reports[0].initial_cost);
        // The shift leaves the allocation mismatched to workload B; the
        // second phase finds new migrations and improves again.
        assert!(reports[1].migrations.len() > 3, "must re-adapt after the TM shift");
        assert!(reports[1].final_cost < reports[1].initial_cost);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn dynamic_requires_phases() {
        let mut world = build_world(&ScenarioConfig::small_canonical(TrafficIntensity::Sparse, 9));
        let _ = run_dynamic(
            &mut world.cluster,
            &[],
            PolicyKind::RoundRobin,
            &quick_config(),
        );
    }

    #[test]
    fn stability_no_oscillation_under_static_traffic() {
        // VM stability (paper §VI-B): once converged, no VM keeps bouncing.
        let mut world = build_world(&ScenarioConfig::small_canonical(TrafficIntensity::Sparse, 10));
        let config = SimConfig { t_end_s: 250.0, ..quick_config() };
        let report = run_simulation(
            &mut world.cluster,
            &world.traffic,
            PolicyKind::RoundRobin,
            &config,
        );
        let mut per_vm = std::collections::HashMap::new();
        for m in &report.migrations {
            *per_vm.entry(m.vm).or_insert(0usize) += 1;
        }
        let max_moves = per_vm.values().copied().max().unwrap_or(0);
        assert!(max_moves <= 4, "a VM migrated {max_moves} times under static traffic");
        // And the tail of the run is quiet.
        let late = report
            .migrations
            .iter()
            .filter(|m| m.time_s > 200.0)
            .count();
        assert_eq!(late, 0, "migrations continued after convergence");
    }

    #[test]
    fn policy_kind_metadata() {
        assert_eq!(PolicyKind::RoundRobin.name(), "rr");
        assert_eq!(PolicyKind::HighestLevelFirst.name(), "hlf");
        assert_eq!(PolicyKind::Random.name(), "random");
        assert_eq!(PolicyKind::paper_policies().len(), 2);
    }
}
