//! Measurement helpers shared by the experiment binaries.
//!
//! * [`UtilizationSnapshot`] — per-tier link-utilization CDFs of a
//!   cluster's current allocation (the Fig. 4a comparison), with
//!   overload counting and [`jain_fairness`] over the busiest links;
//! * [`series_to_csv`] — `(t, value)` series in the two-column CSV
//!   format every figure binary writes under `results/`;
//! * [`ascii_chart`] — quick multi-series terminal plots for the
//!   human-readable experiment summaries.

use score_core::{Cluster, LinkLoadMap};
use score_topology::Level;
use score_traffic::PairTraffic;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Per-layer link-utilization snapshot (the Fig. 4a ingredient).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilizationSnapshot {
    /// Sorted utilizations of core (3-level) links.
    pub core: Vec<f64>,
    /// Sorted utilizations of aggregation (2-level) links.
    pub aggregation: Vec<f64>,
    /// Sorted utilizations of host/ToR (1-level) links.
    pub edge: Vec<f64>,
}

impl UtilizationSnapshot {
    /// Captures the utilization CDFs of the cluster's current allocation.
    pub fn capture(cluster: &Cluster, traffic: &PairTraffic) -> Self {
        let map = LinkLoadMap::compute(cluster.allocation(), traffic, cluster.topo());
        UtilizationSnapshot {
            core: map.utilization_cdf(Level::CORE),
            aggregation: map.utilization_cdf(Level::AGGREGATION),
            edge: map.utilization_cdf(Level::RACK),
        }
    }

    /// Mean utilization of a layer's links.
    pub fn mean(values: &[f64]) -> f64 {
        if values.is_empty() {
            0.0
        } else {
            values.iter().sum::<f64>() / values.len() as f64
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of a sorted layer.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or the layer is empty.
    pub fn quantile(values: &[f64], q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        assert!(!values.is_empty(), "empty layer");
        let idx = ((values.len() - 1) as f64 * q).round() as usize;
        values[idx]
    }

    /// Renders the snapshot as CSV rows `layer,utilization,cdf`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("layer,utilization,cdf\n");
        for (name, values) in [
            ("core", &self.core),
            ("aggregation", &self.aggregation),
            ("edge", &self.edge),
        ] {
            let n = values.len().max(1);
            for (i, u) in values.iter().enumerate() {
                let _ = writeln!(out, "{name},{u:.6},{:.6}", (i + 1) as f64 / n as f64);
            }
        }
        out
    }
}

/// Jain's fairness index of a load vector: `(Σx)² / (n · Σx²)`, in
/// `(0, 1]`; 1 means perfectly even utilization. Useful for contrasting
/// S-CORE (which *empties* upper layers, lowering the mean) with Remedy
/// (which *balances* them, raising fairness).
///
/// Returns 1.0 for empty or all-zero inputs (vacuously fair).
pub fn jain_fairness(values: &[f64]) -> f64 {
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|v| v * v).sum();
    if sum_sq == 0.0 || values.is_empty() {
        return 1.0;
    }
    (sum * sum) / (values.len() as f64 * sum_sq)
}

/// Writes a `(t, value)` series as CSV with the given column names.
pub fn series_to_csv(series: &[(f64, f64)], x_name: &str, y_name: &str) -> String {
    let mut out = format!("{x_name},{y_name}\n");
    for &(x, y) in series {
        let _ = writeln!(out, "{x:.3},{y:.6}");
    }
    out
}

/// Renders a compact ASCII line chart of one or more named series on a
/// shared axis — the terminal stand-in for the paper's line plots.
pub fn ascii_chart(series: &[(&str, &[(f64, f64)])], width: usize, height: usize) -> String {
    if series.is_empty() || series.iter().all(|(_, s)| s.is_empty()) {
        return String::from("(no data)\n");
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for (_, s) in series {
        for &(x, y) in *s {
            x_min = x_min.min(x);
            x_max = x_max.max(x);
            y_min = y_min.min(y);
            y_max = y_max.max(y);
        }
    }
    if (x_max - x_min).abs() < f64::EPSILON {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < f64::EPSILON {
        y_max = y_min + 1.0;
    }
    let width = width.max(16);
    let height = height.max(4);
    let mut grid = vec![vec![' '; width]; height];
    let marks = ['*', '+', 'o', 'x', '#', '@'];
    for (si, (_, s)) in series.iter().enumerate() {
        let mark = marks[si % marks.len()];
        for &(x, y) in *s {
            let cx = (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
            let cy = (((y - y_min) / (y_max - y_min)) * (height - 1) as f64).round() as usize;
            grid[height - 1 - cy][cx] = mark;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "y: {y_min:.3} .. {y_max:.3}");
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    let _ = writeln!(out, "+{}", "-".repeat(width));
    let _ = writeln!(out, " x: {x_min:.1} .. {x_max:.1}");
    for (si, (name, _)) in series.iter().enumerate() {
        let _ = writeln!(out, "   {} {}", marks[si % marks.len()], name);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Scenario;
    use score_traffic::TrafficIntensity;

    fn fresh_snapshot(seed: u64) -> UtilizationSnapshot {
        let session = Scenario::small_canonical(TrafficIntensity::Sparse, seed)
            .session()
            .expect("preset scenario is feasible");
        UtilizationSnapshot::capture(session.cluster(), session.traffic())
    }

    #[test]
    fn snapshot_layers_are_sorted() {
        let snap = fresh_snapshot(1);
        for layer in [&snap.core, &snap.aggregation, &snap.edge] {
            assert!(layer.windows(2).all(|w| w[0] <= w[1]));
            assert!(!layer.is_empty());
        }
        // Random placement routes plenty of traffic through the core.
        assert!(UtilizationSnapshot::mean(&snap.core) > 0.0);
    }

    #[test]
    fn quantiles() {
        let values = vec![0.1, 0.2, 0.3, 0.4, 0.5];
        assert_eq!(UtilizationSnapshot::quantile(&values, 0.0), 0.1);
        assert_eq!(UtilizationSnapshot::quantile(&values, 1.0), 0.5);
        assert_eq!(UtilizationSnapshot::quantile(&values, 0.5), 0.3);
    }

    #[test]
    #[should_panic(expected = "empty layer")]
    fn quantile_of_empty_panics() {
        let _ = UtilizationSnapshot::quantile(&[], 0.5);
    }

    #[test]
    fn jain_fairness_properties() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
        assert!((jain_fairness(&[0.5, 0.5, 0.5]) - 1.0).abs() < 1e-12);
        // One hot link among cold ones: fairness tends to 1/n.
        let skewed = jain_fairness(&[1.0, 0.0, 0.0, 0.0]);
        assert!((skewed - 0.25).abs() < 1e-12);
        let mild = jain_fairness(&[0.6, 0.4]);
        assert!(mild > skewed && mild < 1.0);
    }

    #[test]
    fn csv_formats() {
        let csv = series_to_csv(&[(0.0, 1.0), (5.0, 0.5)], "t", "ratio");
        assert!(csv.starts_with("t,ratio\n"));
        assert!(csv.contains("5.000,0.500000"));
        let snap = fresh_snapshot(2);
        let csv = snap.to_csv();
        assert!(csv.starts_with("layer,utilization,cdf\n"));
        assert!(csv.contains("core,"));
        assert!(csv.contains("aggregation,"));
    }

    #[test]
    fn ascii_chart_renders() {
        let a: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, 5.0 - i as f64 * 0.08)).collect();
        let b: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, 3.0 - i as f64 * 0.03)).collect();
        let chart = ascii_chart(&[("hlf", &a), ("rr", &b)], 60, 12);
        assert!(chart.contains('*'));
        assert!(chart.contains('+'));
        assert!(chart.contains("hlf"));
        assert!(chart.lines().count() > 12);
        assert_eq!(ascii_chart(&[], 10, 5), "(no data)\n");
    }
}
