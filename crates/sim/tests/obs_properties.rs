//! Property pins for the observability determinism contract: attaching a
//! `score_obs::ObsHandle` (registry + journal, all instruments live) to a
//! `Session` must leave the `RunReport` JSON **byte-identical** to a bare
//! run — on tree and fat-tree fabrics, across every policy, on static,
//! trace-driven and forecasted workloads.
//!
//! The only normalized fields are the documented wall-clock diagnostics
//! (`trace.apply_ns_total` / `apply_ns_max`), which differ between any two
//! runs of the *same* scenario, observability or not.

use proptest::prelude::*;
use score_obs::ObsHandle;
use score_sim::{
    ForecastSpec, PolicyKind, RunReport, Scenario, TimingSpec, TopologySpec, TraceSpec,
    WorkloadSpec,
};
use score_trace::DiurnalShape;
use score_traffic::TrafficIntensity;

fn quick_scenario(tree: bool, policy: PolicyKind, seed: u64) -> Scenario {
    let topology = if tree {
        TopologySpec::CanonicalTree {
            racks: 4,
            hosts_per_rack: 4,
            racks_per_agg: 2,
            cores: 1,
            capacities: None,
        }
    } else {
        TopologySpec::FatTree {
            k: 4,
            capacities: None,
        }
    };
    let mut s = Scenario::builder()
        .topology(topology)
        .num_vms(24)
        .intensity(TrafficIntensity::Medium)
        .workload_seed(seed)
        .policy(policy)
        .seed(seed)
        .build();
    s.timing = TimingSpec {
        t_end_s: 40.0,
        sample_interval_s: 5.0,
        token_hold_s: 0.05,
        token_pass_s: 0.01,
    };
    s
}

fn with_diurnal_trace(mut scenario: Scenario, seed: u64) -> Scenario {
    scenario.workload = WorkloadSpec::Trace {
        spec: TraceSpec::Diurnal {
            num_vms: 24,
            intensity: TrafficIntensity::Sparse,
            seed,
            shape: DiurnalShape {
                period_s: 20.0,
                amplitude: 0.5,
                step_s: 1.0,
                horizon_s: 40.0,
            },
        },
    };
    scenario
}

/// Runs `scenario` to the horizon (through every trace segment) with or
/// without observability attached, returning the normalized report JSON.
fn run_json(scenario: &Scenario, obs: Option<&ObsHandle>) -> String {
    let mut session = scenario.session().expect("scenario materializes");
    if let Some(handle) = obs {
        session.attach_obs(handle);
        assert!(session.obs_attached());
    }
    let reports = session.run_trace().expect("run to the end of the trace");
    assert_eq!(
        session.ledger_resyncs(),
        0,
        "obs must never dirty the ledger"
    );
    let normalize = |mut r: RunReport| {
        r.trace.apply_ns_total = 0;
        r.trace.apply_ns_max = 0;
        r.to_json()
    };
    reports
        .into_iter()
        .map(normalize)
        .collect::<Vec<_>>()
        .join("\n")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Static workloads: attached ≡ bare, byte for byte, and the attached
    /// run actually recorded decisions (the contract is "invisible", not
    /// "inert").
    #[test]
    fn obs_attached_static_run_is_byte_identical(
        tree_pick in 0u8..2,
        policy_pick in 0usize..5,
        seed in 0u64..10_000,
    ) {
        let policy = PolicyKind::all()[policy_pick];
        let scenario = quick_scenario(tree_pick == 1, policy, seed);
        let bare = run_json(&scenario, None);
        let handle = ObsHandle::new();
        let attached = run_json(&scenario, Some(&handle));
        prop_assert_eq!(bare, attached,
            "obs changed a static run (tree={}, policy={:?}, seed={})",
            tree_pick == 1, policy, seed);
        let hops = handle
            .counter("score_token_hops_total{policy=\"unreached\"}")
            .unwrap()
            .get();
        prop_assert_eq!(hops, 0, "label isolation broke");
        let json = handle.snapshot_json().unwrap();
        prop_assert!(json.contains("score_decision_latency_ns"), "no decisions recorded: {}", json);
        prop_assert!(!handle.journal().unwrap().is_empty(), "journal stayed empty");
    }

    /// Trace-driven + forecasted workloads: attached ≡ bare across
    /// segment rebinds, forecast-error scoring and the oracle pipeline.
    #[test]
    fn obs_attached_trace_run_is_byte_identical(
        tree_pick in 0u8..2,
        policy_pick in 0usize..5,
        seed in 0u64..10_000,
        forecast_pick in 0u8..3,
    ) {
        let policy = PolicyKind::all()[policy_pick];
        let mut scenario = with_diurnal_trace(
            quick_scenario(tree_pick == 1, policy, seed),
            seed,
        );
        scenario.forecast = match forecast_pick {
            0 => ForecastSpec::None,
            1 => ForecastSpec::Ewma { alpha: 0.3, horizon_s: 5.0 },
            _ => ForecastSpec::TraceOracle { horizon_s: 5.0 },
        };
        let bare = run_json(&scenario, None);
        let attached = run_json(&scenario, Some(&ObsHandle::new()));
        prop_assert_eq!(bare, attached,
            "obs changed a trace run (tree={}, policy={:?}, seed={}, forecast={})",
            tree_pick == 1, policy, seed, forecast_pick);
    }
}

/// The forecast-error surface lands in the report: an active
/// nonzero-horizon forecaster on a time-varying trace scores evaluations,
/// and the oracle's MAE beats (or ties) the EWMA's on the same trace.
#[test]
fn forecast_error_metrics_populate() {
    let base = with_diurnal_trace(quick_scenario(true, PolicyKind::RoundRobin, 7), 7);

    let mut reactive = base.clone();
    reactive.forecast = ForecastSpec::None;
    let mut s = reactive.session().unwrap();
    let reports = s.run_trace().unwrap();
    for r in &reports {
        assert_eq!(r.forecast.error_samples, 0);
        assert_eq!(r.forecast.mae, 0.0);
        assert_eq!(r.forecast.bias, 0.0);
    }

    let mae_of = |spec: ForecastSpec| {
        let mut sc = base.clone();
        sc.forecast = spec;
        let mut session = sc.session().unwrap();
        let reports = session.run_trace().unwrap();
        let (samples, weighted): (u64, f64) = reports.iter().fold((0, 0.0), |(n, w), r| {
            (
                n + r.forecast.error_samples,
                w + r.forecast.mae * r.forecast.error_samples as f64,
            )
        });
        assert!(samples > 0, "active forecaster scored no evaluations");
        weighted / samples as f64
    };
    let ewma_mae = mae_of(ForecastSpec::Ewma {
        alpha: 0.3,
        horizon_s: 5.0,
    });
    let oracle_mae = mae_of(ForecastSpec::TraceOracle { horizon_s: 5.0 });
    assert!(
        oracle_mae <= ewma_mae + 1e-9,
        "the exact-lookahead oracle (mae={oracle_mae}) must not lose to EWMA (mae={ewma_mae})"
    );
}
