//! Property-based serial/parallel equivalence for [`MatrixRunner`].
//!
//! The parallel runner's whole contract is that parallelism is
//! *unobservable* in the results: for any sweep the work-stealing pool
//! must produce a [`MatrixReport`] whose JSON is **byte-identical** to
//! the serial [`ScenarioMatrix::run`] at every thread count — same cell
//! order, same per-cell seeding, same floating-point trajectories.
//! Random policy × topology × intensity grids (plus iteration caps and
//! engine variants) are swept at 1, 2 and 8 threads and compared
//! byte-for-byte against the serial reference.
//!
//! Trace-workload sweeps get the one documented carve-out: their
//! reports embed wall-clock rebind diagnostics
//! (`RunReport.trace.apply_ns_total`/`apply_ns_max`) that differ
//! between *any* two runs, so they are compared with exactly those two
//! fields normalized — everything simulated must still match.

use proptest::prelude::*;
use score_sim::{
    EngineSpec, MatrixReport, PolicyKind, Scenario, ScenarioMatrix, TimingSpec, TopologySpec,
};
use score_traffic::TrafficIntensity;

/// A CI-sized base scenario the random grids expand from.
fn quick_base(seed: u64) -> Scenario {
    let mut s = Scenario::builder().star(8).num_vms(12).build();
    s.seed = seed;
    s.timing = TimingSpec {
        t_end_s: 25.0,
        sample_interval_s: 5.0,
        token_hold_s: 0.05,
        token_pass_s: 0.01,
    };
    s
}

/// The topology pool random grids draw from (all CI-sized, all valid).
fn topology_pool() -> [TopologySpec; 3] {
    [
        TopologySpec::Star {
            hosts: 8,
            capacities: None,
        },
        TopologySpec::Star {
            hosts: 12,
            capacities: None,
        },
        TopologySpec::FatTree {
            k: 4,
            capacities: None,
        },
    ]
}

fn policy_pool() -> [PolicyKind; 5] {
    PolicyKind::all()
}

fn intensity_pool() -> [TrafficIntensity; 3] {
    [
        TrafficIntensity::Sparse,
        TrafficIntensity::Medium,
        TrafficIntensity::Dense,
    ]
}

/// Expands index selections into a sweep over the pools above.
fn build_matrix(
    seed: u64,
    topo_picks: &[usize],
    policy_picks: &[usize],
    intensity_picks: &[usize],
    iteration_cap: Option<usize>,
    sweep_engines: bool,
) -> ScenarioMatrix {
    let topologies: Vec<TopologySpec> = topo_picks
        .iter()
        .map(|&i| topology_pool()[i % topology_pool().len()])
        .collect();
    let policies: Vec<PolicyKind> = policy_picks
        .iter()
        .map(|&i| policy_pool()[i % policy_pool().len()])
        .collect();
    let intensities: Vec<TrafficIntensity> = intensity_picks
        .iter()
        .map(|&i| intensity_pool()[i % intensity_pool().len()])
        .collect();
    let mut matrix = ScenarioMatrix::new(quick_base(seed))
        .topologies(topologies)
        .policies(policies)
        .intensities(intensities);
    if sweep_engines {
        matrix = matrix.engines([
            ("paper".to_string(), EngineSpec::Paper),
            (
                "pricey".to_string(),
                EngineSpec::Paper.with_migration_cost(5e7),
            ),
        ]);
    }
    if let Some(n) = iteration_cap {
        matrix = matrix.iterations(n);
    }
    matrix
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For random grids, every thread count produces byte-identical
    /// `MatrixReport` JSON.
    #[test]
    fn parallel_report_json_is_byte_identical(
        seed in 0u64..10_000,
        topo_picks in prop::collection::vec(0usize..3, 1..3),
        policy_picks in prop::collection::vec(0usize..4, 1..4),
        intensity_picks in prop::collection::vec(0usize..3, 1..3),
        cap in 0usize..3,
        sweep_engines in 0u8..2,
    ) {
        let iteration_cap = (cap > 0).then_some(cap);
        let matrix = build_matrix(
            seed,
            &topo_picks,
            &policy_picks,
            &intensity_picks,
            iteration_cap,
            sweep_engines == 1,
        );
        let serial_json = matrix.clone().run().unwrap().to_json();
        for threads in [1usize, 2, 8] {
            let parallel = matrix.clone().runner().threads(threads).run().unwrap();
            let parallel_json = parallel.to_json();
            prop_assert_eq!(
                &parallel_json,
                &serial_json,
                "{} threads diverged from the serial reference",
                threads
            );
            // And the parsed reports agree structurally too.
            let back = MatrixReport::from_json(&parallel_json).unwrap();
            prop_assert_eq!(back.cells.len(), parallel.cells.len());
        }
    }

    /// Repeated parallel runs of the same sweep are self-identical
    /// (no run-to-run nondeterminism sneaks in through the pool).
    #[test]
    fn parallel_runs_are_reproducible(
        seed in 0u64..10_000,
        policy_picks in prop::collection::vec(0usize..4, 2..4),
    ) {
        let matrix = build_matrix(seed, &[0], &policy_picks, &[0], Some(2), false);
        let first = matrix.clone().runner().threads(8).run().unwrap().to_json();
        let second = matrix.runner().threads(8).run().unwrap().to_json();
        prop_assert_eq!(first, second);
    }
}

/// Strips the wall-clock rebind diagnostics (the documented carve-out
/// for trace workloads) so reports can be compared on simulated state.
fn normalize_trace_timings(report: &mut MatrixReport) {
    for cell in &mut report.cells {
        cell.report.trace.apply_ns_total = 0;
        cell.report.trace.apply_ns_max = 0;
    }
}

/// Trace-workload sweeps: identical at any thread count modulo the
/// `apply_ns_*` wall-clock fields (which differ even serial-vs-serial).
#[test]
fn trace_sweeps_match_modulo_wall_clock_diagnostics() {
    use score_sim::{TraceSpec, WorkloadSpec};
    use score_trace::DiurnalShape;
    let mut base = quick_base(7);
    base.workload = WorkloadSpec::Trace {
        spec: TraceSpec::Diurnal {
            num_vms: 12,
            intensity: TrafficIntensity::Sparse,
            seed: 7,
            shape: DiurnalShape {
                period_s: 20.0,
                amplitude: 0.5,
                step_s: 1.0,
                horizon_s: 25.0,
            },
        },
    };
    let matrix = ScenarioMatrix::new(base).policies(PolicyKind::all());
    let mut serial = matrix.clone().run().unwrap();
    normalize_trace_timings(&mut serial);
    for threads in [2usize, 8] {
        let mut parallel = matrix.clone().runner().threads(threads).run().unwrap();
        // The diagnostics themselves must still be populated (deltas
        // really were applied) before normalization wipes them.
        assert!(parallel
            .cells
            .iter()
            .all(|c| c.report.trace.events_applied > 0));
        normalize_trace_timings(&mut parallel);
        assert_eq!(
            parallel.to_json(),
            serial.to_json(),
            "{threads}-thread trace sweep diverged beyond wall-clock fields"
        );
    }
}
