//! Churn-at-scale equivalence: the struct-of-arrays pair store behind
//! `PairTraffic` (slot arrays + free-list recycling + per-VM adjacency)
//! must be observationally identical to the obvious reference — a
//! sorted map of canonical `(u, v) → rate` entries — under arbitrary
//! interleavings of `place_vm` / `remove_vm` / traffic patches, on both
//! topology families.
//!
//! Checked after every operation:
//!
//! * every canonical pair rate matches the reference map exactly;
//! * the pair count and the canonical `pairs()` ordering match;
//! * per-VM NIC demand matches the reference recomputation to ≤ 1e-9
//!   relative (the cluster maintains it incrementally through the
//!   handle store);
//! * the incremental cost ledger stays within 1e-9 relative of a full
//!   Eq.-(2) pass over the reference-rebuilt matrix, with zero resyncs.

use proptest::prelude::*;
use score_sim::{PolicyKind, Scenario, Session};
use score_topology::VmId;
use std::collections::BTreeMap;

fn scenario(fat_tree: bool, seed: u64) -> Scenario {
    let mut s = if fat_tree {
        Scenario::builder()
            .fat_tree(8)
            .sparse_traffic(seed)
            .policy(PolicyKind::RoundRobin)
            .build()
    } else {
        Scenario::builder()
            .canonical_tree(16, 4)
            .sparse_traffic(seed)
            .policy(PolicyKind::RoundRobin)
            .build()
    };
    s.seed = seed;
    s.timing.t_end_s = 600.0;
    s
}

/// One step of the interleaving, drawn by proptest.
#[derive(Debug, Clone)]
enum Op {
    Place,
    Remove { pick: usize },
    Patch { pick: usize, peer: usize, rate: f64 },
    Run { steps: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The shim's `prop_oneof!` is uniform; patches are listed twice to
    // keep the interleavings traffic-heavy.
    prop_oneof![
        Just(Op::Place),
        (0usize..64).prop_map(|pick| Op::Remove { pick }),
        (0usize..64, 0usize..64, 0.0f64..5e6).prop_map(|(pick, peer, rate)| Op::Patch {
            pick,
            peer,
            rate
        }),
        (0usize..64, 0usize..64, 0.0f64..5e6).prop_map(|(pick, peer, rate)| Op::Patch {
            pick,
            peer,
            rate
        }),
        (1usize..8).prop_map(|steps| Op::Run { steps }),
    ]
}

/// The reference rate map after canonicalization: `u < v`, no zeros.
fn reference_rates(session: &Session) -> BTreeMap<(u32, u32), f64> {
    session
        .traffic()
        .pairs()
        .iter()
        .map(|&(u, v, r)| ((u.get(), v.get()), r))
        .collect()
}

fn check_equivalence(session: &Session, reference: &BTreeMap<(u32, u32), f64>, live: &[u32]) {
    // Rates and canonical ordering match the reference map exactly.
    let pairs = session.traffic().pairs();
    assert_eq!(pairs.len(), reference.len(), "pair population diverged");
    for (&(u, v), &rate) in reference.iter() {
        assert_eq!(
            session.traffic().rate(VmId::new(u), VmId::new(v)),
            rate,
            "rate of ({u}, {v}) diverged from the reference"
        );
    }
    let canonical: Vec<(u32, u32)> = reference.keys().copied().collect();
    let observed: Vec<(u32, u32)> = pairs.iter().map(|&(u, v, _)| (u.get(), v.get())).collect();
    assert_eq!(observed, canonical, "pairs() lost canonical order");
    // Incremental NIC demand matches a reference recomputation.
    for &vm in live {
        let expect: f64 = reference
            .iter()
            .filter(|&(&(u, v), _)| u == vm || v == vm)
            .map(|(_, &r)| r)
            .sum();
        let got = session.cluster().vm_nic_demand(VmId::new(vm));
        assert!(
            (got - expect).abs() <= 1e-9 * expect.max(1.0),
            "vm{vm} NIC demand {got} diverged from reference {expect}"
        );
    }
    // The incremental ledger matches a full Eq.-(2) pass, resync-free.
    let fresh = session.cost_model().total_cost(
        session.cluster().allocation(),
        session.traffic(),
        session.cluster().topo(),
    );
    let ledgered = session.current_cost();
    assert!(
        (ledgered - fresh).abs() <= 1e-9 * fresh.abs().max(1.0),
        "ledger {ledgered} diverged from full recomputation {fresh}"
    );
    assert_eq!(session.ledger_resyncs(), 0, "a full-pass resync was paid");
    let drift = session.shard_drift();
    assert!(
        drift <= 1e-9 * fresh.abs().max(1.0),
        "shard partials drifted by {drift}"
    );
}

fn drive(fat_tree: bool, seed: u64, ops: &[Op]) {
    let mut session = scenario(fat_tree, seed).session().unwrap();
    let mut reference = reference_rates(&session);
    let mut live: Vec<u32> = (0..session.traffic().num_vms()).collect();
    for op in ops {
        match *op {
            Op::Place => {
                if let Ok((vm, _server)) = session.place_vm(None) {
                    live.push(vm.get());
                }
            }
            Op::Remove { pick } => {
                if live.len() > 2 {
                    let vm = live.remove(pick % live.len());
                    session.remove_vm(VmId::new(vm)).unwrap();
                    reference.retain(|&(u, v), _| u != vm && v != vm);
                }
            }
            Op::Patch { pick, peer, rate } => {
                let (u, v) = (live[pick % live.len()], live[peer % live.len()]);
                if u == v {
                    continue;
                }
                let key = if u < v { (u, v) } else { (v, u) };
                session
                    .apply_traffic_deltas(&[(VmId::new(u), VmId::new(v), rate)])
                    .unwrap();
                if rate == 0.0 {
                    reference.remove(&key);
                } else {
                    reference.insert(key, rate);
                }
            }
            Op::Run { steps } => {
                for _ in 0..steps {
                    if session.step().is_none() {
                        break;
                    }
                }
            }
        }
        check_equivalence(&session, &reference, &live);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Canonical tree: interleaved churn, patches, and token steps keep
    /// the handle store equivalent to the reference map.
    #[test]
    fn canonical_tree_churn_matches_reference(
        seed in 0u64..1_000,
        ops in prop::collection::vec(op_strategy(), 1..40),
    ) {
        drive(false, seed, &ops);
    }

    /// Fat-tree: same contract on the multipath family.
    #[test]
    fn fat_tree_churn_matches_reference(
        seed in 0u64..1_000,
        ops in prop::collection::vec(op_strategy(), 1..40),
    ) {
        drive(true, seed, &ops);
    }
}
