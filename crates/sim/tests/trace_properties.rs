//! Property-based tests for trace replay semantics.
//!
//! Two invariants pin the trace subsystem to the pre-existing machinery:
//!
//! 1. **Piecewise-constant equivalence** — a trace that only changes the
//!    TM at phase markers must reproduce `Session::run_phases` *exactly*
//!    (bit-identical `RunReport`s): the trace path is a strict
//!    generalization, not a reimplementation drifting on its own.
//! 2. **Sparse re-pricing exactness** — any interleaving of mid-run
//!    traffic deltas and token iterations leaves the incremental ledger
//!    within 1e-9 relative of a fresh full Eq.-(2) recomputation, with
//!    zero full-pass resyncs.

use proptest::prelude::*;
use score_sim::{PolicyKind, Scenario, Session, TraceSpec, TrafficPhase, WorkloadSpec};
use score_topology::VmId;
use score_trace::Trace;
use score_traffic::{PairTraffic, WorkloadConfig};

const NUM_VMS: u32 = 48;

fn quick_scenario(policy: PolicyKind, seed: u64) -> Scenario {
    let mut s = Scenario::builder()
        .canonical_tree(16, 4)
        .sparse_traffic(seed)
        .policy(policy)
        .build();
    s.seed = seed;
    s.timing.t_end_s = 90.0;
    s.timing.sample_interval_s = 5.0;
    s.timing.token_hold_s = 0.05;
    s.timing.token_pass_s = 0.01;
    s
}

/// The `(u, v, rate)` updates that turn TM `from` into TM `to`.
fn switch_updates(from: &PairTraffic, to: &PairTraffic) -> Vec<(u32, u32, f64)> {
    let mut updates = Vec::new();
    for (u, v, _) in from.pairs() {
        updates.push((u.get(), v.get(), to.rate(u, v)));
    }
    for (u, v, r) in to.pairs() {
        if from.rate(u, v) == 0.0 {
            updates.push((u.get(), v.get(), r));
        }
    }
    updates
}

fn run_phase_session(scenario: &Scenario, tms: &[(f64, PairTraffic)]) -> Vec<score_sim::RunReport> {
    let mut s = scenario.clone();
    s.workload = WorkloadSpec::ExplicitPairs {
        num_vms: NUM_VMS,
        pairs: tms[0]
            .1
            .pairs()
            .iter()
            .map(|&(u, v, r)| (u.get(), v.get(), r))
            .collect(),
        seed: scenario.workload.seed(),
    };
    let mut session = s.session().expect("phase scenario materializes");
    let phases: Vec<TrafficPhase> = tms
        .iter()
        .map(|(d, tm)| TrafficPhase {
            duration_s: *d,
            traffic: tm.clone(),
        })
        .collect();
    session.run_phases(&phases).expect("phases bind")
}

fn run_trace_session(scenario: &Scenario, tms: &[(f64, PairTraffic)]) -> Vec<score_sim::RunReport> {
    let end_s: f64 = tms.iter().map(|(d, _)| d).sum();
    let mut builder = Trace::builder(NUM_VMS, end_s).base_traffic(&tms[0].1);
    let mut t = 0.0;
    for (i, (duration, tm)) in tms.iter().enumerate() {
        if i > 0 {
            builder = builder.marker(t, format!("phase-{i}"));
            for (u, v, rate) in switch_updates(&tms[i - 1].1, tm) {
                builder = builder.set_rate(t, u, v, rate);
            }
        }
        t += duration;
    }
    let trace = builder.build().expect("piecewise trace is valid");
    let mut s = scenario.clone();
    s.workload = WorkloadSpec::Trace {
        spec: TraceSpec::Literal {
            trace,
            seed: scenario.workload.seed(),
        },
    };
    let mut session = s.session().expect("trace scenario materializes");
    session.run_trace().expect("trace replays")
}

/// Applies one update batch and checks the ledger against a fresh
/// recomputation.
fn check_ledger(session: &Session) -> Result<(), String> {
    let fresh = session.cost_model().total_cost(
        session.cluster().allocation(),
        session.traffic(),
        session.cluster().topo(),
    );
    let ledgered = session.current_cost();
    prop_assert!(
        (ledgered - fresh).abs() <= 1e-9 * fresh.abs().max(1.0),
        "ledger {ledgered} vs fresh {fresh}"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Invariant 1: piecewise-constant traces ≡ `run_phases`, exactly.
    #[test]
    fn piecewise_trace_reproduces_run_phases(
        seed in 0u64..200,
        tm_seeds in prop::collection::vec(0u64..10_000, 2..4),
        durations in prop::collection::vec(20u32..60, 2..4),
        hlf in 0u8..2,
    ) {
        let policy = if hlf == 1 { PolicyKind::HighestLevelFirst } else { PolicyKind::RoundRobin };
        let scenario = quick_scenario(policy, seed);
        let n = tm_seeds.len().min(durations.len());
        let tms: Vec<(f64, PairTraffic)> = tm_seeds
            .iter()
            .zip(&durations)
            .take(n)
            .map(|(&s, &d)| (f64::from(d), WorkloadConfig::new(NUM_VMS, s).generate()))
            .collect();
        let phase_reports = run_phase_session(&scenario, &tms);
        let trace_reports = run_trace_session(&scenario, &tms);
        prop_assert_eq!(trace_reports, phase_reports);
    }

    /// Invariant 2: sparse deltas interleaved with token holds keep the
    /// ledger exact, with zero full resyncs.
    #[test]
    fn sparse_deltas_stay_exact_under_interleaving(
        seed in 0u64..200,
        ops in prop::collection::vec((0u32..2000, 0u32..2000, 0u32..3, 1.0f64..1e12), 1..24),
    ) {
        let mut session = quick_scenario(PolicyKind::HighestLevelFirst, seed)
            .session()
            .expect("scenario materializes");
        for &(a, b, kind, raw_rate) in &ops {
            let u = VmId::new(a % NUM_VMS);
            let mut v = VmId::new(b % NUM_VMS);
            if u == v {
                v = VmId::new((b + 1) % NUM_VMS);
                if u == v { continue; }
            }
            match kind {
                // Re-rate.
                0 => {
                    session.apply_traffic_deltas(&[(u, v, raw_rate)]).unwrap();
                }
                // Remove.
                1 => {
                    session.apply_traffic_deltas(&[(u, v, 0.0)]).unwrap();
                }
                // Let the token circulate for one iteration.
                _ => {
                    session.run(1);
                }
            }
            check_ledger(&session)?;
        }
        prop_assert_eq!(session.ledger_resyncs(), 0);
        let stats = session.trace_stats();
        prop_assert_eq!(
            stats.events_applied as usize,
            ops.iter().filter(|&&(_, _, k, _)| k < 2).count()
        );
    }
}
