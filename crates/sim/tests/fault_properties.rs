//! Recovery invariants of the adversity engine, on both topology
//! families, under arbitrary interleavings of faults, traffic patches,
//! and token steps:
//!
//! * a recorded fault run replays **byte-for-byte** from its adversity
//!   log (only the fault events are logged; evacuations and
//!   retirements are re-derived deterministically);
//! * the incremental cost ledger never pays a full Eq.-(2) resync —
//!   `ledger_resyncs() == 0` through any fault sequence;
//! * after every fault, `C_A` read from the ledger is within 1e-9
//!   relative of a from-scratch recomputation;
//! * no migration — voluntary or forced — ever lands a VM on a host
//!   that was down at decision time, and the final placement keeps
//!   every live VM on a live host.

use proptest::prelude::*;
use score_sim::{PolicyKind, RunReport, Scenario, Session};
use score_topology::{RackId, ServerId, VmId};
use score_trace::TraceEvent;

fn scenario(fat_tree: bool, seed: u64) -> Scenario {
    let mut s = if fat_tree {
        Scenario::builder()
            .fat_tree(8)
            .sparse_traffic(seed)
            .policy(PolicyKind::HighestLevelFirst)
            .build()
    } else {
        Scenario::builder()
            .canonical_tree(16, 4)
            .sparse_traffic(seed)
            .policy(PolicyKind::HighestLevelFirst)
            .build()
    };
    s.seed = seed;
    s.timing.t_end_s = 600.0;
    s
}

/// One step of the adversity interleaving, drawn by proptest.
#[derive(Debug, Clone)]
enum Op {
    Crash { pick: usize },
    RackFail { pick: usize },
    Degrade { tenths: u32 },
    Restore,
    Patch { pick: usize, peer: usize, rate: f64 },
    Run { steps: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..4096).prop_map(|pick| Op::Crash { pick }),
        (0usize..4096).prop_map(|pick| Op::RackFail { pick }),
        (1u32..=10).prop_map(|tenths| Op::Degrade { tenths }),
        Just(Op::Restore),
        (0usize..64, 0usize..64, 0.0f64..5e6).prop_map(|(pick, peer, rate)| Op::Patch {
            pick,
            peer,
            rate
        }),
        (1usize..12).prop_map(|steps| Op::Run { steps }),
        (1usize..12).prop_map(|steps| Op::Run { steps }),
    ]
}

/// The exactness oracle: ledger vs a full Eq.-(2) pass, resync-free.
fn assert_cost_exact(session: &Session) {
    let fresh = session.cost_model().total_cost(
        session.cluster().allocation(),
        session.traffic(),
        session.cluster().topo(),
    );
    let ledgered = session.current_cost();
    assert!(
        (ledgered - fresh).abs() <= 1e-9 * fresh.abs().max(1.0),
        "ledger {ledgered} diverged from full recomputation {fresh}"
    );
    assert_eq!(session.ledger_resyncs(), 0, "a fault path paid a resync");
}

fn assert_no_vm_on_dead_host(session: &Session) {
    for v in 0..session.cluster().num_vms() {
        let vm = VmId::new(v);
        if session.cluster().is_active(vm) {
            let host = session.cluster().allocation().server_of(vm);
            assert!(
                session.cluster().host_is_up(host),
                "{vm} left stranded on dead {host}"
            );
        }
    }
}

fn strip(mut r: RunReport) -> RunReport {
    r.trace.apply_ns_total = 0;
    r.trace.apply_ns_max = 0;
    r
}

/// Drives the op list against a recording session, checking the cost
/// and placement invariants after every fault; returns the report and
/// the `(time, server)` log of every host that went down.
fn drive(fat_tree: bool, seed: u64, ops: &[Op]) {
    let mut session = scenario(fat_tree, seed).session().unwrap();
    session.start_trace_recording();
    let num_servers = session.topo().num_servers();
    let num_racks = session.topo().num_racks();
    let num_vms = session.traffic().num_vms();
    let mut downed: Vec<(f64, ServerId)> = Vec::new();
    let mut faults = 0u64;
    for op in ops {
        match *op {
            Op::Crash { pick } => {
                session.drain_to_boundary();
                let server = (pick % num_servers) as u32;
                let outcome = session
                    .apply_fault(&TraceEvent::HostCrash { server })
                    .unwrap();
                let now = session.now_s();
                downed.extend(outcome.hosts_failed.iter().map(|&s| (now, s)));
                faults += 1;
                assert_cost_exact(&session);
                assert_no_vm_on_dead_host(&session);
            }
            Op::RackFail { pick } => {
                session.drain_to_boundary();
                let rack = (pick % num_racks) as u32;
                let outcome = session.apply_fault(&TraceEvent::RackFail { rack }).unwrap();
                let now = session.now_s();
                downed.extend(outcome.hosts_failed.iter().map(|&s| (now, s)));
                faults += 1;
                assert_cost_exact(&session);
                assert_no_vm_on_dead_host(&session);
            }
            Op::Degrade { tenths } => {
                session.drain_to_boundary();
                session
                    .apply_fault(&TraceEvent::LinkDegrade {
                        tier: 0,
                        factor: f64::from(tenths) / 10.0,
                    })
                    .unwrap();
                faults += 1;
            }
            Op::Restore => {
                session.drain_to_boundary();
                session
                    .apply_fault(&TraceEvent::LinkRestore { tier: 0 })
                    .unwrap();
                faults += 1;
            }
            Op::Patch { pick, peer, rate } => {
                session.drain_to_boundary();
                let (u, v) = (
                    (pick % num_vms as usize) as u32,
                    (peer % num_vms as usize) as u32,
                );
                if u == v {
                    continue;
                }
                let (u, v) = (VmId::new(u), VmId::new(v));
                if session.cluster().is_active(u) && session.cluster().is_active(v) {
                    session.apply_traffic_deltas(&[(u, v, rate)]).unwrap();
                }
            }
            Op::Run { steps } => {
                for _ in 0..steps {
                    if session.step().is_none() {
                        break;
                    }
                }
            }
        }
    }
    session.run_to_horizon();
    assert_cost_exact(&session);
    assert_no_vm_on_dead_host(&session);

    let report = session.report();
    assert_eq!(report.recovery.faults_injected, faults);
    // No migration ever lands on a host that was already down when the
    // decision was taken (a decision in the same event-queue instant as
    // the fault is ordered before it and stays legal).
    for m in &report.migrations {
        for &(t, server) in &downed {
            assert!(
                m.to != server || m.time_s <= t,
                "migration at {}s targets {server}, down since {t}s",
                m.time_s
            );
        }
    }
    // Down hosts never come back in this op set: the recovery stats and
    // the cluster agree on the body count.
    let unique_down: std::collections::BTreeSet<ServerId> =
        downed.iter().map(|&(_, s)| s).collect();
    assert_eq!(report.recovery.hosts_down as usize, unique_down.len());
    for &s in &unique_down {
        assert!(!session.cluster().host_is_up(s));
    }

    // Byte-identical replay from the adversity log: drain to each
    // event's boundary, re-apply, compare the full reports.
    let trace = session.recorded_trace().unwrap();
    if faults > 0 {
        assert!(trace.has_faults(), "fault events must be in the log");
    }
    let mut replay = scenario(fat_tree, seed).session().unwrap();
    for ev in trace.events() {
        while replay.next_event_time().is_some_and(|t| t <= ev.time_s) {
            if replay.step().is_none() {
                break;
            }
        }
        replay.apply_trace_event(&ev.event).unwrap();
    }
    replay.run_to_horizon();
    assert_eq!(
        strip(report),
        strip(replay.report()),
        "a recorded adversity run must replay byte-for-byte"
    );
    assert_eq!(replay.ledger_resyncs(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Canonical tree: arbitrary fault/traffic/step interleavings hold
    /// every recovery invariant and replay byte-for-byte.
    #[test]
    fn canonical_tree_faults_hold_recovery_invariants(
        seed in 0u64..1_000,
        ops in prop::collection::vec(op_strategy(), 1..24),
    ) {
        drive(false, seed, &ops);
    }

    /// Fat-tree: same contract on the multipath family.
    #[test]
    fn fat_tree_faults_hold_recovery_invariants(
        seed in 0u64..1_000,
        ops in prop::collection::vec(op_strategy(), 1..24),
    ) {
        drive(true, seed, &ops);
    }
}

/// Deterministic pin: the whole-rack sweep on the canonical tree keeps
/// rack-local victims together and the ledger exact (regression anchor
/// with a fixed seed, independent of the proptest shim's RNG).
#[test]
fn rack_sweep_pin() {
    let mut session = scenario(false, 7).session().unwrap();
    session.run(1);
    session.drain_to_boundary();
    let rack = session
        .topo()
        .rack_of(session.cluster().allocation().server_of(VmId::new(0)));
    let outcome = session
        .apply_fault(&TraceEvent::RackFail { rack: rack.get() })
        .unwrap();
    let expected: Vec<ServerId> = session
        .topo()
        .servers_in_rack(RackId::new(rack.get()))
        .map(ServerId::new)
        .collect();
    assert_eq!(outcome.hosts_failed, expected);
    for &(_, to) in &outcome.evacuated {
        assert_ne!(
            session.topo().rack_of(to),
            rack,
            "evacuee landed back in the dead rack"
        );
    }
    assert_cost_exact(&session);
    session.run_to_horizon();
    assert_cost_exact(&session);
    assert!(session.report().recovery.slo_violating_s > 0.0);
}
