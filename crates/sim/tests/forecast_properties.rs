//! Property-based pins for the forecast-aware decision pipeline.
//!
//! Two contracts hold the refactor together:
//!
//! 1. **Zero-horizon compatibility** — `ForecastSpec::None` and every
//!    zero-horizon variant run the reactive paper pipeline bit for bit:
//!    the `RunReport` JSON of a no-forecast run is **byte-identical**
//!    to a zero-horizon EWMA run (and to a zero-horizon oracle run on
//!    trace workloads), across random tree/fat-tree scenarios, every
//!    policy and random workloads.
//! 2. **Forecaster determinism** — an *active* forecaster stays
//!    deterministic under the work-stealing `MatrixRunner`: the same
//!    sweep produces the same report at 1, 2 and 8 threads (modulo the
//!    documented wall-clock `apply_ns_*` carve-out for trace
//!    workloads), because each cell builds its own session-owned
//!    forecaster fed a deterministic delta stream.

use proptest::prelude::*;
use score_sim::{
    ForecastSpec, MatrixReport, PolicyKind, RunReport, Scenario, ScenarioMatrix, TimingSpec,
    TopologySpec, TraceSpec, WorkloadSpec,
};
use score_trace::{DiurnalShape, FlashCrowdShape};
use score_traffic::TrafficIntensity;

fn policy_pool() -> [PolicyKind; 5] {
    PolicyKind::all()
}

fn intensity_pool() -> [TrafficIntensity; 3] {
    [
        TrafficIntensity::Sparse,
        TrafficIntensity::Medium,
        TrafficIntensity::Dense,
    ]
}

/// A CI-sized scenario on a real hierarchy (the bit-equality claim is
/// about decision pipelines, so it must run where levels matter: tree
/// and fat-tree, not just stars).
fn quick_scenario(
    tree: bool,
    policy: PolicyKind,
    intensity: TrafficIntensity,
    seed: u64,
) -> Scenario {
    let topology = if tree {
        TopologySpec::CanonicalTree {
            racks: 4,
            hosts_per_rack: 4,
            racks_per_agg: 2,
            cores: 1,
            capacities: None,
        }
    } else {
        TopologySpec::FatTree {
            k: 4,
            capacities: None,
        }
    };
    let mut s = Scenario::builder()
        .topology(topology)
        .num_vms(24)
        .intensity(intensity)
        .workload_seed(seed)
        .policy(policy)
        .seed(seed)
        .build();
    s.timing = TimingSpec {
        t_end_s: 40.0,
        sample_interval_s: 5.0,
        token_hold_s: 0.05,
        token_pass_s: 0.01,
    };
    s
}

/// Runs a scenario to the horizon and serializes its report with the
/// wall-clock rebind diagnostics normalized.
fn report_json(scenario: &Scenario) -> String {
    let mut session = scenario.session().expect("scenario materializes");
    session.run_to_horizon();
    let mut report: RunReport = session.report();
    report.trace.apply_ns_total = 0;
    report.trace.apply_ns_max = 0;
    report.to_json()
}

/// Swaps in a diurnal trace workload over the same population.
fn with_diurnal_trace(mut scenario: Scenario, seed: u64) -> Scenario {
    scenario.workload = WorkloadSpec::Trace {
        spec: TraceSpec::Diurnal {
            num_vms: 24,
            intensity: TrafficIntensity::Sparse,
            seed,
            shape: DiurnalShape {
                period_s: 20.0,
                amplitude: 0.5,
                step_s: 1.0,
                horizon_s: 40.0,
            },
        },
    };
    scenario
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `ForecastSpec::None` ≡ zero-horizon EWMA, byte for byte, over
    /// random static scenarios on tree and fat-tree fabrics.
    #[test]
    fn zero_horizon_reproduces_baseline_policies(
        tree_pick in 0u8..2,
        policy_pick in 0usize..5,
        intensity_pick in 0usize..3,
        seed in 0u64..10_000,
        alpha_pct in 1u32..=100,
    ) {
        let tree = tree_pick == 1;
        let policy = policy_pool()[policy_pick];
        let intensity = intensity_pool()[intensity_pick];
        let mut reactive = quick_scenario(tree, policy, intensity, seed);
        reactive.forecast = ForecastSpec::None;
        let mut zero = reactive.clone();
        zero.forecast = ForecastSpec::Ewma {
            alpha: f64::from(alpha_pct) / 100.0,
            horizon_s: 0.0,
        };
        prop_assert_eq!(
            report_json(&reactive),
            report_json(&zero),
            "zero-horizon EWMA diverged from the reactive pipeline \
             (tree={}, policy={:?}, seed={})",
            tree, policy, seed
        );
    }

    /// The same claim on trace workloads, for the oracle as well: a
    /// zero-horizon oracle reads nothing ahead and must reproduce the
    /// reactive run byte for byte.
    #[test]
    fn zero_horizon_oracle_reproduces_baseline_on_traces(
        tree_pick in 0u8..2,
        policy_pick in 0usize..5,
        seed in 0u64..10_000,
    ) {
        let tree = tree_pick == 1;
        let policy = policy_pool()[policy_pick];
        let base = with_diurnal_trace(
            quick_scenario(tree, policy, TrafficIntensity::Sparse, seed),
            seed,
        );
        let mut reactive = base.clone();
        reactive.forecast = ForecastSpec::None;
        let mut zero_oracle = base.clone();
        zero_oracle.forecast = ForecastSpec::TraceOracle { horizon_s: 0.0 };
        let mut zero_ewma = base;
        zero_ewma.forecast = ForecastSpec::Ewma { alpha: 0.3, horizon_s: 0.0 };
        let reference = report_json(&reactive);
        prop_assert_eq!(&report_json(&zero_oracle), &reference);
        prop_assert_eq!(&report_json(&zero_ewma), &reference);
    }

    /// Old scenario JSON (no `forecast` key) still loads, defaults to
    /// the reactive pipeline, and runs identically to an explicit
    /// `ForecastSpec::None`.
    #[test]
    fn pre_forecast_scenario_json_still_loads(
        tree_pick in 0u8..2,
        policy_pick in 0usize..5,
        seed in 0u64..10_000,
    ) {
        let tree = tree_pick == 1;
        let scenario = quick_scenario(tree, policy_pool()[policy_pick], TrafficIntensity::Sparse, seed);
        let json = scenario.to_json();
        prop_assert!(json.contains("\"forecast\""));
        // Strip the forecast field the way a pre-refactor writer would
        // never have emitted it.
        let legacy = json.replace("\"forecast\":\"None\",", "");
        prop_assert!(!legacy.contains("forecast"));
        let loaded = Scenario::from_json(&legacy).expect("legacy JSON loads");
        prop_assert_eq!(&loaded, &scenario);
        prop_assert_eq!(loaded.forecast, ForecastSpec::None);
    }
}

/// Strips the wall-clock rebind diagnostics so matrix reports compare
/// on simulated state only.
fn normalize_trace_timings(report: &mut MatrixReport) {
    for cell in &mut report.cells {
        cell.report.trace.apply_ns_total = 0;
        cell.report.trace.apply_ns_max = 0;
    }
}

/// Active forecasters are deterministic across `MatrixRunner` thread
/// counts {1, 2, 8}: per-cell forecaster state is rebuilt from the
/// cell's own deterministic delta stream, so parallelism stays
/// unobservable.
#[test]
fn forecasting_sweeps_are_thread_count_invariant() {
    for forecast in [
        ForecastSpec::Ewma {
            alpha: 0.4,
            horizon_s: 8.0,
        },
        ForecastSpec::TraceOracle { horizon_s: 8.0 },
    ] {
        let mut base = with_diurnal_trace(
            quick_scenario(
                true,
                PolicyKind::HighestLevelFirst,
                TrafficIntensity::Sparse,
                7,
            ),
            7,
        );
        base.forecast = forecast;
        let matrix = ScenarioMatrix::new(base).policies(PolicyKind::all());
        let mut serial = matrix.clone().run().unwrap();
        normalize_trace_timings(&mut serial);
        let reference = serial.to_json();
        for threads in [1usize, 2, 8] {
            let mut parallel = matrix.clone().runner().threads(threads).run().unwrap();
            normalize_trace_timings(&mut parallel);
            assert_eq!(
                parallel.to_json(),
                reference,
                "{threads}-thread {} sweep diverged from serial",
                forecast.name()
            );
        }
    }
}

/// An active flash-crowd oracle run pre-empts spikes without ever
/// paying a full ledger resync — the outlook path reads ahead, it
/// never mutates (regression guard: `cluster_mut` must stay untouched
/// by forecasting).
#[test]
fn forecasting_never_dirties_the_ledger() {
    let mut scenario = quick_scenario(
        true,
        PolicyKind::HighestLevelFirst,
        TrafficIntensity::Sparse,
        3,
    );
    scenario.workload = WorkloadSpec::Trace {
        spec: TraceSpec::FlashCrowd {
            num_vms: 24,
            intensity: TrafficIntensity::Sparse,
            seed: 3,
            shape: FlashCrowdShape {
                spikes: 4,
                fanout: 4,
                surge_bps: 2e8,
                hold_s: 8.0,
                horizon_s: 40.0,
            },
        },
    };
    scenario.forecast = ForecastSpec::TraceOracle { horizon_s: 12.0 };
    let mut session = scenario.session().unwrap();
    session.run_to_horizon();
    assert!(session.report().trace.events_applied > 0);
    assert_eq!(
        session.ledger_resyncs(),
        0,
        "reading ahead must never dirty the cost ledger"
    );
    let fresh = session.cost_model().total_cost(
        session.cluster().allocation(),
        session.traffic(),
        session.cluster().topo(),
    );
    assert!((session.current_cost() - fresh).abs() <= 1e-9 * fresh.max(1.0));
}
