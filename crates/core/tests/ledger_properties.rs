//! Property-based tests for the incremental cost ledger.
//!
//! The invariant: a [`CostLedger`] fed only Lemma-3 deltas (for accepted
//! migrations) and pair-diff rebinds (for traffic-phase shifts) must
//! agree with a fresh Eq.-(2) recomputation after *any* interleaving of
//! those operations — on both paper fabrics. The tolerance is 1e-9
//! relative: the ledger and the recomputation sum the same terms in
//! different orders, so exact bit equality is not guaranteed, but drift
//! beyond rounding noise means the ledger missed or double-counted a
//! pair.

use proptest::prelude::*;
use score_core::{Cluster, CostModel, ScoreEngine, ServerSpec, VmSpec};
use score_topology::{CanonicalTree, FatTree, Topology, VmId};
use score_traffic::{PairTraffic, WorkloadConfig};
use std::sync::Arc;

const NUM_VMS: u32 = 32;

/// One step of the interleaving: a token-holder decision for `vm`
/// (whose accepted Lemma-3 delta feeds the ledger), or a traffic-phase
/// rebind to a freshly generated matrix.
#[derive(Debug, Clone, Copy)]
enum Op {
    Decide { vm: u32 },
    Rebind { workload_seed: u64 },
}

fn decode_ops(raw: &[(u8, u32)]) -> Vec<Op> {
    raw.iter()
        .map(|&(kind, arg)| {
            // Bias towards decisions: rebinds are rarer in a real run.
            if kind < 3 {
                Op::Decide { vm: arg % NUM_VMS }
            } else {
                Op::Rebind {
                    workload_seed: u64::from(arg),
                }
            }
        })
        .collect()
}

/// Drives an interleaving of decisions and rebinds over `topo`,
/// checking the ledger against a fresh recomputation after every
/// operation.
fn check_interleaving(topo: Arc<dyn Topology>, seed: u64, ops: &[Op]) -> Result<(), String> {
    let mut traffic = WorkloadConfig::new(NUM_VMS, seed).generate();
    let alloc = score_core::Allocation::from_fn(NUM_VMS, topo.num_servers() as u32, |vm| {
        score_topology::ServerId::new(vm.get() % topo.num_servers() as u32)
    });
    let mut cluster = Cluster::new(
        Arc::clone(&topo),
        ServerSpec::paper_default(),
        VmSpec::paper_default(),
        &traffic,
        alloc,
    )
    .expect("striped placement fits");
    let engine = ScoreEngine::paper_default();
    let model: &CostModel = engine.cost_model();
    let mut ledger = model.ledger(cluster.allocation(), &traffic, cluster.topo());

    for (i, &op) in ops.iter().enumerate() {
        match op {
            Op::Decide { vm } => {
                let (decision, _) = engine.step(VmId::new(vm), &mut cluster, &traffic);
                ledger.apply_gain(decision.gain);
            }
            Op::Rebind { workload_seed } => {
                let next = WorkloadConfig::new(NUM_VMS, workload_seed).generate();
                cluster
                    .rebind_traffic(&next)
                    .expect("same population always rebinds");
                ledger.rebind(cluster.allocation(), &traffic, &next, cluster.topo());
                traffic = next;
            }
        }
        let fresh = model.total_cost(cluster.allocation(), &traffic, cluster.topo());
        let drift = (ledger.current() - fresh).abs();
        prop_assert!(
            drift <= 1e-9 * fresh.abs().max(1.0),
            "after op {i} ({op:?}): ledger {} vs fresh {fresh} (drift {drift})",
            ledger.current()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ledger_tracks_interleavings_on_canonical_tree(
        seed in 0u64..500,
        raw_ops in prop::collection::vec((0u8..4, 0u32..10_000), 1..48),
    ) {
        let topo: Arc<dyn Topology> = Arc::new(CanonicalTree::small());
        check_interleaving(topo, seed, &decode_ops(&raw_ops))?;
    }

    #[test]
    fn ledger_tracks_interleavings_on_fattree(
        seed in 0u64..500,
        raw_ops in prop::collection::vec((0u8..4, 0u32..10_000), 1..48),
    ) {
        let topo: Arc<dyn Topology> = Arc::new(FatTree::small());
        check_interleaving(topo, seed, &decode_ops(&raw_ops))?;
    }

    #[test]
    fn rebind_is_exact_for_pure_traffic_shifts(
        seed_a in 0u64..300,
        seed_b in 0u64..300,
        scale_milli in 1u32..5_000,
    ) {
        // Rebinds alone (no migrations): scaled, regenerated, and
        // emptied matrices must all land on the full recomputation.
        let topo = CanonicalTree::small();
        let a = WorkloadConfig::new(NUM_VMS, seed_a).generate();
        let alloc = score_core::Allocation::from_fn(NUM_VMS, 16, |vm| {
            score_topology::ServerId::new(vm.get() % 16)
        });
        let model = CostModel::paper_default();
        let mut ledger = model.ledger(&alloc, &a, &topo);

        // Same pattern, re-rated (exercises the rate-change arm of the
        // merge-join, not just insert/remove).
        let scaled = a.scaled(f64::from(scale_milli) / 1000.0);
        ledger.rebind(&alloc, &a, &scaled, &topo);
        let fresh = model.total_cost(&alloc, &scaled, &topo);
        prop_assert!((ledger.current() - fresh).abs() <= 1e-9 * fresh.max(1.0));

        // Unrelated pattern (inserts + removals dominate).
        let b = WorkloadConfig::new(NUM_VMS, seed_b).generate();
        ledger.rebind(&alloc, &scaled, &b, &topo);
        let fresh = model.total_cost(&alloc, &b, &topo);
        prop_assert!((ledger.current() - fresh).abs() <= 1e-9 * fresh.max(1.0));

        // Empty matrix: everything removed. The residual is rounding
        // noise relative to the magnitude that was subtracted out.
        let scale = fresh.max(1.0);
        let empty = PairTraffic::empty(NUM_VMS);
        ledger.rebind(&alloc, &b, &empty, &topo);
        prop_assert!(
            ledger.current().abs() <= 1e-9 * scale,
            "residual {} after removing a cost of scale {scale}",
            ledger.current()
        );
    }
}
