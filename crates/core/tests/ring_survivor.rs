//! Survivor-election tests for the token ring under host crashes (S-CORE
//! adversity engine): killing any token holder — including mid-hold —
//! elects the same deterministic successor no matter how the dead set is
//! batched, ordered, or raced across threads, and a fully-dead ring
//! degrades gracefully instead of spinning.

use proptest::prelude::*;
use score_core::{Allocation, Cluster, RoundRobin, ScoreEngine, ServerSpec, TokenRing, VmSpec};
use score_topology::{CanonicalTree, ServerId, VmId};
use score_traffic::{PairTraffic, WorkloadConfig};
use std::sync::Arc;

const NUM_VMS: u32 = 24;

fn fixture(seed: u64) -> (Cluster, PairTraffic) {
    let topo = Arc::new(CanonicalTree::small()); // 16 servers
    let traffic = WorkloadConfig::new(NUM_VMS, seed).generate();
    let alloc = Allocation::from_fn(NUM_VMS, 16, |vm| ServerId::new(vm.get() % 16));
    let cluster = Cluster::new(
        topo,
        ServerSpec::paper_default(),
        VmSpec::paper_default(),
        &traffic,
        alloc,
    )
    .unwrap();
    (cluster, traffic)
}

fn ring() -> TokenRing {
    TokenRing::new(ScoreEngine::paper_default(), RoundRobin::new(), NUM_VMS)
}

/// Reference election: first member after the holder in ascending-id
/// ring order that is not dead.
fn expected_successor(members: &[u32], holder: u32, dead: &[u32]) -> Option<u32> {
    let pos = members.iter().position(|&m| m == holder)?;
    (1..=members.len())
        .map(|k| members[(pos + k) % members.len()])
        .find(|m| !dead.contains(m) && *m != holder)
}

#[test]
fn killing_the_holder_elects_its_ring_successor() {
    let mut r = ring();
    assert_eq!(r.holder(), Some(VmId::new(0)));
    let survivor = r.fail_vms(&[VmId::new(0), VmId::new(1), VmId::new(3)]);
    assert_eq!(survivor, Some(VmId::new(2)));
    assert_eq!(r.token().len(), (NUM_VMS - 3) as usize);
    // Dead VMs are gone from the membership.
    assert!(!r.token().contains(VmId::new(0)));
    assert!(!r.token().contains(VmId::new(3)));
}

#[test]
fn election_is_insensitive_to_batch_order() {
    let dead = [7u32, 2, 0, 5, 1];
    let mut perms: Vec<Vec<u32>> = vec![
        dead.to_vec(),
        vec![0, 1, 2, 5, 7],
        vec![7, 5, 2, 1, 0],
        vec![2, 7, 1, 0, 5],
    ];
    // Duplicates must not matter either.
    perms.push(vec![7, 7, 2, 0, 0, 5, 1, 2]);
    let mut holders = Vec::new();
    for p in perms {
        let mut r = ring();
        let ids: Vec<VmId> = p.iter().map(|&v| VmId::new(v)).collect();
        holders.push(r.fail_vms(&ids));
    }
    assert!(holders.windows(2).all(|w| w[0] == w[1]));
    assert_eq!(holders[0], Some(VmId::new(3)));
}

#[test]
fn killing_the_holder_mid_hold_converges() {
    // Advance the token into the middle of an iteration, then crash the
    // current holder plus neighbours on both sides.
    let (mut cluster, traffic) = fixture(11);
    let mut r = ring();
    for _ in 0..9 {
        r.step(&mut cluster, &traffic);
    }
    let holder = r.holder().unwrap().get();
    let dead = [
        holder,
        (holder + 1) % NUM_VMS,
        holder.wrapping_sub(1) % NUM_VMS,
    ];
    let members: Vec<u32> = (0..NUM_VMS).collect();
    let want = expected_successor(&members, holder, &dead);
    let got = r.fail_vms(&dead.map(VmId::new));
    assert_eq!(got.map(|v| v.get()), want);
    // The ring keeps making progress over the survivors only.
    let stats = r.run_iteration(&mut cluster, &traffic);
    assert_eq!(stats.steps, (NUM_VMS - 3) as usize);
    assert!(cluster.allocation().is_consistent());
}

#[test]
fn fully_dead_ring_degrades_gracefully() {
    let (mut cluster, traffic) = fixture(13);
    let mut r = ring();
    let everyone: Vec<VmId> = (0..NUM_VMS).map(VmId::new).collect();
    assert_eq!(r.fail_vms(&everyone), None);
    assert!(r.holder().is_none());
    assert!(r.token().is_empty());
    // step() terminates instead of spinning; iterations are empty.
    assert!(r.step(&mut cluster, &traffic).is_none());
    let stats = r.run_iteration(&mut cluster, &traffic);
    assert_eq!(stats.steps, 0);
    // A later arrival restarts the ring.
    assert!(r.add_vm(VmId::new(5)));
    assert_eq!(r.holder(), Some(VmId::new(5)));
}

#[test]
fn non_member_and_empty_batches_are_noops() {
    let mut r = ring();
    let before = r.holder();
    assert_eq!(r.fail_vms(&[]), before);
    assert_eq!(r.fail_vms(&[VmId::new(999)]), before);
    assert_eq!(r.token().len(), NUM_VMS as usize);
}

#[test]
fn election_is_identical_across_thread_counts() {
    // The election must be a pure function of (token order, dead set):
    // racing many clones of the ring across threads — any interleaving
    // the scheduler produces — always converges on one successor.
    let dead: Vec<VmId> = [0u32, 4, 8, 1].iter().map(|&v| VmId::new(v)).collect();
    for threads in [1usize, 2, 4, 8] {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let mut d = dead.clone();
                // Each thread reports the victims in its own order.
                let n = d.len();
                d.rotate_left(t % n);
                std::thread::spawn(move || {
                    let mut r = ring();
                    r.fail_vms(&d)
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), Some(VmId::new(2)), "threads={threads}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any dead set, applied after any number of steps, elects exactly
    /// the reference successor, and one batch equals many sequential
    /// batches of the same victims.
    #[test]
    fn survivor_election_matches_reference(
        seed in 0u64..200,
        steps in 0usize..30,
        dead_raw in prop::collection::btree_set(0u32..NUM_VMS, 1..=NUM_VMS as usize),
    ) {
        let (mut cluster, traffic) = fixture(seed);
        let mut r = ring();
        for _ in 0..steps {
            r.step(&mut cluster, &traffic);
        }
        let dead: Vec<u32> = dead_raw.iter().copied().collect();
        let holder = r.holder().unwrap().get();
        let members: Vec<u32> = (0..NUM_VMS).collect();
        let want = if dead.contains(&holder) {
            expected_successor(&members, holder, &dead)
        } else {
            Some(holder)
        };

        // One batch …
        let mut batched = ring();
        let mut c2 = cluster.clone();
        for _ in 0..steps {
            batched.step(&mut c2, &traffic);
        }
        let ids: Vec<VmId> = dead.iter().map(|&v| VmId::new(v)).collect();
        let got = batched.fail_vms(&ids);
        prop_assert_eq!(got.map(|v| v.get()), want);

        // … equals victim-at-a-time in descending order (worst case for
        // order sensitivity), as long as each sub-batch carries the
        // whole remaining dead set's effect: sequential single-victim
        // feeds may pass through intermediate holders, but the final
        // membership must agree.
        let mut seq = ring();
        let mut c3 = cluster.clone();
        for _ in 0..steps {
            seq.step(&mut c3, &traffic);
        }
        let mut desc = ids.clone();
        desc.sort_unstable_by(|a, b| b.cmp(a));
        let mut last = seq.holder();
        for vm in &desc {
            last = seq.fail_vms(&[*vm]);
        }
        prop_assert_eq!(seq.token().len(), batched.token().len());
        if dead.len() == NUM_VMS as usize {
            prop_assert_eq!(last, None);
            prop_assert_eq!(got, None);
        }
    }
}
