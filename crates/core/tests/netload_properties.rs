//! Property-based tests for the link-load accounting: traffic placed on
//! the fabric is conserved, and per-link attributions are coherent.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use score_core::{Allocation, LinkLoadMap};
use score_topology::{CanonicalTree, FatTree, Level, ServerId, Topology, VmId};
use score_traffic::{PairTraffic, WorkloadConfig};

fn world(seed: u64) -> (PairTraffic, Allocation) {
    let traffic = WorkloadConfig::new(24, seed).generate();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
    let alloc = Allocation::from_fn(24, 16, |_| ServerId::new(rng.gen_range(0..16)));
    (traffic, alloc)
}

/// Sum of a pair's inter-host rates: each communicating pair whose
/// endpoints sit on different servers loads both endpoints' host links
/// with its full rate.
fn expected_host_layer_load(traffic: &PairTraffic, alloc: &Allocation) -> f64 {
    traffic
        .pairs()
        .iter()
        .filter(|&&(u, v, _)| alloc.server_of(u) != alloc.server_of(v))
        .map(|&(_, _, r)| 2.0 * r)
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn host_layer_load_is_conserved_canonical(seed in 0u64..300) {
        let topo = CanonicalTree::small();
        let (traffic, alloc) = world(seed);
        let map = LinkLoadMap::compute(&alloc, &traffic, &topo);
        let got = map.total_load_at_level(Level::RACK);
        let expected = expected_host_layer_load(&traffic, &alloc);
        prop_assert!((got - expected).abs() < 1e-6 * expected.max(1.0),
            "host layer {} vs expected {}", got, expected);
    }

    #[test]
    fn host_layer_load_is_conserved_fattree(seed in 0u64..300) {
        let topo = FatTree::small();
        let (traffic, alloc) = world(seed);
        let map = LinkLoadMap::compute(&alloc, &traffic, &topo);
        let got = map.total_load_at_level(Level::RACK);
        let expected = expected_host_layer_load(&traffic, &alloc);
        prop_assert!((got - expected).abs() < 1e-6 * expected.max(1.0));
    }

    #[test]
    fn ecmp_split_conserves_upper_layer_mass(seed in 0u64..300) {
        // Core-layer mass equals 2x the rate of core-level pairs,
        // regardless of how ECMP spreads it across core links.
        let topo = FatTree::small();
        let (traffic, alloc) = world(seed);
        let map = LinkLoadMap::compute(&alloc, &traffic, &topo);
        let expected: f64 = traffic
            .pairs()
            .iter()
            .filter(|&&(u, v, _)| {
                topo.level(alloc.server_of(u), alloc.server_of(v)) == Level::CORE
            })
            .map(|&(_, _, r)| 2.0 * r)
            .sum();
        let got = map.total_load_at_level(Level::CORE);
        prop_assert!((got - expected).abs() < 1e-6 * expected.max(1.0));
    }

    #[test]
    fn contributors_attribute_twice_the_link_load(seed in 0u64..200) {
        let topo = CanonicalTree::small();
        let (traffic, alloc) = world(seed);
        let map = LinkLoadMap::compute(&alloc, &traffic, &topo);
        if let Some((hot, _)) = map.max_utilization(Level::RACK) {
            let contributed: f64 = LinkLoadMap::contributors(hot, &alloc, &traffic, &topo)
                .iter()
                .map(|&(_, c)| c)
                .sum();
            // Each pair charges both endpoints, so attribution doubles the
            // link's carried load.
            prop_assert!((contributed - 2.0 * map.load_bps(hot)).abs()
                < 1e-6 * contributed.max(1.0));
        }
    }

    #[test]
    fn collocating_everything_clears_the_fabric(seed in 0u64..100) {
        let topo = CanonicalTree::small();
        let traffic = WorkloadConfig::new(16, seed).generate();
        let alloc = Allocation::from_fn(16, 16, |_| ServerId::new(0));
        let map = LinkLoadMap::compute(&alloc, &traffic, &topo);
        for (_, load, _) in map.iter() {
            prop_assert_eq!(load, 0.0);
        }
        let _ = VmId::new(0);
    }
}
