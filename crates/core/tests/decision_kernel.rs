//! Equivalence suite for the single-pass level-bucketed decision kernel.
//!
//! [`ScoreEngine::decide_scored`] is the reference implementation (ranked
//! candidate list + per-candidate `delta_for` sweep); the hot path
//! [`ScoreEngine::decide_scored_with`] and the forced-bucketed variant
//! must produce **bit-identical** `MigrationDecision`s — same target,
//! same gain bits, same candidate accounting — on every topology shape,
//! with forecast views on or off, with hosts down, and under
//! `max_candidates` caps. The scratch is reused across all cases, so the
//! epoch-stamped accumulators are exercised against stale state too.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use score_core::{
    Allocation, Cluster, KernelScratch, LocalView, MigrationDecision, ScoreConfig, ScoreEngine,
    ServerSpec, VmSpec,
};
use score_topology::{
    CanonicalTreeBuilder, FatTreeBuilder, ServerId, StarTopology, Topology, VmId,
};
use score_traffic::{PairTraffic, WorkloadConfig};
use std::cell::RefCell;
use std::sync::Arc;

thread_local! {
    /// Reused across every proptest case on purpose: a kernel that only
    /// works on a zeroed scratch would pass a per-case-fresh test but
    /// corrupt real rings, which thread one scratch through all holds.
    static SCRATCH: RefCell<KernelScratch> = RefCell::new(KernelScratch::new());
}

fn random_topo(kind: u8, size: u8) -> Arc<dyn Topology> {
    match kind % 3 {
        0 => {
            let racks = 2 + u32::from(size % 6) * 2; // 2..12, even
            Arc::new(
                CanonicalTreeBuilder::new()
                    .racks(racks)
                    .hosts_per_rack(2 + u32::from(size % 4))
                    .racks_per_agg(2)
                    .cores(2)
                    .build()
                    .expect("valid tree"),
            )
        }
        1 => {
            let k = if size.is_multiple_of(2) { 4 } else { 6 };
            Arc::new(FatTreeBuilder::new().k(k).build().expect("valid fat-tree"))
        }
        _ => Arc::new(StarTopology::new(4 + u32::from(size % 12), 1e9)),
    }
}

fn balanced_alloc(num_vms: u32, num_servers: u32, seed: u64) -> Allocation {
    // Balanced spread over a seeded server permutation: never overcommits
    // (≤ ceil(n/ns) per server) while still randomizing locality.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm: Vec<u32> = (0..num_servers).collect();
    for i in (1..perm.len()).rev() {
        perm.swap(i, rng.gen_range(0..=i));
    }
    Allocation::from_fn(num_vms, num_servers, |vm| {
        ServerId::new(perm[vm.index() % perm.len()])
    })
}

fn assert_bit_identical(a: &MigrationDecision, b: &MigrationDecision, what: &str) {
    assert_eq!(a.vm, b.vm, "{what}: vm");
    assert_eq!(a.target, b.target, "{what}: target");
    assert_eq!(a.gain.to_bits(), b.gain.to_bits(), "{what}: gain bits");
    assert_eq!(
        a.predicted_gain.to_bits(),
        b.predicted_gain.to_bits(),
        "{what}: predicted_gain bits"
    );
    assert_eq!(a.preemptive, b.preemptive, "{what}: preemptive");
    assert_eq!(a.evaluated, b.evaluated, "{what}: evaluated");
    assert_eq!(
        a.rejected_capacity, b.rejected_capacity,
        "{what}: rejected_capacity"
    );
}

#[allow(clippy::too_many_arguments)]
fn check_case(
    kind: u8,
    size: u8,
    seed: u64,
    vm_pick: u32,
    forecast: bool,
    hosts_down: u8,
    cap: u8,
) {
    let topo = random_topo(kind, size);
    let num_servers = topo.num_servers() as u32;
    let num_vms = (num_servers * 2).clamp(4, 96);
    let traffic: PairTraffic = WorkloadConfig::new(num_vms, seed).generate();
    let alloc = balanced_alloc(num_vms, num_servers, seed ^ 0x5eed);
    let mut cluster = Cluster::new(
        Arc::clone(&topo),
        ServerSpec::paper_default(),
        VmSpec::paper_default(),
        &traffic,
        alloc,
    )
    .expect("balanced allocation is feasible");

    let vm = VmId::new(vm_pick % num_vms);
    // Knock out up to `hosts_down` servers (never the holder's own) so
    // can_host rejections flow through both paths identically.
    let own = cluster.allocation().server_of(vm);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xd0d0);
    for _ in 0..hosts_down {
        let s = ServerId::new(rng.gen_range(0..num_servers));
        if s != own {
            cluster.fail_host(s);
        }
    }

    let config = ScoreConfig {
        max_candidates: match cap % 4 {
            0 => None,
            c => Some(c as usize * 2 - 1), // 1, 3, 5
        },
        ..ScoreConfig::paper_default()
    };
    let engine = ScoreEngine::new(Default::default(), config);

    let observed = LocalView::observe(vm, cluster.allocation(), &traffic, cluster.topo());
    // Forecast decisions score a predicted view against the landed one;
    // emulate the outlook by scaling peer rates (some up, some down).
    let (decision_view, current) = if forecast {
        let mut predicted = observed.clone();
        for (i, p) in predicted.peers.iter_mut().enumerate() {
            p.rate *= if i % 2 == 0 { 1.75 } else { 0.4 };
        }
        (predicted, Some(&observed))
    } else {
        (observed.clone(), None)
    };

    let reference = engine.decide_scored(&decision_view, current, &cluster);
    SCRATCH.with(|s| {
        let scratch = &mut *s.borrow_mut();
        let hot = engine.decide_scored_with(&decision_view, current, &cluster, scratch);
        assert_bit_identical(&reference, &hot, "decide_scored_with");
        let forced = engine.decide_scored_bucketed(&decision_view, current, &cluster, scratch);
        assert_bit_identical(&reference, &forced, "decide_scored_bucketed");
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Reactive decisions: kernel == reference on every topology family.
    #[test]
    fn kernel_matches_reference_reactive(
        kind in 0u8..3, size in 0u8..12, seed in 0u64..10_000, vm in 0u32..96,
        hosts_down in 0u8..3, cap in 0u8..4,
    ) {
        check_case(kind, size, seed, vm, false, hosts_down, cap);
    }

    /// Forecast-envelope decisions (predicted view scored against the
    /// landed one, pre-emptive accounting active): still bit-identical.
    #[test]
    fn kernel_matches_reference_forecast(
        kind in 0u8..3, size in 0u8..12, seed in 0u64..10_000, vm in 0u32..96,
        hosts_down in 0u8..3, cap in 0u8..4,
    ) {
        check_case(kind, size, seed, vm, true, hosts_down, cap);
    }
}

/// The scratch must be reusable across *different* topologies without a
/// reset call in between — the session layer swaps probe clusters under
/// one ring during fault drills.
#[test]
fn scratch_survives_topology_swaps() {
    for (kind, size, seed) in [
        (0u8, 3u8, 7u64),
        (1, 1, 8),
        (2, 9, 9),
        (0, 11, 10),
        (1, 0, 11),
    ] {
        check_case(kind, size, seed, 5, false, 1, 0);
        check_case(kind, size, seed, 5, true, 0, 2);
    }
}
