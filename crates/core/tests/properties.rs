//! Property-based tests for the S-CORE core algorithm.
//!
//! The central invariant is Lemma 3: the locally-computable migration delta
//! must equal the difference of full Eq.-(2) recomputations, on any
//! topology, traffic pattern and allocation.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use score_core::{
    Allocation, Cluster, CostModel, HighestLevelFirst, LocalView, RoundRobin, ScoreConfig,
    ScoreEngine, ServerSpec, Token, TokenRing, VmSpec,
};
use score_topology::{CanonicalTree, FatTree, Level, ServerId, Topology, VmId};
use score_traffic::{PairTraffic, WorkloadConfig};
use std::sync::Arc;

fn random_traffic(num_vms: u32, seed: u64) -> PairTraffic {
    WorkloadConfig::new(num_vms, seed).generate()
}

fn random_allocation(num_vms: u32, num_servers: u32, seed: u64) -> Allocation {
    let mut rng = StdRng::seed_from_u64(seed);
    Allocation::from_fn(num_vms, num_servers, |_| {
        ServerId::new(rng.gen_range(0..num_servers))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lemma3_equals_full_recomputation_canonical(
        seed in 0u64..500, vm in 0u32..24, target in 0u32..16,
    ) {
        let topo = CanonicalTree::small();
        let traffic = random_traffic(24, seed);
        let mut alloc = random_allocation(24, 16, seed ^ 0xabcd);
        let model = CostModel::paper_default();
        let u = VmId::new(vm);
        let t = ServerId::new(target);
        let delta = model.migration_delta(u, t, &alloc, &traffic, &topo);
        let before = model.total_cost(&alloc, &traffic, &topo);
        alloc.move_vm(u, t);
        let after = model.total_cost(&alloc, &traffic, &topo);
        prop_assert!((delta - (before - after)).abs() < 1e-6 * before.abs().max(1.0),
            "delta {} vs recomputed {}", delta, before - after);
    }

    #[test]
    fn lemma3_equals_full_recomputation_fattree(
        seed in 0u64..500, vm in 0u32..24, target in 0u32..16,
    ) {
        let topo = FatTree::small();
        let traffic = random_traffic(24, seed);
        let mut alloc = random_allocation(24, 16, seed ^ 0x1234);
        let model = CostModel::paper_default();
        let u = VmId::new(vm);
        let t = ServerId::new(target);
        let delta = model.migration_delta(u, t, &alloc, &traffic, &topo);
        let before = model.total_cost(&alloc, &traffic, &topo);
        alloc.move_vm(u, t);
        let after = model.total_cost(&alloc, &traffic, &topo);
        prop_assert!((delta - (before - after)).abs() < 1e-6 * before.abs().max(1.0));
    }

    #[test]
    fn local_view_delta_matches_cost_model(seed in 0u64..300, vm in 0u32..24, target in 0u32..16) {
        let topo = CanonicalTree::small();
        let traffic = random_traffic(24, seed);
        let alloc = random_allocation(24, 16, seed ^ 0x77);
        let model = CostModel::paper_default();
        let u = VmId::new(vm);
        let t = ServerId::new(target);
        let view = LocalView::observe(u, &alloc, &traffic, &topo);
        let local = view.delta_for(t, model.weights(), &topo);
        let global = model.migration_delta(u, t, &alloc, &traffic, &topo);
        // Tolerance is relative to the traffic magnitude: the bucketed
        // delta_for evaluates the same sum in decomposed order, so the two
        // agree to FP rounding of the summed terms, not absolutely.
        prop_assert!((local - global).abs() < 1e-9 * view.total_rate().max(1.0),
            "local {} vs global {}", local, global);
    }

    #[test]
    fn total_cost_is_half_vm_cost_sum(seed in 0u64..300) {
        let topo = CanonicalTree::small();
        let traffic = random_traffic(20, seed);
        let alloc = random_allocation(20, 16, seed ^ 0x99);
        let model = CostModel::paper_default();
        let total = model.total_cost(&alloc, &traffic, &topo);
        let sum: f64 = (0..20).map(|v| model.vm_cost(VmId::new(v), &alloc, &traffic, &topo)).sum();
        prop_assert!((total - sum / 2.0).abs() < 1e-6 * total.max(1.0));
    }

    #[test]
    fn token_roundtrip(ids in prop::collection::btree_set(0u32..10_000, 0..128),
                       levels in prop::collection::vec(0u8..4, 0..128)) {
        let mut token = Token::for_vms(ids.iter().copied().map(VmId::new));
        for (i, &id) in ids.iter().enumerate() {
            if let Some(&l) = levels.get(i) {
                token.set_level(VmId::new(id), Level::new(l));
            }
        }
        let decoded = Token::decode(&token.encode()).unwrap();
        prop_assert_eq!(decoded, token);
    }

    #[test]
    fn engine_never_increases_cost(seed in 0u64..200) {
        let topo: Arc<dyn Topology> = Arc::new(CanonicalTree::small());
        let traffic = random_traffic(32, seed);
        let alloc = Allocation::from_fn(32, 16, |vm| ServerId::new(vm.get() % 16));
        let mut cluster = Cluster::new(
            Arc::clone(&topo), ServerSpec::paper_default(), VmSpec::paper_default(),
            &traffic, alloc,
        ).unwrap();
        let engine = ScoreEngine::paper_default();
        let model = engine.cost_model().clone();
        let mut cost = model.total_cost(cluster.allocation(), &traffic, cluster.topo());
        for v in 0..32 {
            let (decision, _) = engine.step(VmId::new(v), &mut cluster, &traffic);
            let now = model.total_cost(cluster.allocation(), &traffic, cluster.topo());
            prop_assert!(now <= cost + 1e-9, "step for vm{} increased cost", v);
            if decision.migrates() {
                prop_assert!(decision.gain > 0.0);
            }
            cost = now;
        }
    }

    #[test]
    fn engine_respects_migration_cost(seed in 0u64..100, cm in 0.0f64..1e9) {
        let topo: Arc<dyn Topology> = Arc::new(CanonicalTree::small());
        let traffic = random_traffic(24, seed);
        let alloc = Allocation::from_fn(24, 16, |vm| ServerId::new(vm.get() % 16));
        let cluster = Cluster::new(
            Arc::clone(&topo), ServerSpec::paper_default(), VmSpec::paper_default(),
            &traffic, alloc,
        ).unwrap();
        let engine = ScoreEngine::new(
            CostModel::paper_default(),
            ScoreConfig::paper_default().with_migration_cost(cm),
        );
        for v in 0..24 {
            let view = LocalView::observe(VmId::new(v), cluster.allocation(), &traffic, cluster.topo());
            let d = engine.decide(&view, &cluster);
            if d.migrates() {
                prop_assert!(d.gain > cm, "gain {} must exceed cm {}", d.gain, cm);
            }
        }
    }

    #[test]
    fn ring_converges_and_respects_capacity(seed in 0u64..100, slots in 2u32..6) {
        let topo: Arc<dyn Topology> = Arc::new(CanonicalTree::small());
        let traffic = random_traffic(32, seed);
        let alloc = Allocation::from_fn(32, 16, |vm| ServerId::new(vm.get() % 16));
        let spec = ServerSpec { vm_slots: slots, ..ServerSpec::paper_default() };
        let mut cluster = Cluster::new(
            Arc::clone(&topo), spec, VmSpec::paper_default(), &traffic, alloc,
        ).unwrap();
        let mut ring = TokenRing::new(ScoreEngine::paper_default(), RoundRobin::new(), 32);
        let stats = ring.run_iterations(6, &mut cluster, &traffic);
        // Convergence: the last iteration performs no migrations (cm = 0
        // requires strictly positive gain, and gains strictly decrease the
        // cost which is bounded below).
        prop_assert_eq!(stats[5].migrations, 0, "should converge within 6 sweeps");
        for s in 0..16u32 {
            prop_assert!(cluster.allocation().occupancy(ServerId::new(s)) <= slots as usize);
        }
        prop_assert!(cluster.allocation().is_consistent());
    }

}

/// Both policies apply the same Theorem-1 condition, but visit order
/// changes which local optimum a single run lands in, so a per-seed bound
/// would be noise. Averaged over seeds, HLF must be competitive with RR
/// (the paper, §VI-B, finds it strictly better on its large instances).
#[test]
fn hlf_competitive_with_rr_on_average() {
    let topo: Arc<dyn Topology> = Arc::new(CanonicalTree::small());
    let model = CostModel::paper_default();
    let mut sum_rr = 0.0;
    let mut sum_hlf = 0.0;
    for seed in 0..24u64 {
        let traffic = random_traffic(48, seed);
        let alloc = Allocation::from_fn(48, 16, |vm| ServerId::new(vm.get() % 16));
        let make_cluster = |a: Allocation| {
            Cluster::new(
                Arc::clone(&topo),
                ServerSpec::paper_default(),
                VmSpec::paper_default(),
                &traffic,
                a,
            )
            .unwrap()
        };

        let mut c_rr = make_cluster(alloc.clone());
        let mut ring_rr = TokenRing::new(ScoreEngine::paper_default(), RoundRobin::new(), 48);
        ring_rr.run_iterations(6, &mut c_rr, &traffic);
        sum_rr += model.total_cost(c_rr.allocation(), &traffic, c_rr.topo());

        let mut c_hlf = make_cluster(alloc);
        let mut ring_hlf =
            TokenRing::new(ScoreEngine::paper_default(), HighestLevelFirst::new(), 48);
        ring_hlf.run_iterations(6, &mut c_hlf, &traffic);
        sum_hlf += model.total_cost(c_hlf.allocation(), &traffic, c_hlf.topo());
    }
    assert!(
        sum_hlf <= sum_rr * 1.3,
        "mean HLF cost {} should be competitive with mean RR cost {}",
        sum_hlf / 24.0,
        sum_rr / 24.0
    );
}
