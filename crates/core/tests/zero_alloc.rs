//! Counting-allocator proof that the steady-state decision path makes
//! **zero heap allocations**.
//!
//! The ring threads one `DecisionScratch` (observation buffers + the
//! level-bucketed `KernelScratch`) through every hold, and the token
//! policies run on epoch-stamped sets and pre-built bitset indexes — so
//! once the ring has seen a full iteration (every buffer at its
//! high-water mark, the placement converged), further holds must not
//! touch the allocator at all. A regression here silently reintroduces
//! per-decision malloc traffic, which is exactly what the single-pass
//! kernel exists to avoid.

use score_core::{
    Allocation, Cluster, HighestLevelFirst, RoundRobin, ScoreEngine, ServerSpec, TokenPolicy,
    TokenRing, VmSpec,
};
use score_topology::{CanonicalTree, ServerId, Topology};
use score_traffic::WorkloadConfig;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Delegates to the system allocator, counting every `alloc`/`realloc`.
struct CountingAlloc;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn steady_state_allocs(policy: impl TokenPolicy + 'static, name: &str) {
    let topo: Arc<dyn Topology> = Arc::new(CanonicalTree::small());
    let num_servers = topo.num_servers() as u32;
    let num_vms = num_servers * 2;
    let traffic = WorkloadConfig::new(num_vms, 0xa110c).generate();
    let alloc = Allocation::from_fn(num_vms, num_servers, |vm| {
        ServerId::new(vm.get() % num_servers)
    });
    let mut cluster = Cluster::new(
        Arc::clone(&topo),
        ServerSpec::paper_default(),
        VmSpec::paper_default(),
        &traffic,
        alloc,
    )
    .expect("round-robin allocation is feasible");
    let mut ring = TokenRing::new(ScoreEngine::paper_default(), policy, num_vms);

    // Warm-up: enough full iterations for the placement to converge (no
    // more beneficial moves) and every reusable buffer to reach its
    // high-water mark.
    for _ in 0..4 {
        ring.run_iteration(&mut cluster, &traffic);
    }

    // Steady state: two more full iterations — covering round restarts,
    // every holder's observation and the full decision kernel — must not
    // allocate. Migrations are excluded from the claim (moving a VM grows
    // per-server lists), so assert the warmed-up ring no longer moves.
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    let mut migrations = 0;
    for _ in 0..(num_vms as usize * 2) {
        let Some(outcome) = ring.step(&mut cluster, &traffic) else {
            break;
        };
        if outcome.decision.migrates() {
            migrations += 1;
        }
    }
    let delta = ALLOC_CALLS.load(Ordering::Relaxed) - before;
    assert_eq!(
        migrations, 0,
        "{name}: placement did not converge during warm-up"
    );
    assert_eq!(
        delta, 0,
        "{name}: steady-state holds performed {delta} heap allocations"
    );
}

#[test]
fn steady_state_decisions_do_not_allocate() {
    steady_state_allocs(RoundRobin::new(), "round-robin");
    steady_state_allocs(HighestLevelFirst::new(), "hlf");
}
