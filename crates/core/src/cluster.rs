//! Cluster state: topology + allocation + per-server resource usage.
//!
//! [`Cluster`] is the piece of shared world state the simulator, the S-CORE
//! engine and the baselines all operate on. It enforces the server-side
//! capacity boundaries of §VI ("a VM migrates only when Theorem 1 is
//! satisfied and the target host has sufficient system resources").

use score_topology::{ServerId, Topology, VmId};
use score_traffic::PairTraffic;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::allocation::Allocation;
use crate::resources::{AdmissionError, CapacityReport, ServerSpec, ServerUsage, VmSpec};
use crate::slotindex::FreeSlotIndex;

/// Error constructing a [`Cluster`].
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// The allocation references more servers than the topology has.
    ServerCountMismatch {
        /// Servers in the allocation.
        allocation: u32,
        /// Servers in the topology.
        topology: usize,
    },
    /// VM population differs between allocation, specs and traffic.
    VmCountMismatch {
        /// VMs in the allocation.
        allocation: u32,
        /// VM specs supplied.
        specs: usize,
        /// VMs in the traffic description.
        traffic: u32,
    },
    /// The initial allocation violates a server's capacity.
    InitialOverCommit {
        /// The overloaded server.
        server: ServerId,
        /// The violated resource.
        source: AdmissionError,
    },
    /// A requested placement target refused the VM.
    PlacementRejected {
        /// The refusing server.
        server: ServerId,
        /// The violated resource.
        source: AdmissionError,
    },
    /// No server in the cluster can host the VM.
    NoCapacity,
    /// The VM does not exist (out of range, or already departed).
    UnknownVm {
        /// The offending id.
        vm: VmId,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::ServerCountMismatch {
                allocation,
                topology,
            } => write!(
                f,
                "allocation spans {allocation} servers but the topology has {topology}"
            ),
            ClusterError::VmCountMismatch {
                allocation,
                specs,
                traffic,
            } => write!(
                f,
                "VM population mismatch: allocation {allocation}, specs {specs}, traffic {traffic}"
            ),
            ClusterError::InitialOverCommit { server, source } => {
                write!(f, "initial allocation overcommits {server}: {source}")
            }
            ClusterError::PlacementRejected { server, source } => {
                write!(f, "placement on {server} rejected: {source}")
            }
            ClusterError::NoCapacity => write!(f, "no server can host the VM"),
            ClusterError::UnknownVm { vm } => {
                write!(f, "{vm} does not exist (out of range or departed)")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// Lazy per-host cache of [`Cluster::host_external_load`].
///
/// The dynamic bandwidth probe reads the target's external load on every
/// candidate, and computing it is O(hosted VMs × their degrees) — the
/// single most expensive part of a decision at 100k hosts. The cache
/// memoizes it per host under `&self` (atomics, not locks): a slot is a
/// `(stamp, f64 bits)` pair, filled on first read and invalidated in O(1)
/// by every mutator that changes the quantity.
///
/// Why racing readers are sound: the load is a pure function of the
/// allocation and the traffic matrix, both of which only change under
/// `&mut Cluster`. Within any `&self` borrow the true value is therefore
/// constant — concurrent fillers compute bit-identical values, so
/// whichever `put` lands last rewrites the same bits. The value store is
/// ordered before the stamp store (Release) and readers load the stamp
/// with Acquire, so a stamped slot always yields a fully-written value.
/// Cached reads are bit-identical to recomputation by construction.
#[derive(Debug, Default)]
struct ExtLoadCache {
    /// 1 = the matching `values` slot holds the host's current load.
    stamps: Vec<AtomicU64>,
    /// `f64::to_bits` of the cached load, meaningful only when stamped.
    values: Vec<AtomicU64>,
}

impl ExtLoadCache {
    fn new(servers: usize) -> Self {
        ExtLoadCache {
            stamps: (0..servers).map(|_| AtomicU64::new(0)).collect(),
            values: (0..servers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    #[inline]
    fn get(&self, i: usize) -> Option<f64> {
        if self.stamps[i].load(Ordering::Acquire) == 1 {
            Some(f64::from_bits(self.values[i].load(Ordering::Relaxed)))
        } else {
            None
        }
    }

    #[inline]
    fn put(&self, i: usize, v: f64) {
        self.values[i].store(v.to_bits(), Ordering::Relaxed);
        self.stamps[i].store(1, Ordering::Release);
    }

    #[inline]
    fn invalidate(&self, i: usize) {
        self.stamps[i].store(0, Ordering::Relaxed);
    }

    fn invalidate_all(&self) {
        for s in &self.stamps {
            s.store(0, Ordering::Relaxed);
        }
    }
}

/// Topology + allocation + resource ledger.
pub struct Cluster {
    topo: Arc<dyn Topology>,
    server_spec: ServerSpec,
    vm_specs: Vec<VmSpec>,
    /// Total traffic demand per VM: `Σ_v λ(u, v)` (upper bound on its NIC
    /// load; the admission check refines this dynamically by excluding
    /// intra-host pairs).
    vm_nic_demand: Vec<f64>,
    /// The pairwise loads, kept for dynamic NIC accounting.
    traffic: PairTraffic,
    alloc: Allocation,
    usage: Vec<ServerUsage>,
    /// Liveness per VM id. Departed VMs are tombstoned (kept in the
    /// allocation with zero traffic and zero resource usage) rather than
    /// compacted, so ids stay dense and stable for audit logs and
    /// replay.
    active: Vec<bool>,
    /// Max-free-slots segment tree over the fleet, kept in lockstep with
    /// `usage[*].slots` so [`Cluster::choose_server`] resolves in
    /// O(log servers) instead of a fleet scan. Down hosts are pinned to
    /// zero free slots so the index never descends into them.
    slot_index: FreeSlotIndex,
    /// Liveness per server. A down host admits nothing
    /// ([`AdmissionError::HostDown`]) and is excluded from
    /// [`Cluster::choose_server`]; its VMs stay bound until the fault
    /// pipeline evacuates them (migrations *off* a down host are legal).
    host_up: Vec<bool>,
    /// Hosts currently down, cached so recovery accounting is O(1).
    hosts_down: u32,
    /// Access-tier capacity scale from `LinkDegrade { tier: 0 }` events:
    /// the dynamic NIC admission check runs against
    /// `factor × nic_bps`. 1.0 when undegraded.
    nic_capacity_factor: f64,
    /// Memoized per-host external loads (see [`ExtLoadCache`]).
    ext_load: ExtLoadCache,
}

impl fmt::Debug for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cluster")
            .field("topology", &self.topo.name())
            .field("servers", &self.alloc.num_servers())
            .field("vms", &self.alloc.num_vms())
            .field("server_spec", &self.server_spec)
            .finish_non_exhaustive()
    }
}

impl Clone for Cluster {
    fn clone(&self) -> Self {
        Cluster {
            topo: Arc::clone(&self.topo),
            server_spec: self.server_spec,
            vm_specs: self.vm_specs.clone(),
            vm_nic_demand: self.vm_nic_demand.clone(),
            traffic: self.traffic.clone(),
            alloc: self.alloc.clone(),
            usage: self.usage.clone(),
            active: self.active.clone(),
            slot_index: self.slot_index.clone(),
            host_up: self.host_up.clone(),
            hosts_down: self.hosts_down,
            nic_capacity_factor: self.nic_capacity_factor,
            // Clones start with a cold cache: atomics are not `Clone`,
            // and the copy re-fills lazily from its own state anyway.
            ext_load: ExtLoadCache::new(self.usage.len()),
        }
    }
}

impl Cluster {
    /// Builds a cluster with uniform VM specs.
    ///
    /// # Errors
    ///
    /// See [`Cluster::with_vm_specs`].
    pub fn new(
        topo: Arc<dyn Topology>,
        server_spec: ServerSpec,
        vm_spec: VmSpec,
        traffic: &PairTraffic,
        alloc: Allocation,
    ) -> Result<Self, ClusterError> {
        let specs = vec![vm_spec; alloc.num_vms() as usize];
        Cluster::with_vm_specs(topo, server_spec, specs, traffic, alloc)
    }

    /// Builds a cluster with per-VM (heterogeneous) specs, validating the
    /// initial allocation against server capacities.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError`] if populations are inconsistent or the
    /// initial allocation overcommits any server (slots/RAM/CPU; the NIC
    /// threshold is enforced only on migrations, since the initial
    /// placement is whatever the DC already runs).
    pub fn with_vm_specs(
        topo: Arc<dyn Topology>,
        server_spec: ServerSpec,
        vm_specs: Vec<VmSpec>,
        traffic: &PairTraffic,
        alloc: Allocation,
    ) -> Result<Self, ClusterError> {
        if alloc.num_servers() as usize != topo.num_servers() {
            return Err(ClusterError::ServerCountMismatch {
                allocation: alloc.num_servers(),
                topology: topo.num_servers(),
            });
        }
        if vm_specs.len() != alloc.num_vms() as usize || traffic.num_vms() != alloc.num_vms() {
            return Err(ClusterError::VmCountMismatch {
                allocation: alloc.num_vms(),
                specs: vm_specs.len(),
                traffic: traffic.num_vms(),
            });
        }
        let vm_nic_demand: Vec<f64> = (0..alloc.num_vms())
            .map(|v| traffic.peers(VmId::new(v)).iter().map(|&(_, r)| r).sum())
            .collect();
        let mut usage = vec![ServerUsage::default(); topo.num_servers()];
        for (vm, server) in alloc.iter() {
            let u = &mut usage[server.index()];
            // Validate slots/RAM/CPU with an unbounded NIC threshold.
            if let Err(source) =
                u.admission_check(&server_spec, &vm_specs[vm.index()], 0.0, f64::INFINITY)
            {
                return Err(ClusterError::InitialOverCommit { server, source });
            }
            u.admit(&vm_specs[vm.index()], vm_nic_demand[vm.index()]);
        }
        let active = vec![true; alloc.num_vms() as usize];
        let slot_index = FreeSlotIndex::new(
            usage
                .iter()
                .map(|u| server_spec.vm_slots.saturating_sub(u.slots)),
        );
        let host_up = vec![true; topo.num_servers()];
        let ext_load = ExtLoadCache::new(topo.num_servers());
        let cluster = Cluster {
            topo,
            server_spec,
            vm_specs,
            vm_nic_demand,
            traffic: traffic.clone(),
            alloc,
            usage,
            active,
            slot_index,
            host_up,
            hosts_down: 0,
            nic_capacity_factor: 1.0,
            ext_load,
        };
        // Pre-fill the external-load cache through the ordinary read path
        // (so cached values are bit-identical to lazy fills): one O(pairs)
        // sweep at build time means the first decisions of a fresh
        // cluster don't each pay a cold per-host compute.
        for s in 0..cluster.usage.len() {
            let _ = cluster.host_external_load(ServerId::new(s as u32));
        }
        Ok(cluster)
    }

    /// Repairs the free-slot index entry of one server after its slot
    /// count changed. Down hosts stay pinned at zero free slots.
    fn refresh_slot_index(&mut self, server: ServerId) {
        let free = if self.host_up[server.index()] {
            self.server_spec
                .vm_slots
                .saturating_sub(self.usage[server.index()].slots)
        } else {
            0
        };
        self.slot_index.set(server.index(), free);
    }

    /// The topology.
    pub fn topo(&self) -> &dyn Topology {
        self.topo.as_ref()
    }

    /// Shared handle to the topology.
    pub fn topo_arc(&self) -> Arc<dyn Topology> {
        Arc::clone(&self.topo)
    }

    /// The current allocation.
    pub fn allocation(&self) -> &Allocation {
        &self.alloc
    }

    /// The uniform server spec.
    pub fn server_spec(&self) -> &ServerSpec {
        &self.server_spec
    }

    /// Spec of one VM.
    pub fn vm_spec(&self, vm: VmId) -> &VmSpec {
        &self.vm_specs[vm.index()]
    }

    /// Estimated NIC demand of one VM in bits per second.
    pub fn vm_nic_demand(&self, vm: VmId) -> f64 {
        self.vm_nic_demand[vm.index()]
    }

    /// Resource usage of one server.
    pub fn usage(&self, server: ServerId) -> &ServerUsage {
        &self.usage[server.index()]
    }

    /// Number of VMs.
    pub fn num_vms(&self) -> u32 {
        self.alloc.num_vms()
    }

    /// The §V-B5 capacity probe for a server.
    pub fn capacity_report(&self, server: ServerId) -> CapacityReport {
        CapacityReport::from_usage(&self.server_spec, &self.usage[server.index()])
    }

    /// Traffic of `vm` that would leave `host`'s NIC if `vm` ran there:
    /// the sum of its pair rates to peers hosted elsewhere.
    pub fn external_rate(&self, vm: VmId, host: ServerId) -> f64 {
        self.traffic
            .peers(vm)
            .iter()
            .filter(|&&(peer, _)| peer != vm && self.alloc.server_of(peer) != host)
            .map(|&(_, rate)| rate)
            .sum()
    }

    /// Current NIC load of a server: traffic its hosted VMs exchange with
    /// VMs on other servers.
    ///
    /// Memoized per host (see `ExtLoadCache`): the first read after a
    /// mutation touching the host pays the O(hosted VMs × degree) sweep,
    /// repeat reads are O(1). Cached reads are bit-identical to fresh
    /// computation — the cache only ever serves values produced by the
    /// sweep below against the current allocation/traffic state.
    pub fn host_external_load(&self, host: ServerId) -> f64 {
        if let Some(v) = self.ext_load.get(host.index()) {
            return v;
        }
        let v: f64 = self
            .alloc
            .vms_on(host)
            .iter()
            .map(|&u| self.external_rate(u, host))
            .sum();
        self.ext_load.put(host.index(), v);
        v
    }

    /// Can `server` host `vm` right now, honouring the bandwidth threshold
    /// (fraction of NIC capacity hosted traffic may use)?
    ///
    /// The bandwidth check is *dynamic* (§V-C): it accounts for the NIC
    /// load the move would actually produce — pairs that become intra-host
    /// stop loading the NIC at all, so collocating a heavy pair can
    /// *relieve* the target's NIC.
    ///
    /// # Errors
    ///
    /// Returns the violated resource.
    pub fn can_host(
        &self,
        server: ServerId,
        vm: VmId,
        bandwidth_threshold: f64,
    ) -> Result<(), AdmissionError> {
        if !self.host_up[server.index()] {
            return Err(AdmissionError::HostDown);
        }
        // Slots / RAM / CPU via the static ledger (NIC handled below).
        self.usage[server.index()].admission_check(
            &self.server_spec,
            &self.vm_specs[vm.index()],
            0.0,
            f64::INFINITY,
        )?;
        if bandwidth_threshold.is_finite() {
            let incoming = self.external_rate(vm, server);
            // Pairs between `vm` and VMs already on `server` currently load
            // the server's NIC; after the move they become intra-host.
            let internalised: f64 = self
                .traffic
                .peers(vm)
                .iter()
                .filter(|&&(peer, _)| self.alloc.server_of(peer) == server)
                .map(|&(_, rate)| rate)
                .sum();
            let new_load = self.host_external_load(server) + incoming - internalised;
            let capacity = self.nic_capacity_factor * self.server_spec.nic_bps;
            if new_load > bandwidth_threshold * capacity + 1e-9 {
                return Err(AdmissionError::Bandwidth);
            }
        }
        Ok(())
    }

    /// Migrates `vm` to `target` after re-validating admission.
    ///
    /// # Errors
    ///
    /// Returns the violated resource; the cluster is unchanged on error.
    pub fn migrate(
        &mut self,
        vm: VmId,
        target: ServerId,
        bandwidth_threshold: f64,
    ) -> Result<(), AdmissionError> {
        let current = self.alloc.server_of(vm);
        if current == target {
            return Ok(());
        }
        self.can_host(target, vm, bandwidth_threshold)?;
        let spec = self.vm_specs[vm.index()];
        let nic = self.vm_nic_demand[vm.index()];
        self.usage[current.index()].evict(&spec, nic);
        self.usage[target.index()].admit(&spec, nic);
        self.refresh_slot_index(current);
        self.refresh_slot_index(target);
        self.alloc.move_vm(vm, target);
        // Only the two endpoints' external loads change: for any third
        // server, `vm`'s pairs were external before and stay external.
        self.ext_load.invalidate(current.index());
        self.ext_load.invalidate(target.index());
        Ok(())
    }

    /// Whether `vm` is live (placed and not yet removed). Out-of-range
    /// ids are simply not live.
    pub fn is_active(&self, vm: VmId) -> bool {
        self.active.get(vm.index()).copied().unwrap_or(false)
    }

    /// Number of live VMs (total ids minus tombstones).
    pub fn num_active(&self) -> u32 {
        self.active.iter().filter(|&&a| a).count() as u32
    }

    /// Deterministically picks the server a newly arriving VM of `spec`
    /// should land on: the admissible server with the most free slots,
    /// lowest id winning ties — the §V-A "centralized VM instance
    /// placement manager" choice, reproducible from cluster state alone.
    ///
    /// Resolved through the max-free-slots segment tree in O(log
    /// servers) best-first descents (each candidate leaf still runs the
    /// full slots/RAM/CPU admission check), which is what keeps arrival
    /// decisions at µs latency on 100k-host fleets. The pick is
    /// bit-identical to the linear fleet scan it replaced.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::NoCapacity`] when no server passes the
    /// static admission check.
    pub fn choose_server(&self, spec: &VmSpec) -> Result<ServerId, ClusterError> {
        self.slot_index
            .best(|i| {
                self.host_up[i]
                    && self.usage[i]
                        .admission_check(&self.server_spec, spec, 0.0, f64::INFINITY)
                        .is_ok()
            })
            .map(|(_, i)| ServerId::new(i as u32))
            .ok_or(ClusterError::NoCapacity)
    }

    /// Places a newly arriving VM on `server` (or the
    /// [`Cluster::choose_server`] pick when `None`), growing the
    /// population by one dense id. The newcomer starts with zero traffic
    /// — its communication cost contribution is exactly 0 until rates
    /// arrive as ordinary traffic deltas — so placement never touches
    /// existing pairs and any external cost ledger stays exact without
    /// repricing anything.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::PlacementRejected`] when the explicit
    /// target refuses the VM, or [`ClusterError::NoCapacity`] when no
    /// target was given and no server can host it. The cluster is
    /// unchanged on error.
    pub fn place_vm(
        &mut self,
        spec: VmSpec,
        server: Option<ServerId>,
    ) -> Result<(VmId, ServerId), ClusterError> {
        let target = match server {
            Some(s) => {
                if s.index() >= self.usage.len() {
                    return Err(ClusterError::NoCapacity);
                }
                if !self.host_up[s.index()] {
                    return Err(ClusterError::PlacementRejected {
                        server: s,
                        source: AdmissionError::HostDown,
                    });
                }
                self.usage[s.index()]
                    .admission_check(&self.server_spec, &spec, 0.0, f64::INFINITY)
                    .map_err(|source| ClusterError::PlacementRejected { server: s, source })?;
                s
            }
            None => self.choose_server(&spec)?,
        };
        self.usage[target.index()].admit(&spec, 0.0);
        self.refresh_slot_index(target);
        // A zero-traffic newcomer contributes 0 to the target's external
        // load; invalidate anyway so the invariant stays local to reason
        // about (every allocation change drops the touched hosts).
        self.ext_load.invalidate(target.index());
        self.vm_specs.push(spec);
        self.vm_nic_demand.push(0.0);
        let vm = self.traffic.push_vm();
        let placed = self.alloc.push_vm(target);
        debug_assert_eq!(vm, placed, "traffic and allocation ids diverged");
        self.active.push(true);
        Ok((vm, target))
    }

    /// Removes a live VM from the cluster: zeroes all its pair rates
    /// through the sparse [`Cluster::patch_traffic`] path, releases its
    /// server resources, and tombstones the id (see the `active` field —
    /// ids stay dense and stable). Returns the `(u, v, old, new)` rate
    /// changes applied, so callers keeping an incremental cost ledger
    /// can reprice exactly the departed pairs — `O(degree)`, no resync.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownVm`] for an out-of-range or
    /// already-removed id; the cluster is unchanged on error.
    pub fn remove_vm(&mut self, vm: VmId) -> Result<Vec<(VmId, VmId, f64, f64)>, ClusterError> {
        if !self.is_active(vm) {
            return Err(ClusterError::UnknownVm { vm });
        }
        let changes: Vec<(VmId, VmId, f64, f64)> = self
            .traffic
            .peers(vm)
            .iter()
            .map(|&(peer, rate)| {
                let (u, v) = if vm < peer { (vm, peer) } else { (peer, vm) };
                (u, v, rate, 0.0)
            })
            .collect();
        self.patch_traffic(&changes);
        let server = self.alloc.server_of(vm);
        let spec = self.vm_specs[vm.index()];
        // The zeroing above already drained the VM's NIC demand from the
        // per-server ledger; evict what (if any) float residue is left
        // alongside the slot/RAM/CPU release.
        let nic_residue = self.vm_nic_demand[vm.index()];
        self.usage[server.index()].evict(&spec, nic_residue);
        self.refresh_slot_index(server);
        self.vm_nic_demand[vm.index()] = 0.0;
        self.active[vm.index()] = false;
        Ok(changes)
    }

    /// Rebinds the cluster to a new traffic matrix **in place**: the
    /// allocation, server specs and VM specs carry over untouched, and
    /// only the NIC side of the resource ledger (per-VM demand estimates
    /// and per-server load) is re-derived from the new rates. This is
    /// the cheap path for a traffic-phase shift — no allocation copy, no
    /// slot/RAM/CPU re-validation (none of those depend on traffic).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::VmCountMismatch`] if the new traffic
    /// describes a different VM population; the cluster is unchanged on
    /// error.
    pub fn rebind_traffic(&mut self, traffic: &PairTraffic) -> Result<(), ClusterError> {
        if traffic.num_vms() != self.alloc.num_vms() {
            return Err(ClusterError::VmCountMismatch {
                allocation: self.alloc.num_vms(),
                specs: self.vm_specs.len(),
                traffic: traffic.num_vms(),
            });
        }
        for usage in &mut self.usage {
            usage.nic_bps = 0.0;
        }
        for v in 0..self.alloc.num_vms() {
            let vm = VmId::new(v);
            let demand: f64 = traffic.peers(vm).iter().map(|&(_, r)| r).sum();
            self.vm_nic_demand[vm.index()] = demand;
            self.usage[self.alloc.server_of(vm).index()].nic_bps += demand;
        }
        self.traffic = traffic.clone();
        self.ext_load.invalidate_all();
        Ok(())
    }

    /// Applies a **sparse** traffic delta in place: each change is
    /// `(u, v, old_rate, new_rate)` for one pair, where `old_rate` is
    /// the rate this cluster currently serves. Only the NIC-side ledger
    /// entries touched by a change are adjusted and the held traffic is
    /// patched per pair (`O(changed pairs)`, vs
    /// [`Cluster::rebind_traffic`]'s full re-derivation) — the path
    /// trace replay takes for each mid-run delta.
    ///
    /// # Panics
    ///
    /// Panics if a change names a self-pair, an out-of-range VM, or a
    /// negative/non-finite new rate.
    pub fn patch_traffic(&mut self, changes: &[(VmId, VmId, f64, f64)]) {
        let updates: Vec<(VmId, VmId, f64)> =
            changes.iter().map(|&(u, v, _, new)| (u, v, new)).collect();
        self.traffic.apply_updates(&updates);
        for &(u, v, old, new) in changes {
            let delta = new - old;
            for vm in [u, v] {
                self.vm_nic_demand[vm.index()] += delta;
                let server = self.alloc.server_of(vm);
                self.usage[server.index()].nic_bps += delta;
                // A pair-rate change moves both endpoints' hosts' external
                // loads (a no-op when they share a host, but harmless).
                self.ext_load.invalidate(server.index());
            }
        }
    }

    /// Replaces the allocation wholesale (used by centralized baselines),
    /// re-deriving usage.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InitialOverCommit`] if the new allocation
    /// violates capacity; the cluster is unchanged on error.
    pub fn set_allocation(&mut self, alloc: Allocation) -> Result<(), ClusterError> {
        let mut usage = vec![ServerUsage::default(); self.usage.len()];
        for (vm, server) in alloc.iter() {
            let u = &mut usage[server.index()];
            if let Err(source) = u.admission_check(
                &self.server_spec,
                &self.vm_specs[vm.index()],
                0.0,
                f64::INFINITY,
            ) {
                return Err(ClusterError::InitialOverCommit { server, source });
            }
            u.admit(&self.vm_specs[vm.index()], self.vm_nic_demand[vm.index()]);
        }
        self.alloc = alloc;
        self.usage = usage;
        self.slot_index = FreeSlotIndex::new(
            self.usage
                .iter()
                .map(|u| self.server_spec.vm_slots.saturating_sub(u.slots)),
        );
        self.ext_load.invalidate_all();
        Ok(())
    }

    /// Rescales every pair rate by `factor` **in place** — the dense
    /// (`ScaleAll`) fast path. The held traffic takes one contiguous
    /// sweep ([`score_traffic::PairTraffic::scale_all_in_place`]) and
    /// the NIC-side ledger (per-VM demand estimates, per-server load) is
    /// rescaled directly instead of being re-derived pair by pair:
    /// O(VMs + servers + pairs) with a vectorizable inner loop, versus
    /// the O(pairs) search-cascade the expanded per-pair delta path
    /// costs. Slot/RAM/CPU state is untouched (none of it depends on
    /// traffic).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn scale_traffic(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "factor must be positive"
        );
        self.traffic.scale_all_in_place(factor);
        for d in &mut self.vm_nic_demand {
            *d = (*d * factor).min(f64::MAX);
        }
        for u in &mut self.usage {
            u.nic_bps = (u.nic_bps * factor).min(f64::MAX);
        }
        self.ext_load.invalidate_all();
    }

    /// Whether `server` is up. Out-of-range ids are not up.
    pub fn host_is_up(&self, server: ServerId) -> bool {
        self.host_up.get(server.index()).copied().unwrap_or(false)
    }

    /// Number of hosts currently marked down.
    pub fn num_hosts_down(&self) -> u32 {
        self.hosts_down
    }

    /// Current access-tier NIC capacity factor (1.0 when undegraded).
    pub fn nic_capacity_factor(&self) -> f64 {
        self.nic_capacity_factor
    }

    /// Sets the access-tier NIC capacity factor applied by
    /// [`Cluster::can_host`]'s dynamic bandwidth check — the
    /// `LinkDegrade { tier: 0 }` / `LinkRestore` consequence. Degraded
    /// capacity only constrains *future* admissions; standing placements
    /// are never forcibly shed (the SLO accounting upstream records the
    /// violation seconds instead).
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is finite and in `(0, 1]`.
    pub fn set_nic_capacity_factor(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0 && factor <= 1.0,
            "NIC capacity factor must be in (0, 1]"
        );
        self.nic_capacity_factor = factor;
    }

    /// Marks `server` as crashed and returns its live VMs in ascending
    /// id order — the deterministic evacuation worklist. The host drops
    /// out of [`Cluster::choose_server`] immediately (its free-slot
    /// index entry is pinned to zero) and refuses all future admissions
    /// with [`AdmissionError::HostDown`]; the returned victims stay
    /// bound to it until the caller migrates them off (allowed) or
    /// retires them as unplaceable via [`Cluster::remove_vm`].
    ///
    /// Idempotent: failing an already-down host returns an empty
    /// worklist. Out-of-range servers also return an empty worklist (a
    /// fault trace may be replayed against a smaller topology probe).
    pub fn fail_host(&mut self, server: ServerId) -> Vec<VmId> {
        if server.index() >= self.host_up.len() || !self.host_up[server.index()] {
            return Vec::new();
        }
        self.host_up[server.index()] = false;
        self.hosts_down += 1;
        self.slot_index.set(server.index(), 0);
        let mut victims: Vec<VmId> = self
            .alloc
            .vms_on(server)
            .iter()
            .copied()
            .filter(|&vm| self.is_active(vm))
            .collect();
        victims.sort_unstable();
        victims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use score_topology::CanonicalTree;
    use score_traffic::PairTrafficBuilder;

    fn traffic(n: u32) -> PairTraffic {
        let mut b = PairTrafficBuilder::new(n);
        if n >= 2 {
            b.add(VmId::new(0), VmId::new(1), 100.0);
        }
        b.build()
    }

    fn cluster(vms: u32, per_server: u32) -> Cluster {
        let topo = Arc::new(CanonicalTree::small());
        let spec = ServerSpec {
            vm_slots: per_server,
            ..ServerSpec::paper_default()
        };
        let alloc = Allocation::from_fn(vms, 16, |vm| ServerId::new(vm.get() % 16));
        Cluster::new(topo, spec, VmSpec::paper_default(), &traffic(vms), alloc).unwrap()
    }

    #[test]
    fn construction_tracks_usage() {
        let c = cluster(32, 16);
        assert_eq!(c.num_vms(), 32);
        assert_eq!(c.usage(ServerId::new(0)).slots, 2);
        assert_eq!(c.vm_nic_demand(VmId::new(0)), 100.0);
        assert_eq!(c.vm_nic_demand(VmId::new(5)), 0.0);
        assert_eq!(c.capacity_report(ServerId::new(0)).free_slots, 14);
    }

    #[test]
    fn migrate_moves_usage() {
        let mut c = cluster(4, 16);
        c.migrate(VmId::new(0), ServerId::new(3), 1.0).unwrap();
        assert_eq!(c.allocation().server_of(VmId::new(0)), ServerId::new(3));
        assert_eq!(c.usage(ServerId::new(0)).slots, 0);
        assert_eq!(c.usage(ServerId::new(3)).slots, 2);
        // NIC demand moved with it.
        assert!((c.usage(ServerId::new(3)).nic_bps - 100.0).abs() < 1e-9);
    }

    #[test]
    fn migrate_respects_slots() {
        let mut c = cluster(16, 1); // one slot per server, all full
        let err = c.migrate(VmId::new(0), ServerId::new(1), 1.0).unwrap_err();
        assert_eq!(err, AdmissionError::NoSlot);
        // State unchanged on failure.
        assert_eq!(c.allocation().server_of(VmId::new(0)), ServerId::new(0));
        assert_eq!(c.usage(ServerId::new(1)).slots, 1);
    }

    #[test]
    fn migrate_to_self_is_ok() {
        let mut c = cluster(16, 1);
        // Even at capacity, staying put is fine.
        c.migrate(VmId::new(0), ServerId::new(0), 1.0).unwrap();
    }

    #[test]
    fn initial_overcommit_rejected() {
        let topo: Arc<dyn Topology> = Arc::new(CanonicalTree::small());
        let spec = ServerSpec {
            vm_slots: 1,
            ..ServerSpec::paper_default()
        };
        let alloc = Allocation::from_fn(2, 16, |_| ServerId::new(0));
        let err =
            Cluster::new(topo, spec, VmSpec::paper_default(), &traffic(2), alloc).unwrap_err();
        assert_eq!(
            err,
            ClusterError::InitialOverCommit {
                server: ServerId::new(0),
                source: AdmissionError::NoSlot
            }
        );
    }

    #[test]
    fn population_mismatches_rejected() {
        let topo: Arc<dyn Topology> = Arc::new(CanonicalTree::small());
        let alloc = Allocation::from_fn(4, 16, |vm| ServerId::new(vm.get()));
        let err = Cluster::new(
            Arc::clone(&topo),
            ServerSpec::paper_default(),
            VmSpec::paper_default(),
            &traffic(5),
            alloc,
        )
        .unwrap_err();
        assert!(matches!(err, ClusterError::VmCountMismatch { .. }));

        let alloc8 = Allocation::from_fn(4, 8, |vm| ServerId::new(vm.get()));
        let err = Cluster::new(
            topo,
            ServerSpec::paper_default(),
            VmSpec::paper_default(),
            &traffic(4),
            alloc8,
        )
        .unwrap_err();
        assert!(matches!(err, ClusterError::ServerCountMismatch { .. }));
    }

    #[test]
    fn set_allocation_revalidates() {
        let mut c = cluster(4, 2);
        let packed = Allocation::from_fn(4, 16, |_| ServerId::new(0));
        assert!(matches!(
            c.set_allocation(packed),
            Err(ClusterError::InitialOverCommit { .. })
        ));
        let fine = Allocation::from_fn(4, 16, |vm| ServerId::new(vm.get() / 2));
        c.set_allocation(fine).unwrap();
        assert_eq!(c.usage(ServerId::new(0)).slots, 2);
        assert_eq!(c.usage(ServerId::new(3)).slots, 0);
    }

    #[test]
    fn bandwidth_threshold_blocks_migration() {
        let topo: Arc<dyn Topology> = Arc::new(CanonicalTree::small());
        // vm0 exchanges 0.7 Gb/s with vm1 and 0.5 Gb/s with vm2.
        let mut b = PairTrafficBuilder::new(3);
        b.add(VmId::new(0), VmId::new(1), 0.7e9);
        b.add(VmId::new(0), VmId::new(2), 0.5e9);
        let traffic = b.build();
        let alloc = Allocation::from_fn(3, 16, |vm| ServerId::new(vm.get()));
        let mut c = Cluster::new(
            topo,
            ServerSpec::paper_default(),
            VmSpec::paper_default(),
            &traffic,
            alloc,
        )
        .unwrap();
        // Moving vm0 to an *empty* server puts its full 1.2 Gb/s external
        // demand on a 1 GbE NIC: blocked at threshold 1.0 …
        let err = c.migrate(VmId::new(0), ServerId::new(5), 1.0).unwrap_err();
        assert_eq!(err, AdmissionError::Bandwidth);
        // … but collocating with vm1 internalises the 0.7 Gb/s pair, so
        // only 0.5 Gb/s hits srv1's NIC: allowed.
        c.migrate(VmId::new(0), ServerId::new(1), 1.0).unwrap();
        assert!((c.host_external_load(ServerId::new(1)) - 0.5e9).abs() < 1.0);
        // An unconstrained threshold admits anything.
        c.migrate(VmId::new(0), ServerId::new(5), f64::INFINITY)
            .unwrap();
    }

    #[test]
    fn external_rate_tracks_allocation() {
        let topo: Arc<dyn Topology> = Arc::new(CanonicalTree::small());
        let mut b = PairTrafficBuilder::new(3);
        b.add(VmId::new(0), VmId::new(1), 100.0);
        b.add(VmId::new(0), VmId::new(2), 10.0);
        let traffic = b.build();
        let alloc = Allocation::from_fn(3, 16, |vm| ServerId::new(vm.get() / 2));
        let c = Cluster::new(
            topo,
            ServerSpec::paper_default(),
            VmSpec::paper_default(),
            &traffic,
            alloc,
        )
        .unwrap();
        // vm0 and vm1 share srv0, vm2 is on srv1.
        assert_eq!(c.external_rate(VmId::new(0), ServerId::new(0)), 10.0);
        assert_eq!(c.external_rate(VmId::new(0), ServerId::new(5)), 110.0);
        // vm0 contributes its (0,2) pair; vm1's only peer is on-host.
        assert_eq!(c.host_external_load(ServerId::new(0)), 10.0);
    }

    #[test]
    fn ext_load_cache_matches_fresh_compute_after_each_mutator() {
        // Warm every host's cache slot, mutate, then compare against a
        // clone — clones start cold, so the clone recomputes from state.
        fn warm(c: &Cluster) {
            for s in 0..16 {
                let _ = c.host_external_load(ServerId::new(s));
            }
        }
        fn check(c: &Cluster) {
            let cold = c.clone();
            for s in 0..16 {
                let sid = ServerId::new(s);
                assert_eq!(
                    c.host_external_load(sid).to_bits(),
                    cold.host_external_load(sid).to_bits(),
                    "stale cached load on server {s}"
                );
            }
        }
        let mut c = cluster(32, 16);
        warm(&c);
        c.migrate(VmId::new(0), ServerId::new(3), f64::INFINITY)
            .unwrap();
        check(&c);
        warm(&c);
        c.patch_traffic(&[(VmId::new(2), VmId::new(7), 0.0, 55.0)]);
        check(&c);
        warm(&c);
        c.scale_traffic(1.5);
        check(&c);
        warm(&c);
        let (vm, _) = c.place_vm(VmSpec::paper_default(), None).unwrap();
        c.patch_traffic(&[(VmId::new(1), vm, 0.0, 10.0)]);
        check(&c);
        warm(&c);
        c.remove_vm(vm).unwrap();
        check(&c);
        warm(&c);
        let spread = Allocation::from_fn(c.num_vms(), 16, |v| ServerId::new((v.get() * 3) % 16));
        c.set_allocation(spread).unwrap();
        check(&c);
        warm(&c);
        let mut b = PairTrafficBuilder::new(c.num_vms());
        b.add(VmId::new(4), VmId::new(9), 77.0);
        c.rebind_traffic(&b.build()).unwrap();
        check(&c);
    }

    #[test]
    fn rebind_traffic_patches_nic_ledger_in_place() {
        let mut c = cluster(4, 16);
        let before_alloc = c.allocation().clone();
        assert_eq!(c.vm_nic_demand(VmId::new(0)), 100.0);
        // New matrix: the (0,1) pair disappears, (2,3) appears at 40.
        let mut b = PairTrafficBuilder::new(4);
        b.add(VmId::new(2), VmId::new(3), 40.0);
        c.rebind_traffic(&b.build()).unwrap();
        // Allocation and slot/RAM usage carry over untouched.
        assert_eq!(c.allocation(), &before_alloc);
        assert_eq!(c.usage(ServerId::new(0)).slots, 1);
        // NIC accounting reflects the new rates.
        assert_eq!(c.vm_nic_demand(VmId::new(0)), 0.0);
        assert_eq!(c.vm_nic_demand(VmId::new(2)), 40.0);
        assert!((c.usage(ServerId::new(2)).nic_bps - 40.0).abs() < 1e-9);
        assert_eq!(c.usage(ServerId::new(0)).nic_bps, 0.0);
        // A population mismatch is rejected and leaves the cluster alone.
        let err = c.rebind_traffic(&traffic(5)).unwrap_err();
        assert!(matches!(err, ClusterError::VmCountMismatch { .. }));
        assert_eq!(c.vm_nic_demand(VmId::new(2)), 40.0);
    }

    #[test]
    fn patch_traffic_adjusts_only_changed_pairs() {
        let mut c = cluster(4, 16);
        assert_eq!(c.vm_nic_demand(VmId::new(0)), 100.0);
        // (0,1) re-rated to 60, (2,3) appears at 40.
        let changes = [
            (VmId::new(0), VmId::new(1), 100.0, 60.0),
            (VmId::new(2), VmId::new(3), 0.0, 40.0),
        ];
        c.patch_traffic(&changes);
        assert_eq!(c.vm_nic_demand(VmId::new(0)), 60.0);
        assert_eq!(c.vm_nic_demand(VmId::new(3)), 40.0);
        assert!((c.usage(ServerId::new(2)).nic_bps - 40.0).abs() < 1e-9);
        assert!((c.usage(ServerId::new(0)).nic_bps - 60.0).abs() < 1e-9);
        // The held traffic was patched in place to the same rates …
        assert_eq!(c.external_rate(VmId::new(2), ServerId::new(5)), 40.0);
        // … and the patched ledger matches what a full rebind derives.
        let patched = c.traffic.clone();
        let mut full = c.clone();
        full.rebind_traffic(&patched).unwrap();
        for v in 0..4 {
            assert!(
                (c.vm_nic_demand(VmId::new(v)) - full.vm_nic_demand(VmId::new(v))).abs() < 1e-9
            );
        }
    }

    #[test]
    fn place_vm_appends_with_zero_traffic() {
        let mut c = cluster(4, 16);
        assert_eq!(c.num_active(), 4);
        let (vm, server) = c.place_vm(VmSpec::paper_default(), None).unwrap();
        assert_eq!(vm, VmId::new(4));
        assert_eq!(c.num_vms(), 5);
        assert_eq!(c.num_active(), 5);
        assert!(c.is_active(vm));
        assert_eq!(c.allocation().server_of(vm), server);
        assert_eq!(c.vm_nic_demand(vm), 0.0);
        // Chooses an empty server (most free slots, lowest id wins): the
        // base cluster packs VMs 0..4 onto servers 0..4.
        assert_eq!(server, ServerId::new(4));
        assert_eq!(c.usage(server).slots, 1);
        // Explicit target honoured.
        let (vm2, s2) = c
            .place_vm(VmSpec::paper_default(), Some(ServerId::new(7)))
            .unwrap();
        assert_eq!(vm2, VmId::new(5));
        assert_eq!(s2, ServerId::new(7));
    }

    #[test]
    fn place_vm_respects_capacity() {
        let mut c = cluster(16, 1); // one slot per server, all 16 full
        assert!(matches!(
            c.place_vm(VmSpec::paper_default(), None),
            Err(ClusterError::NoCapacity)
        ));
        assert!(matches!(
            c.place_vm(VmSpec::paper_default(), Some(ServerId::new(3))),
            Err(ClusterError::PlacementRejected {
                server: _,
                source: AdmissionError::NoSlot
            })
        ));
        assert_eq!(c.num_vms(), 16, "cluster unchanged on error");
    }

    #[test]
    fn remove_vm_zeroes_pairs_and_tombstones() {
        let mut c = cluster(4, 16);
        // vm0 ↔ vm1 at 100.0; removing vm0 must zero the pair and free
        // its slot, and report the change for ledger repricing.
        let changes = c.remove_vm(VmId::new(0)).unwrap();
        assert_eq!(changes, vec![(VmId::new(0), VmId::new(1), 100.0, 0.0)]);
        assert!(!c.is_active(VmId::new(0)));
        assert_eq!(c.num_active(), 3);
        assert_eq!(c.usage(ServerId::new(0)).slots, 0);
        assert_eq!(c.usage(ServerId::new(0)).nic_bps, 0.0);
        assert_eq!(c.vm_nic_demand(VmId::new(1)), 0.0);
        assert_eq!(c.external_rate(VmId::new(1), ServerId::new(5)), 0.0);
        // Double removal and unknown ids are rejected.
        assert!(matches!(
            c.remove_vm(VmId::new(0)),
            Err(ClusterError::UnknownVm { .. })
        ));
        assert!(matches!(
            c.remove_vm(VmId::new(99)),
            Err(ClusterError::UnknownVm { .. })
        ));
        // The freed slot is reusable by a later arrival.
        let (vm, _) = c
            .place_vm(VmSpec::paper_default(), Some(ServerId::new(0)))
            .unwrap();
        assert_eq!(vm, VmId::new(4), "ids stay dense; tombstones are kept");
    }

    #[test]
    fn scale_traffic_matches_patched_rates() {
        let mut scaled = cluster(4, 16);
        scaled.scale_traffic(10.0);
        assert_eq!(scaled.vm_nic_demand(VmId::new(0)), 1000.0);
        assert_eq!(scaled.external_rate(VmId::new(0), ServerId::new(5)), 1000.0);
        assert!((scaled.usage(ServerId::new(0)).nic_bps - 1000.0).abs() < 1e-9);
        // Matches the sparse patch path applying the same rates.
        let mut patched = cluster(4, 16);
        patched.patch_traffic(&[(VmId::new(0), VmId::new(1), 100.0, 1000.0)]);
        for v in 0..4 {
            assert!(
                (scaled.vm_nic_demand(VmId::new(v)) - patched.vm_nic_demand(VmId::new(v))).abs()
                    < 1e-9
            );
        }
        // Slot/RAM state is untouched.
        assert_eq!(scaled.usage(ServerId::new(0)).slots, 1);
    }

    #[test]
    fn failed_host_rejects_admissions_and_is_skipped() {
        let mut c = cluster(4, 16);
        assert!(c.host_is_up(ServerId::new(0)));
        assert_eq!(c.num_hosts_down(), 0);
        let victims = c.fail_host(ServerId::new(0));
        assert_eq!(victims, vec![VmId::new(0)]);
        assert!(!c.host_is_up(ServerId::new(0)));
        assert_eq!(c.num_hosts_down(), 1);
        // Idempotent; out-of-range is an empty worklist, not a panic.
        assert!(c.fail_host(ServerId::new(0)).is_empty());
        assert!(c.fail_host(ServerId::new(999)).is_empty());
        assert_eq!(c.num_hosts_down(), 1);
        // No admission path reaches a down host …
        assert_eq!(
            c.migrate(VmId::new(1), ServerId::new(0), f64::INFINITY),
            Err(AdmissionError::HostDown)
        );
        assert!(matches!(
            c.place_vm(VmSpec::paper_default(), Some(ServerId::new(0))),
            Err(ClusterError::PlacementRejected {
                source: AdmissionError::HostDown,
                ..
            })
        ));
        assert_ne!(
            c.choose_server(&VmSpec::paper_default()).unwrap(),
            ServerId::new(0)
        );
        // … but evacuating the victim *off* it is legal, and its slot
        // accounting follows.
        c.migrate(VmId::new(0), ServerId::new(5), f64::INFINITY)
            .unwrap();
        assert_eq!(c.usage(ServerId::new(0)).slots, 0);
        assert_eq!(c.allocation().server_of(VmId::new(0)), ServerId::new(5));
    }

    #[test]
    fn nic_capacity_factor_scales_admission() {
        let topo: Arc<dyn Topology> = Arc::new(CanonicalTree::small());
        let mut b = PairTrafficBuilder::new(2);
        b.add(VmId::new(0), VmId::new(1), 0.6e9);
        let traffic = b.build();
        let alloc = Allocation::from_fn(2, 16, |vm| ServerId::new(vm.get()));
        let mut c = Cluster::new(
            topo,
            ServerSpec::paper_default(),
            VmSpec::paper_default(),
            &traffic,
            alloc,
        )
        .unwrap();
        // 0.6 Gb/s external demand fits a healthy 1 GbE NIC at threshold
        // 1.0 …
        assert!(c.can_host(ServerId::new(5), VmId::new(0), 1.0).is_ok());
        // … but not one degraded to half capacity.
        c.set_nic_capacity_factor(0.5);
        assert_eq!(
            c.can_host(ServerId::new(5), VmId::new(0), 1.0),
            Err(AdmissionError::Bandwidth)
        );
        // LinkRestore resets it.
        c.set_nic_capacity_factor(1.0);
        assert!(c.can_host(ServerId::new(5), VmId::new(0), 1.0).is_ok());
    }

    #[test]
    fn error_display() {
        let e = ClusterError::ServerCountMismatch {
            allocation: 4,
            topology: 16,
        };
        assert!(e.to_string().contains("4"));
        let e = ClusterError::InitialOverCommit {
            server: ServerId::new(2),
            source: AdmissionError::Ram,
        };
        assert!(e.to_string().contains("srv2"));
    }
}
