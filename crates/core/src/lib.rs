//! # S-CORE: Scalable Communication-Cost Reduction for cloud data centers
//!
//! A production-quality Rust implementation of **"Scalable Traffic-Aware
//! Virtual Machine Management for Cloud Data Centers"** (Tso, Oikonomou,
//! Kavvadia, Pezaros — IEEE ICDCS 2014).
//!
//! S-CORE dynamically re-allocates VMs through live migration to minimise
//! the network-wide, link-weighted communication cost of pairwise VM
//! traffic. Its defining property is being **fully distributed**: a token
//! circulates among the VMs, and the token holder unilaterally decides —
//! from locally available information only — whether moving to a peer's
//! server reduces the global cost by more than the migration cost
//! (Theorem 1).
//!
//! ## Crate layout
//!
//! * [`cost`] — Eq. (1)/(2) communication costs and the Lemma-3 migration
//!   delta;
//! * [`ledger`] — [`CostLedger`]: the incrementally maintained Eq.-(2)
//!   total (`O(1)` sampling, Lemma-3 delta application, `O(changed
//!   pairs)` traffic rebinds);
//! * [`allocation`] / [`resources`] / [`cluster`] — VM→server assignments
//!   with slot/RAM/CPU/bandwidth capacity enforcement;
//! * [`token`] — the 5-byte-per-entry migration token of §V-B2;
//! * [`policy`] — Round-Robin and Highest-Level-First (Algorithm 1) token
//!   policies;
//! * [`view`] — the holder's local knowledge ([`LocalView`]);
//! * [`outlook`] — [`TrafficOutlook`], the decision input proper: the
//!   local view plus an optional short-horizon per-peer rate forecast
//!   (reactive outlooks reproduce the paper pipeline bit for bit);
//! * [`engine`] — the §V-B5 decision procedure (rank peers, probe
//!   capacity, apply Theorem 1), including the single-pass
//!   level-bucketed kernel;
//! * [`scratch`] — [`DecisionScratch`]: reusable buffers so the
//!   steady-state decision path performs zero heap allocations;
//! * [`ring`] — iteration driver producing the paper's per-iteration
//!   migration statistics.
//!
//! ## Example
//!
//! This crate is the algorithm layer. Most users should declare a
//! `Scenario` in `score_sim` and run a `Session` instead; drop down to
//! this level to drive the ring by hand on custom cluster state.
//! [`TokenRing`] holds its policy as a `Box<dyn TokenPolicy>`, so
//! policies are runtime values (pass any policy to [`TokenRing::new`],
//! or an already-boxed one to [`TokenRing::with_boxed`]):
//!
//! ```
//! use score_core::{
//!     Allocation, Cluster, RoundRobin, ScoreEngine, ServerSpec, TokenRing, VmSpec,
//! };
//! use score_topology::{CanonicalTree, ServerId};
//! use score_traffic::WorkloadConfig;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let topo = Arc::new(CanonicalTree::small());
//! let traffic = WorkloadConfig::new(32, 42).generate();
//! // Traffic-agnostic initial placement: VM v on server v mod 16.
//! let alloc = Allocation::from_fn(32, 16, |vm| ServerId::new(vm.get() % 16));
//! let mut cluster = Cluster::new(
//!     topo,
//!     ServerSpec::paper_default(),
//!     VmSpec::paper_default(),
//!     &traffic,
//!     alloc,
//! )?;
//!
//! let mut ring = TokenRing::new(ScoreEngine::paper_default(), RoundRobin::new(), 32);
//! let stats = ring.run_iterations(3, &mut cluster, &traffic);
//! assert!(stats[0].migrations > 0); // the first sweep finds improvements
//! assert_eq!(ring.policy().name(), "rr"); // the policy is a runtime value
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod allocation;
pub mod cluster;
pub mod cost;
pub mod engine;
pub mod ledger;
pub mod netload;
pub mod outlook;
pub mod policy;
pub mod resources;
pub mod ring;
pub mod scratch;
pub mod slotindex;
pub mod token;
pub mod view;

pub use allocation::Allocation;
pub use cluster::{Cluster, ClusterError};
pub use cost::{level_breakdown, CostModel};
pub use engine::{MigrationDecision, ScoreConfig, ScoreEngine};
pub use ledger::CostLedger;
pub use netload::LinkLoadMap;
pub use outlook::{OutlookContext, TrafficOutlook};
pub use policy::{
    ForecastCostFirst, HighestCostFirst, HighestLevelFirst, RandomNext, RoundRobin, TokenPolicy,
};
pub use resources::{AdmissionError, CapacityReport, ServerSpec, ServerUsage, VmSpec};
pub use ring::{IterationStats, StepOutcome, TokenRing};
pub use scratch::{DecisionScratch, KernelScratch};
pub use slotindex::FreeSlotIndex;
pub use token::{Token, TokenCodecError, TokenEntry};
pub use view::{LocalView, PeerInfo};
