//! The token holder's local view (paper §IV).
//!
//! "The condition of Theorem 1 relies on information that is available
//! locally at a given VM u": the identity, rate and location of each peer,
//! plus the precomputed location-cost mapping. [`LocalView`] is that
//! information, deliberately *excluding* any global state — the engine only
//! ever reasons from a `LocalView`, which keeps the implementation honest
//! about S-CORE's distributed nature.

use std::cmp::Ordering;

use score_topology::{Level, LevelBuckets, LinkWeights, ServerId, Topology, VmId};
use score_traffic::PairTraffic;
use serde::{Deserialize, Serialize};

use crate::allocation::Allocation;

/// Combines the candidate-independent "cost-before" accumulator with the
/// level-bucketed "cost-after" rate sums into a Lemma-3 delta (×2).
///
/// `host`, `rack` and `zone` are *inclusive* peer-rate sums — peers hosted on
/// the target server, in the target's rack, and in the target's zone — and
/// `total` is the full peer-rate sum, so the per-bucket populations are the
/// pairwise differences. Peers landing on the target itself reach level 0
/// whose prefix weight is 0, so the host sum only appears subtractively.
///
/// A bucket term is skipped when its level exceeds the topology's
/// `max_level`: no peer pair can sit at that level, so the corresponding
/// difference is two bitwise-equal accumulators and the term is exactly
/// `+0.0`. The guard depends only on topology configuration — never on
/// traffic — which keeps the bucketed kernel and the per-peer sweep on
/// identical code paths.
#[inline]
#[allow(clippy::too_many_arguments)] // one scalar per bucket, by design
pub(crate) fn combine_bucketed(
    before: f64,
    host: f64,
    rack: f64,
    zone: f64,
    total: f64,
    weights: &LinkWeights,
    buckets: LevelBuckets,
    max_level: Level,
) -> f64 {
    let mut after = 0.0;
    if buckets.same_rack <= max_level {
        after += weights.prefix(buckets.same_rack) * (rack - host);
    }
    if buckets.same_zone <= max_level {
        after += weights.prefix(buckets.same_zone) * (zone - rack);
    }
    if buckets.remote <= max_level {
        after += weights.prefix(buckets.remote) * (total - zone);
    }
    2.0 * (before - after)
}

/// One ranked candidate: `(server, level, rate, peer index)`.
pub(crate) type RankEntry = (ServerId, Level, f64, u32);

/// Candidate ranking order: level desc, rate desc, peer index asc.
pub(crate) fn candidate_rank(a: &RankEntry, b: &RankEntry) -> Ordering {
    b.1.cmp(&a.1)
        .then(b.2.partial_cmp(&a.2).unwrap_or(Ordering::Equal))
        .then(a.3.cmp(&b.3))
}

/// What the holder knows about one peer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeerInfo {
    /// The peer VM.
    pub vm: VmId,
    /// Aggregate rate λ(z, u) in bits per second (both directions).
    pub rate: f64,
    /// The server hosting the peer (learned via the location probe,
    /// §V-B4).
    pub server: ServerId,
    /// Communication level ℓ_A(z, u) between holder and peer.
    pub level: Level,
}

/// Everything VM `u` knows locally when it holds the token.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalView {
    /// The observing VM.
    pub vm: VmId,
    /// Its current server.
    pub server: ServerId,
    /// Its peers `Vu` with rates, locations and levels.
    pub peers: Vec<PeerInfo>,
}

impl LocalView {
    /// Gathers the local view of `u` from simulation state.
    ///
    /// In a real deployment this data comes from the dom0 flow table
    /// (rates), location probes (peer servers) and the precomputed
    /// location-cost mapping (levels); in simulation we read the same
    /// quantities from the global structures, but only the `u`-local slice
    /// of them.
    pub fn observe<T: Topology + ?Sized>(
        u: VmId,
        alloc: &Allocation,
        traffic: &PairTraffic,
        topo: &T,
    ) -> Self {
        let mut view = LocalView::default();
        view.observe_into(u, alloc, traffic, topo);
        view
    }

    /// Re-gathers the view in place, reusing the peer buffer — the
    /// allocation-free form of [`LocalView::observe`] used by the
    /// steady-state decision path via [`crate::DecisionScratch`].
    pub fn observe_into<T: Topology + ?Sized>(
        &mut self,
        u: VmId,
        alloc: &Allocation,
        traffic: &PairTraffic,
        topo: &T,
    ) {
        let server = alloc.server_of(u);
        self.vm = u;
        self.server = server;
        self.peers.clear();
        // `PairTraffic::peers` yields the adjacency list sorted by peer id;
        // `peers` inherits that order (the `rate_to` lookup relies on it).
        self.peers
            .extend(traffic.peers(u).iter().map(|&(vm, rate)| {
                let peer_server = alloc.server_of(vm);
                PeerInfo {
                    vm,
                    rate,
                    server: peer_server,
                    level: topo.level(server, peer_server),
                }
            }));
    }

    /// The holder's highest communication level `ℓ_A(u)`; level 0 when the
    /// VM has no peers.
    pub fn own_level(&self) -> Level {
        self.peers
            .iter()
            .map(|p| p.level)
            .max()
            .unwrap_or(Level::ZERO)
    }

    /// Lemma-3 migration delta `ΔC_{u→x̂}` computed from the local view
    /// only: `2 Σ_z λ(z,u) (Σ_{i≤ℓ(z,u)} c_i − Σ_{i≤ℓ'(z,u)} c_i)`.
    ///
    /// On topologies exposing [`LevelBuckets`] the sum is evaluated in the
    /// decomposed form `2·(before − after)`: `before = Σ λ·prefix(ℓ)` is
    /// candidate-independent, and `after` depends only on how much peer
    /// rate lands on the target's host / rack / zone — the same
    /// `combine_bucketed` the single-pass kernel uses, so a per-candidate
    /// sweep of this method and the kernel produce bit-identical deltas.
    ///
    /// When the move is accepted, this same value is what a
    /// [`crate::CostLedger`] absorbs via `apply_gain` — the global cost
    /// stays tracked without ever recomputing Eq. (2).
    pub fn delta_for<T: Topology + ?Sized>(
        &self,
        target: ServerId,
        weights: &LinkWeights,
        topo: &T,
    ) -> f64 {
        if target == self.server {
            return 0.0;
        }
        match topo.level_buckets() {
            Some(buckets) => {
                let tc = topo.coords_of(target);
                let mut before = 0.0;
                let (mut host, mut rack, mut zone, mut total) = (0.0, 0.0, 0.0, 0.0);
                for p in &self.peers {
                    before += p.rate * weights.prefix(p.level);
                    let pc = topo.coords_of(p.server);
                    if p.server == target {
                        host += p.rate;
                    }
                    if pc.rack == tc.rack {
                        rack += p.rate;
                    }
                    if pc.zone == tc.zone {
                        zone += p.rate;
                    }
                    total += p.rate;
                }
                combine_bucketed(
                    before,
                    host,
                    rack,
                    zone,
                    total,
                    weights,
                    buckets,
                    topo.max_level(),
                )
            }
            None => {
                let mut delta = 0.0;
                for p in &self.peers {
                    let after = topo.level(p.server, target);
                    delta += p.rate * weights.level_change_saving(p.level, after);
                }
                2.0 * delta
            }
        }
    }

    /// Candidate target servers, "rank\[ed\] … from highest to lowest
    /// communication levels" (§V-B5), ties broken towards heavier peers.
    /// The holder's own server is excluded; duplicates are removed keeping
    /// the best rank.
    pub fn candidate_servers(&self) -> Vec<ServerId> {
        let mut buf = Vec::new();
        self.rank_candidates_into(&mut buf);
        buf.into_iter().map(|e| e.0).collect()
    }

    /// Fills `buf` with the ranked, deduplicated candidate entries —
    /// the buffer-reusing core of [`LocalView::candidate_servers`],
    /// shared with the single-pass kernel so both paths produce the
    /// candidate order by the same code.
    ///
    /// Rank key: level desc, rate desc, peer index asc. The explicit
    /// index tiebreak reproduces the former stable sort, so the output
    /// order is unchanged while dedup drops from O(n²) `contains`
    /// probes to two O(n log n) sorts: group by server keeping each
    /// server's best-ranked peer, then restore ranking order.
    pub(crate) fn rank_candidates_into(&self, buf: &mut Vec<RankEntry>) {
        buf.clear();
        buf.extend(
            self.peers
                .iter()
                .enumerate()
                .filter(|(_, p)| p.server != self.server)
                .map(|(i, p)| (p.server, p.level, p.rate, i as u32)),
        );
        buf.sort_unstable_by(|a, b| a.0.cmp(&b.0).then_with(|| candidate_rank(a, b)));
        buf.dedup_by_key(|e| e.0);
        buf.sort_unstable_by(candidate_rank);
    }

    /// Total traffic rate of this VM (its NIC demand estimate).
    pub fn total_rate(&self) -> f64 {
        self.peers.iter().map(|p| p.rate).sum()
    }

    /// The current rate towards one peer (0 for non-peers).
    ///
    /// `peers` is the holder's `PairTraffic` adjacency list and inherits
    /// its sorted-by-peer-id order (see [`LocalView::observe_into`]), so
    /// the lookup is a binary search rather than a linear scan — the
    /// outlook/forecast path calls this once per peer.
    pub fn rate_to(&self, vm: VmId) -> f64 {
        self.peers
            .binary_search_by_key(&vm, |p| p.vm)
            .map_or(0.0, |i| self.peers[i].rate)
    }

    /// A copy of the view with every peer's rate replaced
    /// (index-aligned) — how a `TrafficOutlook` materializes its
    /// *forecasted* decision view: same peers, same locations and
    /// levels, predicted rates.
    ///
    /// # Panics
    ///
    /// Panics if `rates` is not aligned with the peer list.
    pub fn with_rates(&self, rates: &[f64]) -> LocalView {
        assert_eq!(rates.len(), self.peers.len(), "rates must cover every peer");
        LocalView {
            vm: self.vm,
            server: self.server,
            peers: self
                .peers
                .iter()
                .zip(rates)
                .map(|(p, &rate)| PeerInfo { rate, ..*p })
                .collect(),
        }
    }

    /// Copies `src` into `self` with every peer's rate replaced
    /// (index-aligned), reusing the peer buffer — the allocation-free
    /// form of [`LocalView::with_rates`] used when a forecast re-rates
    /// the decision view.
    ///
    /// # Panics
    ///
    /// Panics if `rates` is not aligned with `src`'s peer list.
    pub fn assign_with_rates(&mut self, src: &LocalView, rates: &[f64]) {
        assert_eq!(rates.len(), src.peers.len(), "rates must cover every peer");
        self.vm = src.vm;
        self.server = src.server;
        self.peers.clear();
        self.peers.extend(
            src.peers
                .iter()
                .zip(rates)
                .map(|(p, &rate)| PeerInfo { rate, ..*p }),
        );
    }

    /// Peer levels as `(vm, level)` pairs — what the HLF token policy
    /// needs to refresh token entries.
    pub fn peer_levels(&self) -> Vec<(VmId, Level)> {
        self.peers.iter().map(|p| (p.vm, p.level)).collect()
    }
}

impl Default for LocalView {
    /// An empty placeholder (VM 0 on server 0, no peers) — scratch views
    /// start here and are always `observe_into`'d before use.
    fn default() -> Self {
        LocalView {
            vm: VmId::new(0),
            server: ServerId::new(0),
            peers: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use score_topology::CanonicalTree;
    use score_traffic::PairTrafficBuilder;

    fn fixture() -> (CanonicalTree, Allocation, PairTraffic) {
        let topo = CanonicalTree::small();
        // vm0@srv0, vm1@srv1 (same rack), vm2@srv4 (same agg), vm3@srv8 (core)
        let servers = [0u32, 1, 4, 8];
        let alloc = Allocation::from_fn(4, 16, |vm| ServerId::new(servers[vm.index()]));
        let mut b = PairTrafficBuilder::new(4);
        b.add(VmId::new(0), VmId::new(1), 10.0);
        b.add(VmId::new(0), VmId::new(2), 5.0);
        b.add(VmId::new(0), VmId::new(3), 1.0);
        (topo, alloc, b.build())
    }

    #[test]
    fn observation_contents() {
        let (topo, alloc, traffic) = fixture();
        let view = LocalView::observe(VmId::new(0), &alloc, &traffic, &topo);
        assert_eq!(view.server, ServerId::new(0));
        assert_eq!(view.peers.len(), 3);
        assert_eq!(view.peers[0].level, Level::RACK);
        assert_eq!(view.peers[1].level, Level::AGGREGATION);
        assert_eq!(view.peers[2].level, Level::CORE);
        assert_eq!(view.own_level(), Level::CORE);
        assert_eq!(view.total_rate(), 16.0);
        assert_eq!(view.rate_to(VmId::new(1)), 10.0);
        assert_eq!(view.rate_to(VmId::new(9)), 0.0);
    }

    #[test]
    fn own_level_without_peers() {
        let (topo, alloc, traffic) = fixture();
        let view = LocalView::observe(VmId::new(1), &alloc, &traffic, &topo);
        assert_eq!(view.own_level(), Level::RACK);
        let mut b = PairTrafficBuilder::new(4);
        b.add(VmId::new(2), VmId::new(3), 1.0);
        let t2 = b.build();
        let lonely = LocalView::observe(VmId::new(0), &alloc, &t2, &topo);
        assert_eq!(lonely.own_level(), Level::ZERO);
        assert!(lonely.candidate_servers().is_empty());
    }

    #[test]
    fn candidates_ranked_by_level_then_rate() {
        let (topo, alloc, traffic) = fixture();
        let view = LocalView::observe(VmId::new(0), &alloc, &traffic, &topo);
        // Highest level peer is vm3@srv8 (core), then vm2@srv4, then vm1@srv1.
        assert_eq!(
            view.candidate_servers(),
            vec![ServerId::new(8), ServerId::new(4), ServerId::new(1)]
        );
    }

    #[test]
    fn candidates_exclude_own_server_and_dups() {
        let (topo, _, _) = fixture();
        // Both peers on the same server as holder or duplicated.
        let alloc =
            Allocation::from_fn(3, 16, |vm| ServerId::new(if vm.get() == 0 { 0 } else { 4 }));
        let mut b = PairTrafficBuilder::new(3);
        b.add(VmId::new(0), VmId::new(1), 1.0);
        b.add(VmId::new(0), VmId::new(2), 2.0);
        let traffic = b.build();
        let view = LocalView::observe(VmId::new(0), &alloc, &traffic, &topo);
        assert_eq!(view.candidate_servers(), vec![ServerId::new(4)]);
    }

    #[test]
    fn delta_matches_cost_model() {
        use crate::cost::CostModel;
        let (topo, alloc, traffic) = fixture();
        let model = CostModel::paper_default();
        let view = LocalView::observe(VmId::new(0), &alloc, &traffic, &topo);
        for target in [1u32, 4, 8, 12, 0] {
            let t = ServerId::new(target);
            let local = view.delta_for(t, model.weights(), &topo);
            let global = model.migration_delta(VmId::new(0), t, &alloc, &traffic, &topo);
            assert!(
                (local - global).abs() < 1e-9,
                "target {target}: {local} vs {global}"
            );
        }
    }

    /// The pre-optimization reference: stable rank sort + linear-probe
    /// dedup. The two-sort implementation must reproduce it exactly.
    fn candidate_servers_reference(view: &LocalView) -> Vec<ServerId> {
        let mut ranked: Vec<&PeerInfo> = view.peers.iter().collect();
        ranked.sort_by(|a, b| {
            b.level.cmp(&a.level).then(
                b.rate
                    .partial_cmp(&a.rate)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        let mut out = Vec::new();
        for p in ranked {
            if p.server != view.server && !out.contains(&p.server) {
                out.push(p.server);
            }
        }
        out
    }

    #[test]
    fn high_degree_candidates_preserve_ranking() {
        use score_topology::FatTreeBuilder;
        // A holder with hundreds of peers spread over few servers — the
        // regime where the old O(n²) dedup hurt — including deliberate
        // exact rate ties so the index tiebreak is exercised.
        let topo = FatTreeBuilder::new().k(8).build().expect("valid arity");
        let n = 400u32;
        let num_servers = topo.num_servers() as u32;
        let alloc = Allocation::from_fn(n + 1, num_servers, |vm| {
            ServerId::new((vm.get() * 7) % num_servers)
        });
        let mut b = PairTrafficBuilder::new(n + 1);
        for z in 1..=n {
            let rate = f64::from(z % 13) + 1.0;
            b.add(VmId::new(0), VmId::new(z), rate);
        }
        let traffic = b.build();
        let view = LocalView::observe(VmId::new(0), &alloc, &traffic, &topo);
        assert!(view.peers.len() >= 400);
        let got = view.candidate_servers();
        assert_eq!(got, candidate_servers_reference(&view));
        assert!(!got.contains(&view.server));
    }

    #[test]
    fn bucketed_delta_matches_naive_level_sweep() {
        // The decomposed (bucketed) delta must agree with the per-peer
        // level sweep it replaced, on every server of a small tree.
        let (topo, alloc, traffic) = fixture();
        let model = crate::cost::CostModel::paper_default();
        let view = LocalView::observe(VmId::new(0), &alloc, &traffic, &topo);
        assert!(topo.level_buckets().is_some());
        for target in 0..topo.num_servers() as u32 {
            let t = ServerId::new(target);
            let got = view.delta_for(t, model.weights(), &topo);
            let mut naive = 0.0;
            if t != view.server {
                for p in &view.peers {
                    let after = topo.level(p.server, t);
                    naive += p.rate * model.weights().level_change_saving(p.level, after);
                }
                naive *= 2.0;
            }
            assert!(
                (got - naive).abs() < 1e-9,
                "target {target}: {got} vs {naive}"
            );
        }
    }

    #[test]
    fn peer_levels_for_token_updates() {
        let (topo, alloc, traffic) = fixture();
        let view = LocalView::observe(VmId::new(0), &alloc, &traffic, &topo);
        let levels = view.peer_levels();
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0], (VmId::new(1), Level::RACK));
        assert_eq!(levels[2], (VmId::new(3), Level::CORE));
    }
}
