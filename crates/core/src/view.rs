//! The token holder's local view (paper §IV).
//!
//! "The condition of Theorem 1 relies on information that is available
//! locally at a given VM u": the identity, rate and location of each peer,
//! plus the precomputed location-cost mapping. [`LocalView`] is that
//! information, deliberately *excluding* any global state — the engine only
//! ever reasons from a `LocalView`, which keeps the implementation honest
//! about S-CORE's distributed nature.

use score_topology::{Level, LinkWeights, ServerId, Topology, VmId};
use score_traffic::PairTraffic;
use serde::{Deserialize, Serialize};

use crate::allocation::Allocation;

/// What the holder knows about one peer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeerInfo {
    /// The peer VM.
    pub vm: VmId,
    /// Aggregate rate λ(z, u) in bits per second (both directions).
    pub rate: f64,
    /// The server hosting the peer (learned via the location probe,
    /// §V-B4).
    pub server: ServerId,
    /// Communication level ℓ_A(z, u) between holder and peer.
    pub level: Level,
}

/// Everything VM `u` knows locally when it holds the token.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalView {
    /// The observing VM.
    pub vm: VmId,
    /// Its current server.
    pub server: ServerId,
    /// Its peers `Vu` with rates, locations and levels.
    pub peers: Vec<PeerInfo>,
}

impl LocalView {
    /// Gathers the local view of `u` from simulation state.
    ///
    /// In a real deployment this data comes from the dom0 flow table
    /// (rates), location probes (peer servers) and the precomputed
    /// location-cost mapping (levels); in simulation we read the same
    /// quantities from the global structures, but only the `u`-local slice
    /// of them.
    pub fn observe<T: Topology + ?Sized>(
        u: VmId,
        alloc: &Allocation,
        traffic: &PairTraffic,
        topo: &T,
    ) -> Self {
        let server = alloc.server_of(u);
        let peers = traffic
            .peers(u)
            .iter()
            .map(|&(vm, rate)| {
                let peer_server = alloc.server_of(vm);
                PeerInfo {
                    vm,
                    rate,
                    server: peer_server,
                    level: topo.level(server, peer_server),
                }
            })
            .collect();
        LocalView {
            vm: u,
            server,
            peers,
        }
    }

    /// The holder's highest communication level `ℓ_A(u)`; level 0 when the
    /// VM has no peers.
    pub fn own_level(&self) -> Level {
        self.peers
            .iter()
            .map(|p| p.level)
            .max()
            .unwrap_or(Level::ZERO)
    }

    /// Lemma-3 migration delta `ΔC_{u→x̂}` computed from the local view
    /// only: `2 Σ_z λ(z,u) (Σ_{i≤ℓ(z,u)} c_i − Σ_{i≤ℓ'(z,u)} c_i)`.
    ///
    /// When the move is accepted, this same value is what a
    /// [`crate::CostLedger`] absorbs via `apply_gain` — the global cost
    /// stays tracked without ever recomputing Eq. (2).
    pub fn delta_for<T: Topology + ?Sized>(
        &self,
        target: ServerId,
        weights: &LinkWeights,
        topo: &T,
    ) -> f64 {
        if target == self.server {
            return 0.0;
        }
        let mut delta = 0.0;
        for p in &self.peers {
            let after = topo.level(p.server, target);
            delta += p.rate * weights.level_change_saving(p.level, after);
        }
        2.0 * delta
    }

    /// Candidate target servers, "rank\[ed\] … from highest to lowest
    /// communication levels" (§V-B5), ties broken towards heavier peers.
    /// The holder's own server is excluded; duplicates are removed keeping
    /// the best rank.
    pub fn candidate_servers(&self) -> Vec<ServerId> {
        let mut ranked: Vec<&PeerInfo> = self.peers.iter().collect();
        ranked.sort_by(|a, b| {
            b.level.cmp(&a.level).then(
                b.rate
                    .partial_cmp(&a.rate)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        let mut out = Vec::new();
        for p in ranked {
            if p.server != self.server && !out.contains(&p.server) {
                out.push(p.server);
            }
        }
        out
    }

    /// Total traffic rate of this VM (its NIC demand estimate).
    pub fn total_rate(&self) -> f64 {
        self.peers.iter().map(|p| p.rate).sum()
    }

    /// The current rate towards one peer (0 for non-peers).
    pub fn rate_to(&self, vm: VmId) -> f64 {
        self.peers
            .iter()
            .find(|p| p.vm == vm)
            .map_or(0.0, |p| p.rate)
    }

    /// A copy of the view with every peer's rate replaced
    /// (index-aligned) — how a `TrafficOutlook` materializes its
    /// *forecasted* decision view: same peers, same locations and
    /// levels, predicted rates.
    ///
    /// # Panics
    ///
    /// Panics if `rates` is not aligned with the peer list.
    pub fn with_rates(&self, rates: &[f64]) -> LocalView {
        assert_eq!(rates.len(), self.peers.len(), "rates must cover every peer");
        LocalView {
            vm: self.vm,
            server: self.server,
            peers: self
                .peers
                .iter()
                .zip(rates)
                .map(|(p, &rate)| PeerInfo { rate, ..*p })
                .collect(),
        }
    }

    /// Peer levels as `(vm, level)` pairs — what the HLF token policy
    /// needs to refresh token entries.
    pub fn peer_levels(&self) -> Vec<(VmId, Level)> {
        self.peers.iter().map(|p| (p.vm, p.level)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use score_topology::CanonicalTree;
    use score_traffic::PairTrafficBuilder;

    fn fixture() -> (CanonicalTree, Allocation, PairTraffic) {
        let topo = CanonicalTree::small();
        // vm0@srv0, vm1@srv1 (same rack), vm2@srv4 (same agg), vm3@srv8 (core)
        let servers = [0u32, 1, 4, 8];
        let alloc = Allocation::from_fn(4, 16, |vm| ServerId::new(servers[vm.index()]));
        let mut b = PairTrafficBuilder::new(4);
        b.add(VmId::new(0), VmId::new(1), 10.0);
        b.add(VmId::new(0), VmId::new(2), 5.0);
        b.add(VmId::new(0), VmId::new(3), 1.0);
        (topo, alloc, b.build())
    }

    #[test]
    fn observation_contents() {
        let (topo, alloc, traffic) = fixture();
        let view = LocalView::observe(VmId::new(0), &alloc, &traffic, &topo);
        assert_eq!(view.server, ServerId::new(0));
        assert_eq!(view.peers.len(), 3);
        assert_eq!(view.peers[0].level, Level::RACK);
        assert_eq!(view.peers[1].level, Level::AGGREGATION);
        assert_eq!(view.peers[2].level, Level::CORE);
        assert_eq!(view.own_level(), Level::CORE);
        assert_eq!(view.total_rate(), 16.0);
        assert_eq!(view.rate_to(VmId::new(1)), 10.0);
        assert_eq!(view.rate_to(VmId::new(9)), 0.0);
    }

    #[test]
    fn own_level_without_peers() {
        let (topo, alloc, traffic) = fixture();
        let view = LocalView::observe(VmId::new(1), &alloc, &traffic, &topo);
        assert_eq!(view.own_level(), Level::RACK);
        let mut b = PairTrafficBuilder::new(4);
        b.add(VmId::new(2), VmId::new(3), 1.0);
        let t2 = b.build();
        let lonely = LocalView::observe(VmId::new(0), &alloc, &t2, &topo);
        assert_eq!(lonely.own_level(), Level::ZERO);
        assert!(lonely.candidate_servers().is_empty());
    }

    #[test]
    fn candidates_ranked_by_level_then_rate() {
        let (topo, alloc, traffic) = fixture();
        let view = LocalView::observe(VmId::new(0), &alloc, &traffic, &topo);
        // Highest level peer is vm3@srv8 (core), then vm2@srv4, then vm1@srv1.
        assert_eq!(
            view.candidate_servers(),
            vec![ServerId::new(8), ServerId::new(4), ServerId::new(1)]
        );
    }

    #[test]
    fn candidates_exclude_own_server_and_dups() {
        let (topo, _, _) = fixture();
        // Both peers on the same server as holder or duplicated.
        let alloc =
            Allocation::from_fn(3, 16, |vm| ServerId::new(if vm.get() == 0 { 0 } else { 4 }));
        let mut b = PairTrafficBuilder::new(3);
        b.add(VmId::new(0), VmId::new(1), 1.0);
        b.add(VmId::new(0), VmId::new(2), 2.0);
        let traffic = b.build();
        let view = LocalView::observe(VmId::new(0), &alloc, &traffic, &topo);
        assert_eq!(view.candidate_servers(), vec![ServerId::new(4)]);
    }

    #[test]
    fn delta_matches_cost_model() {
        use crate::cost::CostModel;
        let (topo, alloc, traffic) = fixture();
        let model = CostModel::paper_default();
        let view = LocalView::observe(VmId::new(0), &alloc, &traffic, &topo);
        for target in [1u32, 4, 8, 12, 0] {
            let t = ServerId::new(target);
            let local = view.delta_for(t, model.weights(), &topo);
            let global = model.migration_delta(VmId::new(0), t, &alloc, &traffic, &topo);
            assert!(
                (local - global).abs() < 1e-9,
                "target {target}: {local} vs {global}"
            );
        }
    }

    #[test]
    fn peer_levels_for_token_updates() {
        let (topo, alloc, traffic) = fixture();
        let view = LocalView::observe(VmId::new(0), &alloc, &traffic, &topo);
        let levels = view.peer_levels();
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0], (VmId::new(1), Level::RACK));
        assert_eq!(levels[2], (VmId::new(3), Level::CORE));
    }
}
