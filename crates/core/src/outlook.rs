//! The forecast-aware decision input: a [`TrafficOutlook`] is what every
//! policy and engine decision consumes — the holder's current
//! [`LocalView`] plus an optional short-horizon forecast of its per-peer
//! rates.
//!
//! The outlook generalizes the paper's pipeline without changing it: a
//! *reactive* outlook (no forecast — [`TrafficOutlook::reactive`]) makes
//! every decision from current rates exactly as before, bit for bit. A
//! *forecasted* outlook additionally carries, for each peer, the
//! predicted rate `horizon_s` seconds ahead (produced by a
//! `score_traffic::RateForecaster`), letting the engine rank candidate
//! hosts by where traffic is *going* rather than where it has been —
//! pre-empting migrations before a spike lands instead of chasing it
//! afterwards.
//!
//! [`OutlookContext`] is the per-step glue: it captures the forecaster,
//! the current clock and the horizon, and turns each observed
//! [`LocalView`] into the outlook the ring threads through the engine
//! and the token policy. Building an outlook only *reads* the
//! forecaster — the cost ledger and the cluster are never touched, so
//! reading ahead can never dirty them.

use score_topology::VmId;
use score_traffic::RateForecaster;

use crate::view::LocalView;

/// The decision input of one token hold: current local state plus an
/// optional per-peer rate forecast (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficOutlook {
    view: LocalView,
    /// Predicted per-peer rates at `horizon_s` ahead, aligned index-for-
    /// index with `view.peers`; `None` = reactive (no forecast).
    predicted: Option<Vec<f64>>,
    horizon_s: f64,
}

impl TrafficOutlook {
    /// A reactive outlook: decisions read current rates only — the
    /// compatibility mode that reproduces the paper pipeline exactly.
    pub fn reactive(view: LocalView) -> Self {
        TrafficOutlook {
            view,
            predicted: None,
            horizon_s: 0.0,
        }
    }

    /// An outlook carrying predicted per-peer rates (`predicted[i]` is
    /// the forecast for `view.peers[i]` at `horizon_s` ahead).
    ///
    /// # Panics
    ///
    /// Panics if `predicted` is not aligned with the view's peer list
    /// or the horizon is not positive and finite.
    pub fn with_forecast(view: LocalView, predicted: Vec<f64>, horizon_s: f64) -> Self {
        assert_eq!(
            predicted.len(),
            view.peers.len(),
            "forecast must cover every peer"
        );
        assert!(
            horizon_s.is_finite() && horizon_s > 0.0,
            "forecast horizon must be positive and finite, got {horizon_s}"
        );
        TrafficOutlook {
            view,
            predicted: Some(predicted),
            horizon_s,
        }
    }

    /// The holder's current local view.
    pub fn view(&self) -> &LocalView {
        &self.view
    }

    /// Consumes the outlook, returning the current view by move (the
    /// compat `ScoreEngine::step` path — no peer-list copy).
    pub fn into_view(self) -> LocalView {
        self.view
    }

    /// Consumes the outlook, returning its buffers — how the ring's
    /// scratch reclaims the view (and predicted-rate slab) it lent to a
    /// policy via an owned outlook.
    pub fn into_parts(self) -> (LocalView, Option<Vec<f64>>) {
        (self.view, self.predicted)
    }

    /// The observing VM.
    pub fn vm(&self) -> VmId {
        self.view.vm
    }

    /// True when a forecast is attached.
    pub fn has_forecast(&self) -> bool {
        self.predicted.is_some()
    }

    /// The lookahead horizon in seconds (0 for reactive outlooks).
    pub fn horizon_s(&self) -> f64 {
        self.horizon_s
    }

    /// The raw forecasted rate of peer `i` at the horizon (the current
    /// rate when no forecast is attached).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn forecast_rate(&self, i: usize) -> f64 {
        match &self.predicted {
            Some(p) => p[i],
            None => self.view.peers[i].rate,
        }
    }

    /// The rate decisions *score* peer `i` at: the peak-demand envelope
    /// `max(current, forecast)` over the lookahead window.
    ///
    /// The max matters: scoring on the raw forecast alone would let the
    /// pipeline "see through" load that is on the wire right now but
    /// predicted to subside within the horizon (a flash crowd ending in
    /// 20 s still hammers the fabric *today*). The envelope adds
    /// pre-emption for predicted load without ever subtracting
    /// reactivity to current load — and degenerates to the current rate
    /// exactly when no forecast is attached.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn expected_rate(&self, i: usize) -> f64 {
        match &self.predicted {
            Some(p) => p[i].max(self.view.peers[i].rate),
            None => self.view.peers[i].rate,
        }
    }

    /// The expected (peak-envelope) rate towards a peer VM (0 for
    /// non-peers).
    pub fn expected_rate_to(&self, vm: VmId) -> f64 {
        self.view
            .peers
            .iter()
            .position(|p| p.vm == vm)
            .map_or(0.0, |i| self.expected_rate(i))
    }

    /// The view the engine should *score* against: the current view
    /// (borrowed — the reactive hot path never copies) or, with a
    /// forecast attached, an owned copy re-rated to the peak-demand
    /// envelope ([`TrafficOutlook::expected_rate`]) — same peers, same
    /// locations, expected rates.
    pub fn decision_view(&self) -> std::borrow::Cow<'_, LocalView> {
        match &self.predicted {
            Some(_) => {
                let rates: Vec<f64> = (0..self.view.peers.len())
                    .map(|i| self.expected_rate(i))
                    .collect();
                std::borrow::Cow::Owned(self.view.with_rates(&rates))
            }
            None => std::borrow::Cow::Borrowed(&self.view),
        }
    }

    /// Sum of expected (peak-envelope) per-peer rates — the NIC demand
    /// the decision pipeline provisions for.
    pub fn expected_total_rate(&self) -> f64 {
        (0..self.view.peers.len())
            .map(|i| self.expected_rate(i))
            .sum()
    }
}

/// Per-step outlook factory: forecaster + clock + horizon, borrowed for
/// the duration of one ring step.
///
/// [`OutlookContext::reactive`] is the no-forecast context; every
/// outlook it builds is [`TrafficOutlook::reactive`] and the pipeline
/// behaves exactly as the paper's. A zero or negative horizon also
/// degrades to reactive — "zero-horizon lookahead" and "no lookahead"
/// are the same thing, by construction.
#[derive(Debug, Clone, Copy)]
pub struct OutlookContext<'a> {
    forecaster: Option<&'a dyn RateForecaster>,
    now_s: f64,
    horizon_s: f64,
}

impl<'a> OutlookContext<'a> {
    /// The reactive (no-forecast) context.
    pub fn reactive() -> OutlookContext<'static> {
        OutlookContext {
            forecaster: None,
            now_s: 0.0,
            horizon_s: 0.0,
        }
    }

    /// A forecasting context reading `forecaster` at simulated time
    /// `now_s` with lookahead `horizon_s`. A non-positive horizon
    /// yields the reactive context.
    pub fn forecast(
        forecaster: &'a dyn RateForecaster,
        now_s: f64,
        horizon_s: f64,
    ) -> OutlookContext<'a> {
        if horizon_s > 0.0 {
            OutlookContext {
                forecaster: Some(forecaster),
                now_s,
                horizon_s,
            }
        } else {
            OutlookContext::reactive()
        }
    }

    /// True when outlooks built by this context carry forecasts.
    pub fn is_forecasting(&self) -> bool {
        self.forecaster.is_some()
    }

    /// The lookahead horizon (0 when reactive).
    pub fn horizon_s(&self) -> f64 {
        self.horizon_s
    }

    /// Fills `out` with the forecasted per-peer rates for `view`
    /// (index-aligned), reusing the buffer. Returns `false` without
    /// touching `out` when the context is reactive — the zero-alloc
    /// form of [`OutlookContext::outlook_for`]'s prediction step.
    pub fn predict_into(&self, view: &LocalView, out: &mut Vec<f64>) -> bool {
        match self.forecaster {
            Some(f) => {
                out.clear();
                out.extend(
                    view.peers
                        .iter()
                        .map(|p| f.predict(view.vm, p.vm, self.now_s, self.horizon_s)),
                );
                true
            }
            None => false,
        }
    }

    /// Wraps an observed view into the outlook the decision pipeline
    /// consumes.
    pub fn outlook_for(&self, view: LocalView) -> TrafficOutlook {
        match self.forecaster {
            Some(f) => {
                let predicted = view
                    .peers
                    .iter()
                    .map(|p| f.predict(view.vm, p.vm, self.now_s, self.horizon_s))
                    .collect();
                TrafficOutlook::with_forecast(view, predicted, self.horizon_s)
            }
            None => TrafficOutlook::reactive(view),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::PeerInfo;
    use score_topology::{Level, ServerId};
    use score_traffic::{EwmaForecaster, PairTrafficBuilder};

    fn view() -> LocalView {
        LocalView {
            vm: VmId::new(0),
            server: ServerId::new(0),
            peers: vec![
                PeerInfo {
                    vm: VmId::new(1),
                    rate: 10.0,
                    server: ServerId::new(1),
                    level: Level::RACK,
                },
                PeerInfo {
                    vm: VmId::new(2),
                    rate: 5.0,
                    server: ServerId::new(8),
                    level: Level::CORE,
                },
            ],
        }
    }

    #[test]
    fn reactive_outlook_passes_current_rates_through() {
        let o = TrafficOutlook::reactive(view());
        assert!(!o.has_forecast());
        assert_eq!(o.horizon_s(), 0.0);
        assert_eq!(o.expected_rate(0), 10.0);
        assert_eq!(o.expected_rate_to(VmId::new(2)), 5.0);
        assert_eq!(o.expected_rate_to(VmId::new(9)), 0.0);
        assert_eq!(o.expected_total_rate(), 15.0);
        assert_eq!(&*o.decision_view(), o.view());
    }

    #[test]
    fn forecasted_outlook_rerates_the_decision_view() {
        let o = TrafficOutlook::with_forecast(view(), vec![1.0, 50.0], 30.0);
        assert!(o.has_forecast());
        assert_eq!(o.horizon_s(), 30.0);
        // Raw forecasts pass through …
        assert_eq!(o.forecast_rate(0), 1.0);
        assert_eq!(o.forecast_rate(1), 50.0);
        // … but scoring uses the peak envelope: the pipeline must not
        // "see through" currently heavy pairs predicted to subside.
        assert_eq!(o.expected_rate(0), 10.0);
        assert_eq!(o.expected_rate(1), 50.0);
        assert_eq!(o.expected_total_rate(), 60.0);
        let dv = o.decision_view();
        assert_eq!(dv.peers[0].rate, 10.0);
        assert_eq!(dv.peers[1].rate, 50.0);
        // Everything but the rates is preserved.
        assert_eq!(dv.peers[1].server, ServerId::new(8));
        assert_eq!(dv.peers[1].level, Level::CORE);
        // The *current* view is untouched.
        assert_eq!(o.view().peers[0].rate, 10.0);
    }

    #[test]
    #[should_panic(expected = "forecast must cover every peer")]
    fn misaligned_forecast_rejected() {
        let _ = TrafficOutlook::with_forecast(view(), vec![1.0], 30.0);
    }

    #[test]
    fn context_builds_outlooks_from_the_forecaster() {
        let mut b = PairTrafficBuilder::new(3);
        b.add(VmId::new(0), VmId::new(1), 10.0);
        b.add(VmId::new(0), VmId::new(2), 5.0);
        let tm = b.build();
        let mut f = EwmaForecaster::new(1.0);
        f.prime(&tm, 0.0);
        f.observe_updates(&[(VmId::new(0), VmId::new(2), 10.0)], 10.0);

        let ctx = OutlookContext::forecast(&f, 10.0, 10.0);
        assert!(ctx.is_forecasting());
        let o = ctx.outlook_for(view());
        assert!(o.has_forecast());
        // (0,1) flat at 10; (0,2) ramping 0.5/s → 15 at the horizon.
        assert_eq!(o.expected_rate(0), 10.0);
        assert!((o.expected_rate(1) - 15.0).abs() < 1e-9);

        // Zero horizon degrades to reactive.
        let ctx0 = OutlookContext::forecast(&f, 10.0, 0.0);
        assert!(!ctx0.is_forecasting());
        assert!(!ctx0.outlook_for(view()).has_forecast());
        assert!(!OutlookContext::reactive().is_forecasting());
    }
}
