//! A max-free-slots segment tree over the server fleet.
//!
//! The §V-A placement manager picks "the admissible server with the most
//! free slots, lowest id winning ties". A linear scan reproduces that in
//! O(servers) — fine at 2,560 hosts, a per-placement millisecond burner
//! at 100k. [`FreeSlotIndex`] keeps per-server free-slot counts in a
//! flat segment tree so the same deterministic choice resolves in
//! O(log servers) descents: walk left-first towards the subtree with the
//! strictly largest free-slot maximum, pruning subtrees that cannot beat
//! the best admissible leaf found so far (and full subtrees outright).
//! Leaves still run the *real* admission check — RAM and CPU constraints
//! prune nothing here, so a heterogeneous fleet degrades gracefully to
//! the scan it replaces rather than ever choosing differently.

/// Max-free-slots segment tree; leaves are servers in id order.
#[derive(Debug, Clone)]
pub struct FreeSlotIndex {
    /// Number of servers (leaves in use).
    n: usize,
    /// Power-of-two leaf span.
    size: usize,
    /// `tree[1]` is the root; leaf `i` lives at `size + i`. Values are
    /// free VM slots; unused padding leaves hold 0.
    tree: Vec<u32>,
}

impl FreeSlotIndex {
    /// Builds the index from per-server free-slot counts.
    pub fn new(free: impl ExactSizeIterator<Item = u32>) -> Self {
        let n = free.len();
        let size = n.next_power_of_two().max(1);
        let mut tree = vec![0u32; 2 * size];
        for (i, f) in free.enumerate() {
            tree[size + i] = f;
        }
        for i in (1..size).rev() {
            tree[i] = tree[2 * i].max(tree[2 * i + 1]);
        }
        FreeSlotIndex { n, size, tree }
    }

    /// Number of indexed servers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when no servers are indexed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Current free-slot count of server `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn free(&self, i: usize) -> u32 {
        assert!(i < self.n, "server index {i} out of range");
        self.tree[self.size + i]
    }

    /// Updates server `i`'s free-slot count, repairing the O(log n) path
    /// to the root.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: usize, free: u32) {
        assert!(i < self.n, "server index {i} out of range");
        let mut node = self.size + i;
        self.tree[node] = free;
        node /= 2;
        while node >= 1 {
            let next = self.tree[2 * node].max(self.tree[2 * node + 1]);
            if self.tree[node] == next {
                break; // ancestors unchanged
            }
            self.tree[node] = next;
            node /= 2;
        }
    }

    /// The admissible server with the most free slots, lowest id winning
    /// ties — exactly the linear scan's pick, found by best-first
    /// descent. `admissible(i)` runs the caller's full admission check
    /// on leaf `i`; subtrees whose free-slot maximum cannot strictly
    /// beat the best admissible leaf so far are pruned, as are subtrees
    /// with no free slot at all (a full server can never admit).
    pub fn best(&self, admissible: impl Fn(usize) -> bool) -> Option<(u32, usize)> {
        let mut best: Option<(u32, usize)> = None;
        self.descend(1, &admissible, &mut best);
        best
    }

    fn descend(
        &self,
        node: usize,
        admissible: &impl Fn(usize) -> bool,
        best: &mut Option<(u32, usize)>,
    ) {
        let max = self.tree[node];
        if max == 0 {
            return; // no slot anywhere below: NoSlot for every leaf
        }
        if let Some((best_free, _)) = *best {
            if max <= best_free {
                return; // cannot strictly improve; earlier id keeps ties
            }
        }
        if node >= self.size {
            let i = node - self.size;
            if i < self.n && admissible(i) {
                *best = Some((self.tree[node], i));
            }
            return;
        }
        // Left first: among equal free counts the lowest id must win.
        self.descend(2 * node, admissible, best);
        self.descend(2 * node + 1, admissible, best);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_linear_scan_choice() {
        let frees = [3u32, 7, 7, 0, 5, 7, 1, 2];
        let idx = FreeSlotIndex::new(frees.iter().copied());
        // Most free slots, lowest id on ties, everything admissible.
        assert_eq!(idx.best(|_| true), Some((7, 1)));
        // Admission filtering: skip server 1 → next-equal id 2 wins.
        assert_eq!(idx.best(|i| i != 1), Some((7, 2)));
        // Only low-free servers admissible.
        assert_eq!(idx.best(|i| i >= 6), Some((2, 7)));
        // Nothing admissible.
        assert_eq!(idx.best(|_| false), None);
    }

    #[test]
    fn set_updates_choices() {
        let mut idx = FreeSlotIndex::new([1u32, 1, 1].into_iter());
        assert_eq!(idx.best(|_| true), Some((1, 0)));
        idx.set(2, 9);
        assert_eq!(idx.free(2), 9);
        assert_eq!(idx.best(|_| true), Some((9, 2)));
        idx.set(2, 0);
        idx.set(0, 0);
        idx.set(1, 0);
        assert_eq!(idx.best(|_| true), None, "full fleet prunes to nothing");
    }

    #[test]
    fn exhaustive_vs_scan_on_random_fleets() {
        // Deterministic pseudo-random fleet shapes; compare against the
        // reference linear scan with an arbitrary admissibility pattern.
        let mut state = 0x243F_6A88u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u32
        };
        for n in [1usize, 2, 3, 5, 16, 17, 64, 100] {
            let frees: Vec<u32> = (0..n).map(|_| next() % 17).collect();
            let admissible = |i: usize| !frees[i].is_multiple_of(3) || frees[i] > 10;
            let idx = FreeSlotIndex::new(frees.iter().copied());
            let mut expect: Option<(u32, usize)> = None;
            for (i, &f) in frees.iter().enumerate() {
                // The scan also never admits a full server.
                if f > 0 && admissible(i) && expect.is_none_or(|(bf, _)| f > bf) {
                    expect = Some((f, i));
                }
            }
            assert_eq!(idx.best(admissible), expect, "fleet {frees:?}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        FreeSlotIndex::new([1u32].into_iter()).free(1);
    }
}
