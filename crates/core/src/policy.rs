//! Token-passing policies (paper §V-A).
//!
//! The token holder decides whether to migrate, then picks the next holder
//! according to the policy. The paper evaluates two: Round-Robin
//! ([`RoundRobin`]) and Highest-Level-First ([`HighestLevelFirst`],
//! Algorithm 1). [`RandomNext`] is included as an ablation baseline.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use score_topology::{Level, VmId};
use std::fmt;

use crate::outlook::TrafficOutlook;
use crate::token::Token;

/// A token-passing policy.
///
/// `next_holder` is invoked while `holder` still owns the token, *after*
/// its migration decision; `outlook` carries the holder's post-decision
/// [`crate::LocalView`] plus, when the pipeline forecasts, the predicted
/// per-peer rates at the lookahead horizon. Implementations may update
/// the token's level entries (HLF does, RR does not need to). Returning
/// `None` means no next holder exists (empty or singleton token).
///
/// Reactive outlooks ([`TrafficOutlook::reactive`]) carry no forecast;
/// policies that only read `outlook.view()` behave exactly as they did
/// before the outlook existed — the compatibility invariant the
/// forecast refactor preserves bit for bit.
pub trait TokenPolicy: fmt::Debug + Send {
    /// Short policy name for logs and CSV columns (e.g. `"rr"`, `"hlf"`).
    fn name(&self) -> &'static str;

    /// Picks the next token holder and updates token state.
    fn next_holder(
        &mut self,
        token: &mut Token,
        holder: VmId,
        outlook: &TrafficOutlook,
    ) -> Option<VmId>;

    /// Discards any policy-internal state (visit sets, estimates) — called
    /// when a lost token is regenerated and the distributed state restarts
    /// from scratch. Stateless policies need not override this.
    fn reset(&mut self) {}

    /// Builds any derived acceleration state for `token` ahead of the first
    /// hold, so construction (not the steady-state decision path) pays the
    /// one-time O(n) cost. Purely an optimisation hook: `next_holder` must
    /// behave identically whether or not this was called. Stateless
    /// policies need not override it.
    fn prepare(&mut self, token: &Token) {
        let _ = token;
    }
}

impl<P: TokenPolicy + ?Sized> TokenPolicy for Box<P> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn next_holder(
        &mut self,
        token: &mut Token,
        holder: VmId,
        outlook: &TrafficOutlook,
    ) -> Option<VmId> {
        (**self).next_holder(token, holder, outlook)
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn prepare(&mut self, token: &Token) {
        (**self).prepare(token)
    }
}

/// A per-round "already checked" membership set, epoch-stamped so that
/// clearing a round is O(1) (bump the epoch) and queries are a single
/// indexed load — the policies sit on the steady-state decision path and
/// must not hash or allocate per step (the backing vector only grows
/// when the VM population does).
#[derive(Debug, Clone)]
struct CheckedSet {
    /// Stamp meaning "checked this round". Entries with any other value
    /// are unchecked.
    epoch: u32,
    /// vm id → epoch stamp of its last check.
    mark: Vec<u32>,
}

impl Default for CheckedSet {
    fn default() -> Self {
        // Epoch 0 would make the zero-initialised marks read as checked.
        CheckedSet {
            epoch: 1,
            mark: Vec::new(),
        }
    }
}

impl CheckedSet {
    fn insert(&mut self, vm: VmId) {
        let i = vm.index();
        if self.mark.len() <= i {
            self.mark.resize(i + 1, 0);
        }
        self.mark[i] = self.epoch;
    }

    fn contains(&self, vm: VmId) -> bool {
        self.mark.get(vm.index()) == Some(&self.epoch)
    }

    fn clear(&mut self) {
        if self.epoch == u32::MAX {
            self.mark.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }
}

/// A two-level bitset over VM ids: one bit per id plus a summary bit per
/// 64-bit word, giving O(1)-ish `min`/successor queries (at most a
/// couple of word scans through the summary) over populations of
/// hundreds of thousands of VMs. Backing storage grows only when the id
/// space does — steady-state operations never allocate.
#[derive(Debug, Clone, Default)]
struct IdBitSet {
    words: Vec<u64>,
    /// Bit `w` set iff `words[g*64 + w]` of group `g` is non-zero.
    summary: Vec<u64>,
}

impl IdBitSet {
    fn insert(&mut self, i: usize) {
        let w = i / 64;
        if self.words.len() <= w {
            self.words.resize(w + 1, 0);
            self.summary.resize((w + 1).div_ceil(64), 0);
        }
        self.words[w] |= 1 << (i % 64);
        self.summary[w / 64] |= 1 << (w % 64);
    }

    /// Clears bit `i`; returns whether it was set.
    fn remove(&mut self, i: usize) -> bool {
        let w = i / 64;
        let Some(word) = self.words.get_mut(w) else {
            return false;
        };
        let bit = 1u64 << (i % 64);
        if *word & bit == 0 {
            return false;
        }
        *word &= !bit;
        if *word == 0 {
            self.summary[w / 64] &= !(1 << (w % 64));
        }
        true
    }

    /// Recomputes the summary from scratch after a bulk word rewrite.
    fn rebuild_summary(&mut self) {
        self.summary.clear();
        self.summary.resize(self.words.len().div_ceil(64), 0);
        for (w, &word) in self.words.iter().enumerate() {
            if word != 0 {
                self.summary[w / 64] |= 1 << (w % 64);
            }
        }
    }

    /// Lowest set id ≥ `from`, if any.
    fn succ_from(&self, from: usize) -> Option<usize> {
        let mut w = from / 64;
        if w >= self.words.len() {
            return None;
        }
        let masked = self.words[w] & (!0u64 << (from % 64));
        if masked != 0 {
            return Some(w * 64 + masked.trailing_zeros() as usize);
        }
        // Next non-empty word via the summary.
        let mut g = w / 64;
        let gmask = if w % 64 == 63 {
            0
        } else {
            !0u64 << (w % 64 + 1)
        };
        let mut bits = self.summary[g] & gmask;
        loop {
            if bits != 0 {
                w = g * 64 + bits.trailing_zeros() as usize;
                return Some(w * 64 + self.words[w].trailing_zeros() as usize);
            }
            g += 1;
            if g >= self.summary.len() {
                return None;
            }
            bits = self.summary[g];
        }
    }

    fn min(&self) -> Option<usize> {
        self.succ_from(0)
    }
}

/// Per-level index of the *unchecked* token entries, mirroring
/// `{(e.id, e.level) : e ∈ token, !checked(e.id)}` so the Algorithm-1
/// scans ("first unchecked VM at level L after the holder", "lowest-id
/// unchecked VM at level L", "best unchecked by level desc, id asc")
/// answer in O(1)-ish instead of walking every token entry — at 200k
/// VMs those walks were the single most expensive part of an HLF step.
///
/// The index is purely derived state: it is rebuilt from the token and
/// the checked set whenever the token's membership [`Token::version`]
/// (or length) changes under the policy's feet, and the policy keeps it
/// in sync through every level update and check it performs itself.
#[derive(Debug, Clone, Default)]
struct UncheckedIndex {
    built: bool,
    token_version: u64,
    token_len: usize,
    /// One bitset per level value (index = `Level::get()`).
    levels: Vec<IdBitSet>,
}

impl UncheckedIndex {
    /// Rebuilds from scratch if the token changed membership since the
    /// last sync (or the index was never built / invalidated).
    fn sync(&mut self, token: &Token, checked: &CheckedSet) {
        if self.built && self.token_version == token.version() && self.token_len == token.len() {
            return;
        }
        // Bulk rebuild: size every level to the full id range up front, set
        // raw word bits in one pass over the entries, then derive the
        // summaries. Avoids per-insert growth and summary maintenance,
        // which dominate when the token holds hundreds of thousands of VMs.
        let max_level = token
            .entries()
            .iter()
            .map(|e| e.level.get() as usize)
            .max()
            .unwrap_or(0);
        let words = token.entries().last().map_or(0, |e| e.id.index() / 64 + 1);
        if self.levels.len() <= max_level {
            self.levels.resize_with(max_level + 1, IdBitSet::default);
        }
        for set in &mut self.levels {
            set.words.clear();
            set.words.resize(words, 0);
        }
        for e in token.entries() {
            if !checked.contains(e.id) {
                let i = e.id.index();
                self.levels[e.level.get() as usize].words[i / 64] |= 1 << (i % 64);
            }
        }
        for set in &mut self.levels {
            set.rebuild_summary();
        }
        self.built = true;
        self.token_version = token.version();
        self.token_len = token.len();
    }

    fn invalidate(&mut self) {
        self.built = false;
    }

    fn insert(&mut self, vm: VmId, level: Level) {
        let l = level.get() as usize;
        if self.levels.len() <= l {
            self.levels.resize_with(l + 1, IdBitSet::default);
        }
        self.levels[l].insert(vm.index());
    }

    /// Clears `vm` at `level`; returns whether it was present.
    fn remove(&mut self, vm: VmId, level: Level) -> bool {
        match self.levels.get_mut(level.get() as usize) {
            Some(set) => set.remove(vm.index()),
            None => false,
        }
    }

    /// Re-levels `vm` — a no-op when it is checked (not present).
    fn move_level(&mut self, vm: VmId, old: Level, new: Level) {
        if old != new && self.remove(vm, old) {
            self.insert(vm, new);
        }
    }

    /// First unchecked VM at `level` with id > `from`, wrapping to the
    /// lowest id — the cyclic Algorithm-1 scan (the holder itself is
    /// checked by the time this runs, so no exclusion is needed).
    fn cyclic_after(&self, from: VmId, level: Level) -> Option<VmId> {
        let set = self.levels.get(level.get() as usize)?;
        set.succ_from(from.index() + 1)
            .or_else(|| set.min())
            .map(|i| VmId::new(i as u32))
    }

    /// Lowest-id unchecked VM at `level`.
    fn first_at(&self, level: Level) -> Option<VmId> {
        self.levels
            .get(level.get() as usize)?
            .min()
            .map(|i| VmId::new(i as u32))
    }

    /// Best unchecked VM by (level desc, id asc).
    fn best(&self) -> Option<VmId> {
        for set in self.levels.iter().rev() {
            if let Some(i) = set.min() {
                return Some(VmId::new(i as u32));
            }
        }
        None
    }
}

/// Round-robin: pass the token in ascending VM-id order, wrapping at the
/// top ("trivial to implement" but "wasteful since not all VMs will need to
/// migrate at any given time", §V-A1).
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin;

impl RoundRobin {
    /// Creates the policy.
    pub fn new() -> Self {
        RoundRobin
    }
}

impl TokenPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "rr"
    }

    fn next_holder(
        &mut self,
        token: &mut Token,
        holder: VmId,
        _outlook: &TrafficOutlook,
    ) -> Option<VmId> {
        let next = token.next_after(holder)?;
        if next == holder {
            None
        } else {
            Some(next)
        }
    }
}

/// Highest-Level-First (Algorithm 1): prioritise VMs whose traffic crosses
/// the most expensive layers, using the partial level estimates stored in
/// the token.
///
/// Algorithm 1 tracks which VMs have already been *checked* in the current
/// round ("if !found then ⊲ No unchecked VMs are left", line 15): without
/// it, two permanently core-level VMs would ping-pong the token between
/// themselves forever and starve the rest of the population. The checked
/// set conceptually travels with the token (one bit per entry); we keep it
/// inside the policy, which is equivalent for a single ring.
#[derive(Debug, Clone, Default)]
pub struct HighestLevelFirst {
    checked: CheckedSet,
    /// Accelerates the Algorithm-1 scans; derived from `checked` + the
    /// token, never authoritative.
    index: UncheckedIndex,
}

impl HighestLevelFirst {
    /// Creates the policy.
    pub fn new() -> Self {
        HighestLevelFirst::default()
    }
}

impl TokenPolicy for HighestLevelFirst {
    fn name(&self) -> &'static str {
        "hlf"
    }

    fn reset(&mut self) {
        self.checked.clear();
        self.index.invalidate();
    }

    fn prepare(&mut self, token: &Token) {
        self.index.invalidate();
        self.index.sync(token, &self.checked);
    }

    fn next_holder(
        &mut self,
        token: &mut Token,
        holder: VmId,
        outlook: &TrafficOutlook,
    ) -> Option<VmId> {
        let view = outlook.view();
        self.index.sync(token, &self.checked);
        // Line 1 and the preceding text: the holder refreshes its own entry
        // (it knows ℓ_A(u) exactly) …
        let own = view.own_level();
        if let Some(old) = token.level_of(holder) {
            token.set_level(holder, own);
            self.index.move_level(holder, old, own);
        }
        // … and lines 3–5: raises peer entries it has fresher knowledge of.
        for p in &view.peers {
            let old = token.level_of(p.vm);
            if token.raise_level(p.vm, p.level) {
                let old = old.expect("raised entries are tracked");
                self.index.move_level(p.vm, old, p.level);
            }
        }
        // The holder has now been checked this round.
        self.checked.insert(holder);
        if let Some(l) = token.level_of(holder) {
            self.index.remove(holder, l);
        }

        // Lines 6–14: search the holder's level starting after it, then
        // lower levels starting from v0 — unchecked VMs only. The holder
        // itself is checked (above), so the index never returns it.
        let cl0 = token.level_of(holder).unwrap_or(Level::ZERO);
        for cl in (0..=cl0.get()).rev() {
            let level = Level::new(cl);
            let found = if cl == cl0.get() {
                self.index.cyclic_after(holder, level)
            } else {
                self.index.first_at(level)
            };
            if let Some(z) = found {
                return Some(z);
            }
        }

        // Nothing unchecked at or below the holder's level; VMs whose
        // (possibly freshly raised) level exceeds the holder's may still be
        // unchecked — serve the highest of them first.
        if let Some(z) = self.index.best() {
            return Some(z);
        }

        // Lines 15–16: no unchecked VMs are left — the round is over.
        // Restart from the highest-level VM with the lowest ID; if that is
        // the holder itself, fall back to its round-robin successor.
        // O(token) once per round; the index rebuilds on the next call.
        self.checked.clear();
        self.index.invalidate();
        let max = token.entries().iter().map(|e| e.level).max()?;
        if let Some(e) = token
            .entries()
            .iter()
            .find(|e| e.level == max && e.id != holder)
        {
            return Some(e.id);
        }
        token.next_after(holder).filter(|&z| z != holder)
    }
}

/// The shared mechanics of the cost-routed policies ([`HighestCostFirst`]
/// and [`ForecastCostFirst`]): per-VM cost estimates tracked the same
/// way HLF tracks levels — exact for VMs that held the token, partial
/// (from observed pairs) for their peers — plus the per-round checked
/// set that guarantees coverage. The two public policies differ *only*
/// in which rate each pair is priced at (current vs expected), which is
/// what keeps "fcf ≡ hcf under a reactive outlook" true by
/// construction.
#[derive(Debug, Clone, Default)]
struct CostFirstCore {
    estimates: std::collections::HashMap<VmId, f64>,
    checked: CheckedSet,
}

impl CostFirstCore {
    /// The current cost estimate for a VM (0 when unobserved).
    fn estimate(&self, vm: VmId) -> f64 {
        self.estimates.get(&vm).copied().unwrap_or(0.0)
    }

    fn reset(&mut self) {
        self.checked.clear();
        self.estimates.clear();
    }

    /// Picks the unchecked VM (≠ `exclude`) with the highest estimate,
    /// ties broken towards the lowest id.
    fn best_unchecked(&self, token: &Token, exclude: VmId) -> Option<VmId> {
        let mut best: Option<(f64, VmId)> = None;
        for e in token.entries() {
            if e.id == exclude || self.checked.contains(e.id) {
                continue;
            }
            let est = self.estimate(e.id);
            match best {
                Some((b, _)) if est <= b => {}
                _ => best = Some((est, e.id)),
            }
        }
        best.map(|(_, id)| id)
    }

    /// One holder visit: refresh estimates (Eq. 1 with each pair priced
    /// by `rate_of(peer_index)`), keep token levels fresh, mark the
    /// holder checked, and pick the next holder — restarting the round
    /// at the globally highest-estimate VM when everyone was checked.
    fn next_holder(
        &mut self,
        weights: &score_topology::LinkWeights,
        token: &mut Token,
        holder: VmId,
        outlook: &TrafficOutlook,
        rate_of: impl Fn(&TrafficOutlook, usize) -> f64,
    ) -> Option<VmId> {
        let view = outlook.view();
        // Exact cost for the holder (Eq. 1 over its local view) …
        let own: f64 = 2.0
            * view
                .peers
                .iter()
                .enumerate()
                .map(|(i, p)| rate_of(outlook, i) * weights.prefix(p.level))
                .sum::<f64>();
        self.estimates.insert(holder, own);
        // … and a partial lower-bound estimate for each peer: the pair the
        // holder can see. Keep the max across observations.
        for (i, p) in view.peers.iter().enumerate() {
            let pair_cost = 2.0 * rate_of(outlook, i) * weights.prefix(p.level);
            let entry = self.estimates.entry(p.vm).or_insert(0.0);
            if *entry < pair_cost {
                *entry = pair_cost;
            }
        }
        // Keep the token's level entries fresh too (interoperable state).
        token.set_level(holder, view.own_level());
        for p in &view.peers {
            token.raise_level(p.vm, p.level);
        }
        self.checked.insert(holder);

        if let Some(z) = self.best_unchecked(token, holder) {
            return Some(z);
        }
        // Round over: restart at the globally highest-cost VM.
        self.checked.clear();
        if let Some(z) = self.best_unchecked(token, holder) {
            return Some(z);
        }
        token.next_after(holder).filter(|&z| z != holder)
    }
}

/// Highest-Cost-First: prioritise VMs by their estimated *communication
/// cost* contribution instead of their level.
///
/// One of the "number of distinct token passing policies" the paper's
/// companion technical report (TR-2013-338) explores beyond RR and HLF: a
/// VM at core level with negligible traffic matters less than one at
/// aggregation level moving gigabits. Pairs are priced at their
/// *current* rates; see [`ForecastCostFirst`] for the variant priced at
/// the outlook's expected rates.
#[derive(Debug, Clone)]
pub struct HighestCostFirst {
    weights: score_topology::LinkWeights,
    core: CostFirstCore,
}

impl HighestCostFirst {
    /// Creates the policy with the cost weights used for estimates.
    pub fn new(weights: score_topology::LinkWeights) -> Self {
        HighestCostFirst {
            weights,
            core: CostFirstCore::default(),
        }
    }

    /// Creates the policy with the paper's default weights.
    pub fn paper_default() -> Self {
        HighestCostFirst::new(score_topology::LinkWeights::paper_default())
    }

    /// The current cost estimate for a VM (0 when unobserved).
    pub fn estimate(&self, vm: VmId) -> f64 {
        self.core.estimate(vm)
    }
}

impl TokenPolicy for HighestCostFirst {
    fn name(&self) -> &'static str {
        "hcf"
    }

    fn reset(&mut self) {
        self.core.reset();
    }

    fn next_holder(
        &mut self,
        token: &mut Token,
        holder: VmId,
        outlook: &TrafficOutlook,
    ) -> Option<VmId> {
        self.core
            .next_holder(&self.weights, token, holder, outlook, |o, i| {
                o.view().peers[i].rate
            })
    }
}

/// Forecast-Cost-First: the forecast-aware variant of
/// [`HighestCostFirst`] — prioritise VMs by the communication cost they
/// are *expected* to incur at the outlook's horizon, so the token
/// reaches tomorrow's elephants before their spike lands.
///
/// Same cost-first mechanics; only the pair pricing differs
/// ([`TrafficOutlook::expected_rate`] instead of the current rate), so
/// with a reactive outlook this is exactly [`HighestCostFirst`].
#[derive(Debug, Clone)]
pub struct ForecastCostFirst {
    weights: score_topology::LinkWeights,
    core: CostFirstCore,
}

impl ForecastCostFirst {
    /// Creates the policy with the cost weights used for estimates.
    pub fn new(weights: score_topology::LinkWeights) -> Self {
        ForecastCostFirst {
            weights,
            core: CostFirstCore::default(),
        }
    }

    /// Creates the policy with the paper's default weights.
    pub fn paper_default() -> Self {
        ForecastCostFirst::new(score_topology::LinkWeights::paper_default())
    }

    /// The current expected-cost estimate for a VM (0 when unobserved).
    pub fn estimate(&self, vm: VmId) -> f64 {
        self.core.estimate(vm)
    }
}

impl TokenPolicy for ForecastCostFirst {
    fn name(&self) -> &'static str {
        "fcf"
    }

    fn reset(&mut self) {
        self.core.reset();
    }

    fn next_holder(
        &mut self,
        token: &mut Token,
        holder: VmId,
        outlook: &TrafficOutlook,
    ) -> Option<VmId> {
        self.core
            .next_holder(&self.weights, token, holder, outlook, |o, i| {
                o.expected_rate(i)
            })
    }
}

/// Uniform-random next holder (ablation baseline; not in the paper).
#[derive(Debug)]
pub struct RandomNext {
    rng: StdRng,
}

impl RandomNext {
    /// Creates the policy with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        RandomNext {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl TokenPolicy for RandomNext {
    fn name(&self) -> &'static str {
        "random"
    }

    fn next_holder(
        &mut self,
        token: &mut Token,
        holder: VmId,
        _outlook: &TrafficOutlook,
    ) -> Option<VmId> {
        let entries = token.entries();
        // Index-walk formulation of "uniform pick among ids ≠ holder":
        // sample k in the skip-holder index space, then map it back onto
        // the entry array. Draws the same `gen_range` bound as collecting
        // the others into a vector would, so picks are bit-identical to
        // the allocating formulation this replaces.
        let holder_pos = entries.binary_search_by_key(&holder, |e| e.id);
        let others = entries.len() - usize::from(holder_pos.is_ok());
        if others == 0 {
            return None;
        }
        let k = self.rng.gen_range(0..others);
        let idx = match holder_pos {
            Ok(h) if k >= h => k + 1,
            _ => k,
        };
        Some(entries[idx].id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::LocalView;
    use score_topology::ServerId;

    /// Wraps a view in a reactive outlook (what every pre-forecast test
    /// exercised).
    fn o(view: &LocalView) -> TrafficOutlook {
        TrafficOutlook::reactive(view.clone())
    }

    fn view_with_level(vm: VmId, own: Level, peers: Vec<(VmId, Level)>) -> LocalView {
        // Build a synthetic view: the engine fields not used by the
        // policies (rates, servers) are filled with placeholders, except
        // levels which the policies read.
        LocalView {
            vm,
            server: ServerId::new(0),
            peers: peers
                .into_iter()
                .map(|(v, l)| crate::view::PeerInfo {
                    vm: v,
                    rate: 1.0,
                    server: ServerId::new(1),
                    level: l,
                })
                .chain(std::iter::once(crate::view::PeerInfo {
                    vm: VmId::new(u32::MAX),
                    rate: 0.0,
                    server: ServerId::new(1),
                    level: own,
                }))
                .collect(),
        }
    }

    #[test]
    fn round_robin_cycles_in_id_order() {
        let mut token = Token::for_vms([2, 5, 9].map(VmId::new));
        let mut rr = RoundRobin::new();
        let v = view_with_level(VmId::new(2), Level::ZERO, vec![]);
        assert_eq!(
            rr.next_holder(&mut token, VmId::new(2), &o(&v)),
            Some(VmId::new(5))
        );
        assert_eq!(
            rr.next_holder(&mut token, VmId::new(5), &o(&v)),
            Some(VmId::new(9))
        );
        assert_eq!(
            rr.next_holder(&mut token, VmId::new(9), &o(&v)),
            Some(VmId::new(2))
        );
    }

    #[test]
    fn round_robin_singleton_stops() {
        let mut token = Token::for_vms([VmId::new(4)]);
        let mut rr = RoundRobin::new();
        let v = view_with_level(VmId::new(4), Level::ZERO, vec![]);
        assert_eq!(rr.next_holder(&mut token, VmId::new(4), &o(&v)), None);
    }

    #[test]
    fn hlf_updates_holder_and_peer_levels() {
        let mut token = Token::for_vms([0, 1, 2].map(VmId::new));
        let mut hlf = HighestLevelFirst::new();
        let v = view_with_level(
            VmId::new(0),
            Level::CORE,
            vec![(VmId::new(1), Level::AGGREGATION)],
        );
        let _ = hlf.next_holder(&mut token, VmId::new(0), &o(&v));
        assert_eq!(token.level_of(VmId::new(0)), Some(Level::CORE));
        assert_eq!(token.level_of(VmId::new(1)), Some(Level::AGGREGATION));
        assert_eq!(token.level_of(VmId::new(2)), Some(Level::ZERO));
    }

    #[test]
    fn hlf_prefers_same_level_after_holder() {
        let mut token = Token::for_vms([0, 1, 2, 3].map(VmId::new));
        token.set_level(VmId::new(1), Level::CORE);
        token.set_level(VmId::new(3), Level::CORE);
        let mut hlf = HighestLevelFirst::new();
        // Holder 2 at core level: scan starts after 2, finds 3 before 1.
        let v = view_with_level(VmId::new(2), Level::CORE, vec![]);
        assert_eq!(
            hlf.next_holder(&mut token, VmId::new(2), &o(&v)),
            Some(VmId::new(3))
        );
    }

    #[test]
    fn hlf_drops_to_lower_level_from_v0() {
        let mut token = Token::for_vms([0, 1, 2, 3].map(VmId::new));
        token.set_level(VmId::new(1), Level::RACK);
        token.set_level(VmId::new(3), Level::RACK);
        let mut hlf = HighestLevelFirst::new();
        // Holder 2 at aggregation level, nobody else there → drop to rack
        // level and take the lowest id (1).
        let v = view_with_level(VmId::new(2), Level::AGGREGATION, vec![]);
        assert_eq!(
            hlf.next_holder(&mut token, VmId::new(2), &o(&v)),
            Some(VmId::new(1))
        );
    }

    #[test]
    fn hlf_falls_back_to_max_level_min_id() {
        let mut token = Token::for_vms([0, 1, 2].map(VmId::new));
        token.set_level(VmId::new(1), Level::CORE);
        token.set_level(VmId::new(2), Level::CORE);
        let mut hlf = HighestLevelFirst::new();
        // Holder 0 at level 0; nobody else at level 0 → lines 15–16 pick
        // the lowest-id max-level VM (1).
        let v = view_with_level(VmId::new(0), Level::ZERO, vec![]);
        // own level 0 comes from the synthetic "no peers above 0" view.
        let v0 = LocalView {
            vm: VmId::new(0),
            server: ServerId::new(0),
            peers: vec![],
        };
        let _ = v;
        assert_eq!(
            hlf.next_holder(&mut token, VmId::new(0), &o(&v0)),
            Some(VmId::new(1))
        );
    }

    #[test]
    fn hlf_singleton_stops() {
        let mut token = Token::for_vms([VmId::new(7)]);
        let mut hlf = HighestLevelFirst::new();
        let v = LocalView {
            vm: VmId::new(7),
            server: ServerId::new(0),
            peers: vec![],
        };
        assert_eq!(hlf.next_holder(&mut token, VmId::new(7), &o(&v)), None);
    }

    #[test]
    fn hlf_does_not_starve_low_level_vms() {
        // Two VMs pinned at core level that never migrate must not trap the
        // token between themselves: every VM gets the token each round.
        let mut token = Token::for_vms([0, 1, 2, 3, 4].map(VmId::new));
        token.set_level(VmId::new(0), Level::CORE);
        token.set_level(VmId::new(1), Level::CORE);
        let mut hlf = HighestLevelFirst::new();
        let mut holder = VmId::new(0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10 {
            seen.insert(holder);
            // Holders report their stored level as their true level.
            let own = token.level_of(holder).unwrap();
            let v = view_with_level(holder, own, vec![]);
            match hlf.next_holder(&mut token, holder, &o(&v)) {
                Some(next) => holder = next,
                None => break,
            }
        }
        assert_eq!(seen.len(), 5, "all 5 VMs must hold the token: {seen:?}");
    }

    #[test]
    fn hlf_round_restart_targets_max_level() {
        let mut token = Token::for_vms([0, 1].map(VmId::new));
        token.set_level(VmId::new(1), Level::CORE);
        let mut hlf = HighestLevelFirst::new();
        // 0 -> 1 (only unchecked), then 1 -> round restart -> 0? No: after
        // both checked, restart picks max-level min-id excluding holder.
        let v0 = LocalView {
            vm: VmId::new(0),
            server: ServerId::new(0),
            peers: vec![],
        };
        assert_eq!(
            hlf.next_holder(&mut token, VmId::new(0), &o(&v0)),
            Some(VmId::new(1))
        );
        let v1 = view_with_level(VmId::new(1), Level::CORE, vec![]);
        // Round over: restart. Max level is 1's own CORE, but 1 is the
        // holder, so 0 gets it.
        assert_eq!(
            hlf.next_holder(&mut token, VmId::new(1), &o(&v1)),
            Some(VmId::new(0))
        );
    }

    #[test]
    fn random_next_avoids_holder_and_is_seeded() {
        let mut token = Token::for_vms([0, 1, 2, 3].map(VmId::new));
        let v = LocalView {
            vm: VmId::new(0),
            server: ServerId::new(0),
            peers: vec![],
        };
        let picks: Vec<Option<VmId>> = {
            let mut p = RandomNext::new(9);
            (0..16)
                .map(|_| p.next_holder(&mut token, VmId::new(0), &o(&v)))
                .collect()
        };
        assert!(picks
            .iter()
            .all(|p| p.is_some() && p.unwrap() != VmId::new(0)));
        let mut p2 = RandomNext::new(9);
        let picks2: Vec<Option<VmId>> = (0..16)
            .map(|_| p2.next_holder(&mut token, VmId::new(0), &o(&v)))
            .collect();
        assert_eq!(picks, picks2, "seeded policy must be deterministic");
    }

    #[test]
    fn policy_names() {
        assert_eq!(RoundRobin::new().name(), "rr");
        assert_eq!(HighestLevelFirst::new().name(), "hlf");
        assert_eq!(RandomNext::new(0).name(), "random");
        assert_eq!(HighestCostFirst::paper_default().name(), "hcf");
    }

    #[test]
    fn hcf_prefers_costly_vms() {
        let mut token = Token::for_vms([0, 1, 2, 3].map(VmId::new));
        let mut hcf = HighestCostFirst::paper_default();
        // Holder 0 sees peer 2 with a heavy core-level pair and peer 1
        // with a light rack-level pair → 2 gets the higher estimate.
        let view = LocalView {
            vm: VmId::new(0),
            server: ServerId::new(0),
            peers: vec![
                crate::view::PeerInfo {
                    vm: VmId::new(1),
                    rate: 1.0,
                    server: ServerId::new(1),
                    level: Level::RACK,
                },
                crate::view::PeerInfo {
                    vm: VmId::new(2),
                    rate: 100.0,
                    server: ServerId::new(8),
                    level: Level::CORE,
                },
            ],
        };
        let next = hcf.next_holder(&mut token, VmId::new(0), &o(&view));
        assert_eq!(next, Some(VmId::new(2)));
        assert!(hcf.estimate(VmId::new(2)) > hcf.estimate(VmId::new(1)));
        // The holder's own (exact) estimate covers both pairs.
        assert!(hcf.estimate(VmId::new(0)) > hcf.estimate(VmId::new(2)));
    }

    #[test]
    fn hcf_covers_everyone_per_round() {
        let mut token = Token::for_vms([0, 1, 2, 3, 4].map(VmId::new));
        let mut hcf = HighestCostFirst::paper_default();
        let mut holder = VmId::new(0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10 {
            seen.insert(holder);
            let view = LocalView {
                vm: holder,
                server: ServerId::new(0),
                peers: vec![],
            };
            match hcf.next_holder(&mut token, holder, &o(&view)) {
                Some(next) => holder = next,
                None => break,
            }
        }
        assert_eq!(seen.len(), 5, "all VMs must hold the token: {seen:?}");
    }

    #[test]
    fn hcf_singleton_stops() {
        let mut token = Token::for_vms([VmId::new(3)]);
        let mut hcf = HighestCostFirst::paper_default();
        let view = LocalView {
            vm: VmId::new(3),
            server: ServerId::new(0),
            peers: vec![],
        };
        assert_eq!(hcf.next_holder(&mut token, VmId::new(3), &o(&view)), None);
    }

    /// The pre-index HLF scans, kept verbatim as a reference oracle for
    /// [`hlf_index_matches_reference_scans`].
    #[derive(Default)]
    struct RefHlf {
        checked: std::collections::HashSet<VmId>,
    }

    impl RefHlf {
        fn next_holder(
            &mut self,
            token: &mut Token,
            holder: VmId,
            outlook: &TrafficOutlook,
        ) -> Option<VmId> {
            let view = outlook.view();
            token.set_level(holder, view.own_level());
            for p in &view.peers {
                token.raise_level(p.vm, p.level);
            }
            self.checked.insert(holder);
            let scan_cyclic = |checked: &std::collections::HashSet<VmId>,
                               token: &Token,
                               from: VmId,
                               level: Level| {
                let entries = token.entries();
                if entries.is_empty() {
                    return None;
                }
                let start = match entries.binary_search_by_key(&from, |e| e.id) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                let n = entries.len();
                (0..n)
                    .map(|off| &entries[(start + off) % n])
                    .find(|e| e.id != holder && e.level == level && !checked.contains(&e.id))
                    .map(|e| e.id)
            };
            let cl0 = token.level_of(holder).unwrap_or(Level::ZERO);
            for cl in (0..=cl0.get()).rev() {
                let level = Level::new(cl);
                let found = if cl == cl0.get() {
                    scan_cyclic(&self.checked, token, holder, level)
                } else {
                    token
                        .entries()
                        .iter()
                        .find(|e| {
                            e.id != holder && e.level == level && !self.checked.contains(&e.id)
                        })
                        .map(|e| e.id)
                };
                if let Some(z) = found {
                    return Some(z);
                }
            }
            if let Some(z) = token
                .entries()
                .iter()
                .filter(|e| e.id != holder && !self.checked.contains(&e.id))
                .max_by(|a, b| a.level.cmp(&b.level).then(b.id.cmp(&a.id)))
                .map(|e| e.id)
            {
                return Some(z);
            }
            self.checked.clear();
            let max = token.entries().iter().map(|e| e.level).max()?;
            if let Some(e) = token
                .entries()
                .iter()
                .find(|e| e.level == max && e.id != holder)
            {
                return Some(e.id);
            }
            token.next_after(holder).filter(|&z| z != holder)
        }
    }

    /// Drives the bitset-indexed `HighestLevelFirst` and the reference
    /// linear-scan formulation through the same pseudo-random sequence of
    /// views, membership churn and resets, asserting identical holder
    /// sequences and token states throughout.
    #[test]
    fn hlf_index_matches_reference_scans() {
        let mut rng_state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            rng_state
        };
        let ids: Vec<VmId> = (0..40).map(VmId::new).collect();
        let mut token_a = Token::for_vms(ids.iter().copied());
        let mut token_b = token_a.clone();
        let mut hlf = HighestLevelFirst::new();
        hlf.prepare(&token_a);
        let mut reference = RefHlf::default();
        let mut holder = token_a.first().expect("non-empty");
        for step in 0..4000 {
            let r = next();
            match r % 23 {
                0 => {
                    // Membership churn, policy state preserved — mirrors
                    // TokenRing::{add_vm,remove_vm}, which do not reset.
                    let vm = VmId::new((r >> 8) as u32 % 48);
                    if r & 0x100000 == 0 {
                        assert_eq!(token_a.add_vm(vm), token_b.add_vm(vm));
                    } else if vm != holder {
                        assert_eq!(token_a.remove_vm(vm), token_b.remove_vm(vm));
                    }
                }
                1 => {
                    // Token regeneration path: both sides reset.
                    hlf.reset();
                    reference.checked.clear();
                }
                _ => {}
            }
            let own = Level::new((r >> 16) as u8 % 5);
            let peers = (0..(r >> 24) % 4)
                .map(|_| {
                    let p = next();
                    (VmId::new((p % 48) as u32), Level::new((p >> 8) as u8 % 5))
                })
                .filter(|(v, _)| *v != holder)
                .collect::<Vec<_>>();
            let view = view_with_level(holder, own, peers);
            let a = hlf.next_holder(&mut token_a, holder, &o(&view));
            let b = reference.next_holder(&mut token_b, holder, &o(&view));
            assert_eq!(a, b, "divergence at step {step} (holder {holder:?})");
            assert_eq!(token_a, token_b, "token divergence at step {step}");
            match a {
                Some(h) => holder = h,
                None => break,
            }
        }
    }
}
