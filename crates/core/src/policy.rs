//! Token-passing policies (paper §V-A).
//!
//! The token holder decides whether to migrate, then picks the next holder
//! according to the policy. The paper evaluates two: Round-Robin
//! ([`RoundRobin`]) and Highest-Level-First ([`HighestLevelFirst`],
//! Algorithm 1). [`RandomNext`] is included as an ablation baseline.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use score_topology::{Level, VmId};
use std::fmt;

use crate::outlook::TrafficOutlook;
use crate::token::Token;

/// A token-passing policy.
///
/// `next_holder` is invoked while `holder` still owns the token, *after*
/// its migration decision; `outlook` carries the holder's post-decision
/// [`crate::LocalView`] plus, when the pipeline forecasts, the predicted
/// per-peer rates at the lookahead horizon. Implementations may update
/// the token's level entries (HLF does, RR does not need to). Returning
/// `None` means no next holder exists (empty or singleton token).
///
/// Reactive outlooks ([`TrafficOutlook::reactive`]) carry no forecast;
/// policies that only read `outlook.view()` behave exactly as they did
/// before the outlook existed — the compatibility invariant the
/// forecast refactor preserves bit for bit.
pub trait TokenPolicy: fmt::Debug + Send {
    /// Short policy name for logs and CSV columns (e.g. `"rr"`, `"hlf"`).
    fn name(&self) -> &'static str;

    /// Picks the next token holder and updates token state.
    fn next_holder(
        &mut self,
        token: &mut Token,
        holder: VmId,
        outlook: &TrafficOutlook,
    ) -> Option<VmId>;

    /// Discards any policy-internal state (visit sets, estimates) — called
    /// when a lost token is regenerated and the distributed state restarts
    /// from scratch. Stateless policies need not override this.
    fn reset(&mut self) {}
}

impl<P: TokenPolicy + ?Sized> TokenPolicy for Box<P> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn next_holder(
        &mut self,
        token: &mut Token,
        holder: VmId,
        outlook: &TrafficOutlook,
    ) -> Option<VmId> {
        (**self).next_holder(token, holder, outlook)
    }

    fn reset(&mut self) {
        (**self).reset()
    }
}

/// Round-robin: pass the token in ascending VM-id order, wrapping at the
/// top ("trivial to implement" but "wasteful since not all VMs will need to
/// migrate at any given time", §V-A1).
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin;

impl RoundRobin {
    /// Creates the policy.
    pub fn new() -> Self {
        RoundRobin
    }
}

impl TokenPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "rr"
    }

    fn next_holder(
        &mut self,
        token: &mut Token,
        holder: VmId,
        _outlook: &TrafficOutlook,
    ) -> Option<VmId> {
        let next = token.next_after(holder)?;
        if next == holder {
            None
        } else {
            Some(next)
        }
    }
}

/// Highest-Level-First (Algorithm 1): prioritise VMs whose traffic crosses
/// the most expensive layers, using the partial level estimates stored in
/// the token.
///
/// Algorithm 1 tracks which VMs have already been *checked* in the current
/// round ("if !found then ⊲ No unchecked VMs are left", line 15): without
/// it, two permanently core-level VMs would ping-pong the token between
/// themselves forever and starve the rest of the population. The checked
/// set conceptually travels with the token (one bit per entry); we keep it
/// inside the policy, which is equivalent for a single ring.
#[derive(Debug, Clone, Default)]
pub struct HighestLevelFirst {
    checked: std::collections::HashSet<VmId>,
}

impl HighestLevelFirst {
    /// Creates the policy.
    pub fn new() -> Self {
        HighestLevelFirst::default()
    }

    /// Finds the first *unchecked* VM (≠ `exclude`) at exactly `level`,
    /// scanning ids cyclically starting *after* `from`.
    fn scan_cyclic_after(
        &self,
        token: &Token,
        from: VmId,
        level: Level,
        exclude: VmId,
    ) -> Option<VmId> {
        let entries = token.entries();
        if entries.is_empty() {
            return None;
        }
        let start = match entries.binary_search_by_key(&from, |e| e.id) {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        let n = entries.len();
        for off in 0..n {
            let e = &entries[(start + off) % n];
            if e.id != exclude && e.level == level && !self.checked.contains(&e.id) {
                return Some(e.id);
            }
        }
        None
    }

    /// Finds the lowest-id *unchecked* VM (≠ `exclude`) at exactly `level`
    /// — the "start from the beginning (v0)" scan of Algorithm 1 lines
    /// 13–14.
    fn scan_from_first(&self, token: &Token, level: Level, exclude: VmId) -> Option<VmId> {
        token
            .entries()
            .iter()
            .find(|e| e.id != exclude && e.level == level && !self.checked.contains(&e.id))
            .map(|e| e.id)
    }

    /// Best unchecked VM by (level desc, id asc), excluding `exclude`.
    fn best_unchecked(&self, token: &Token, exclude: VmId) -> Option<VmId> {
        token
            .entries()
            .iter()
            .filter(|e| e.id != exclude && !self.checked.contains(&e.id))
            .max_by(|a, b| a.level.cmp(&b.level).then(b.id.cmp(&a.id)))
            .map(|e| e.id)
    }
}

impl TokenPolicy for HighestLevelFirst {
    fn name(&self) -> &'static str {
        "hlf"
    }

    fn reset(&mut self) {
        self.checked.clear();
    }

    fn next_holder(
        &mut self,
        token: &mut Token,
        holder: VmId,
        outlook: &TrafficOutlook,
    ) -> Option<VmId> {
        let view = outlook.view();
        // Line 1 and the preceding text: the holder refreshes its own entry
        // (it knows ℓ_A(u) exactly) …
        token.set_level(holder, view.own_level());
        // … and lines 3–5: raises peer entries it has fresher knowledge of.
        for (vm, level) in view.peer_levels() {
            token.raise_level(vm, level);
        }
        // The holder has now been checked this round.
        self.checked.insert(holder);

        // Lines 6–14: search the holder's level starting after it, then
        // lower levels starting from v0 — unchecked VMs only.
        let cl0 = token.level_of(holder).unwrap_or(Level::ZERO);
        for cl in (0..=cl0.get()).rev() {
            let level = Level::new(cl);
            let found = if cl == cl0.get() {
                self.scan_cyclic_after(token, holder, level, holder)
            } else {
                self.scan_from_first(token, level, holder)
            };
            if let Some(z) = found {
                return Some(z);
            }
        }

        // Nothing unchecked at or below the holder's level; VMs whose
        // (possibly freshly raised) level exceeds the holder's may still be
        // unchecked — serve the highest of them first.
        if let Some(z) = self.best_unchecked(token, holder) {
            return Some(z);
        }

        // Lines 15–16: no unchecked VMs are left — the round is over.
        // Restart from the highest-level VM with the lowest ID; if that is
        // the holder itself, fall back to its round-robin successor.
        self.checked.clear();
        let (_, ids) = token.max_level_entries()?;
        if let Some(z) = ids.into_iter().find(|&z| z != holder) {
            return Some(z);
        }
        token.next_after(holder).filter(|&z| z != holder)
    }
}

/// The shared mechanics of the cost-routed policies ([`HighestCostFirst`]
/// and [`ForecastCostFirst`]): per-VM cost estimates tracked the same
/// way HLF tracks levels — exact for VMs that held the token, partial
/// (from observed pairs) for their peers — plus the per-round checked
/// set that guarantees coverage. The two public policies differ *only*
/// in which rate each pair is priced at (current vs expected), which is
/// what keeps "fcf ≡ hcf under a reactive outlook" true by
/// construction.
#[derive(Debug, Clone, Default)]
struct CostFirstCore {
    estimates: std::collections::HashMap<VmId, f64>,
    checked: std::collections::HashSet<VmId>,
}

impl CostFirstCore {
    /// The current cost estimate for a VM (0 when unobserved).
    fn estimate(&self, vm: VmId) -> f64 {
        self.estimates.get(&vm).copied().unwrap_or(0.0)
    }

    fn reset(&mut self) {
        self.checked.clear();
        self.estimates.clear();
    }

    /// Picks the unchecked VM (≠ `exclude`) with the highest estimate,
    /// ties broken towards the lowest id.
    fn best_unchecked(&self, token: &Token, exclude: VmId) -> Option<VmId> {
        let mut best: Option<(f64, VmId)> = None;
        for e in token.entries() {
            if e.id == exclude || self.checked.contains(&e.id) {
                continue;
            }
            let est = self.estimate(e.id);
            match best {
                Some((b, _)) if est <= b => {}
                _ => best = Some((est, e.id)),
            }
        }
        best.map(|(_, id)| id)
    }

    /// One holder visit: refresh estimates (Eq. 1 with each pair priced
    /// by `rate_of(peer_index)`), keep token levels fresh, mark the
    /// holder checked, and pick the next holder — restarting the round
    /// at the globally highest-estimate VM when everyone was checked.
    fn next_holder(
        &mut self,
        weights: &score_topology::LinkWeights,
        token: &mut Token,
        holder: VmId,
        outlook: &TrafficOutlook,
        rate_of: impl Fn(&TrafficOutlook, usize) -> f64,
    ) -> Option<VmId> {
        let view = outlook.view();
        // Exact cost for the holder (Eq. 1 over its local view) …
        let own: f64 = 2.0
            * view
                .peers
                .iter()
                .enumerate()
                .map(|(i, p)| rate_of(outlook, i) * weights.prefix(p.level))
                .sum::<f64>();
        self.estimates.insert(holder, own);
        // … and a partial lower-bound estimate for each peer: the pair the
        // holder can see. Keep the max across observations.
        for (i, p) in view.peers.iter().enumerate() {
            let pair_cost = 2.0 * rate_of(outlook, i) * weights.prefix(p.level);
            let entry = self.estimates.entry(p.vm).or_insert(0.0);
            if *entry < pair_cost {
                *entry = pair_cost;
            }
        }
        // Keep the token's level entries fresh too (interoperable state).
        token.set_level(holder, view.own_level());
        for (vm, level) in view.peer_levels() {
            token.raise_level(vm, level);
        }
        self.checked.insert(holder);

        if let Some(z) = self.best_unchecked(token, holder) {
            return Some(z);
        }
        // Round over: restart at the globally highest-cost VM.
        self.checked.clear();
        if let Some(z) = self.best_unchecked(token, holder) {
            return Some(z);
        }
        token.next_after(holder).filter(|&z| z != holder)
    }
}

/// Highest-Cost-First: prioritise VMs by their estimated *communication
/// cost* contribution instead of their level.
///
/// One of the "number of distinct token passing policies" the paper's
/// companion technical report (TR-2013-338) explores beyond RR and HLF: a
/// VM at core level with negligible traffic matters less than one at
/// aggregation level moving gigabits. Pairs are priced at their
/// *current* rates; see [`ForecastCostFirst`] for the variant priced at
/// the outlook's expected rates.
#[derive(Debug, Clone)]
pub struct HighestCostFirst {
    weights: score_topology::LinkWeights,
    core: CostFirstCore,
}

impl HighestCostFirst {
    /// Creates the policy with the cost weights used for estimates.
    pub fn new(weights: score_topology::LinkWeights) -> Self {
        HighestCostFirst {
            weights,
            core: CostFirstCore::default(),
        }
    }

    /// Creates the policy with the paper's default weights.
    pub fn paper_default() -> Self {
        HighestCostFirst::new(score_topology::LinkWeights::paper_default())
    }

    /// The current cost estimate for a VM (0 when unobserved).
    pub fn estimate(&self, vm: VmId) -> f64 {
        self.core.estimate(vm)
    }
}

impl TokenPolicy for HighestCostFirst {
    fn name(&self) -> &'static str {
        "hcf"
    }

    fn reset(&mut self) {
        self.core.reset();
    }

    fn next_holder(
        &mut self,
        token: &mut Token,
        holder: VmId,
        outlook: &TrafficOutlook,
    ) -> Option<VmId> {
        self.core
            .next_holder(&self.weights, token, holder, outlook, |o, i| {
                o.view().peers[i].rate
            })
    }
}

/// Forecast-Cost-First: the forecast-aware variant of
/// [`HighestCostFirst`] — prioritise VMs by the communication cost they
/// are *expected* to incur at the outlook's horizon, so the token
/// reaches tomorrow's elephants before their spike lands.
///
/// Same cost-first mechanics; only the pair pricing differs
/// ([`TrafficOutlook::expected_rate`] instead of the current rate), so
/// with a reactive outlook this is exactly [`HighestCostFirst`].
#[derive(Debug, Clone)]
pub struct ForecastCostFirst {
    weights: score_topology::LinkWeights,
    core: CostFirstCore,
}

impl ForecastCostFirst {
    /// Creates the policy with the cost weights used for estimates.
    pub fn new(weights: score_topology::LinkWeights) -> Self {
        ForecastCostFirst {
            weights,
            core: CostFirstCore::default(),
        }
    }

    /// Creates the policy with the paper's default weights.
    pub fn paper_default() -> Self {
        ForecastCostFirst::new(score_topology::LinkWeights::paper_default())
    }

    /// The current expected-cost estimate for a VM (0 when unobserved).
    pub fn estimate(&self, vm: VmId) -> f64 {
        self.core.estimate(vm)
    }
}

impl TokenPolicy for ForecastCostFirst {
    fn name(&self) -> &'static str {
        "fcf"
    }

    fn reset(&mut self) {
        self.core.reset();
    }

    fn next_holder(
        &mut self,
        token: &mut Token,
        holder: VmId,
        outlook: &TrafficOutlook,
    ) -> Option<VmId> {
        self.core
            .next_holder(&self.weights, token, holder, outlook, |o, i| {
                o.expected_rate(i)
            })
    }
}

/// Uniform-random next holder (ablation baseline; not in the paper).
#[derive(Debug)]
pub struct RandomNext {
    rng: StdRng,
}

impl RandomNext {
    /// Creates the policy with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        RandomNext {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl TokenPolicy for RandomNext {
    fn name(&self) -> &'static str {
        "random"
    }

    fn next_holder(
        &mut self,
        token: &mut Token,
        holder: VmId,
        _outlook: &TrafficOutlook,
    ) -> Option<VmId> {
        let entries = token.entries();
        let others: Vec<VmId> = entries
            .iter()
            .map(|e| e.id)
            .filter(|&id| id != holder)
            .collect();
        if others.is_empty() {
            None
        } else {
            Some(others[self.rng.gen_range(0..others.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::LocalView;
    use score_topology::ServerId;

    /// Wraps a view in a reactive outlook (what every pre-forecast test
    /// exercised).
    fn o(view: &LocalView) -> TrafficOutlook {
        TrafficOutlook::reactive(view.clone())
    }

    fn view_with_level(vm: VmId, own: Level, peers: Vec<(VmId, Level)>) -> LocalView {
        // Build a synthetic view: the engine fields not used by the
        // policies (rates, servers) are filled with placeholders, except
        // levels which the policies read.
        LocalView {
            vm,
            server: ServerId::new(0),
            peers: peers
                .into_iter()
                .map(|(v, l)| crate::view::PeerInfo {
                    vm: v,
                    rate: 1.0,
                    server: ServerId::new(1),
                    level: l,
                })
                .chain(std::iter::once(crate::view::PeerInfo {
                    vm: VmId::new(u32::MAX),
                    rate: 0.0,
                    server: ServerId::new(1),
                    level: own,
                }))
                .collect(),
        }
    }

    #[test]
    fn round_robin_cycles_in_id_order() {
        let mut token = Token::for_vms([2, 5, 9].map(VmId::new));
        let mut rr = RoundRobin::new();
        let v = view_with_level(VmId::new(2), Level::ZERO, vec![]);
        assert_eq!(
            rr.next_holder(&mut token, VmId::new(2), &o(&v)),
            Some(VmId::new(5))
        );
        assert_eq!(
            rr.next_holder(&mut token, VmId::new(5), &o(&v)),
            Some(VmId::new(9))
        );
        assert_eq!(
            rr.next_holder(&mut token, VmId::new(9), &o(&v)),
            Some(VmId::new(2))
        );
    }

    #[test]
    fn round_robin_singleton_stops() {
        let mut token = Token::for_vms([VmId::new(4)]);
        let mut rr = RoundRobin::new();
        let v = view_with_level(VmId::new(4), Level::ZERO, vec![]);
        assert_eq!(rr.next_holder(&mut token, VmId::new(4), &o(&v)), None);
    }

    #[test]
    fn hlf_updates_holder_and_peer_levels() {
        let mut token = Token::for_vms([0, 1, 2].map(VmId::new));
        let mut hlf = HighestLevelFirst::new();
        let v = view_with_level(
            VmId::new(0),
            Level::CORE,
            vec![(VmId::new(1), Level::AGGREGATION)],
        );
        let _ = hlf.next_holder(&mut token, VmId::new(0), &o(&v));
        assert_eq!(token.level_of(VmId::new(0)), Some(Level::CORE));
        assert_eq!(token.level_of(VmId::new(1)), Some(Level::AGGREGATION));
        assert_eq!(token.level_of(VmId::new(2)), Some(Level::ZERO));
    }

    #[test]
    fn hlf_prefers_same_level_after_holder() {
        let mut token = Token::for_vms([0, 1, 2, 3].map(VmId::new));
        token.set_level(VmId::new(1), Level::CORE);
        token.set_level(VmId::new(3), Level::CORE);
        let mut hlf = HighestLevelFirst::new();
        // Holder 2 at core level: scan starts after 2, finds 3 before 1.
        let v = view_with_level(VmId::new(2), Level::CORE, vec![]);
        assert_eq!(
            hlf.next_holder(&mut token, VmId::new(2), &o(&v)),
            Some(VmId::new(3))
        );
    }

    #[test]
    fn hlf_drops_to_lower_level_from_v0() {
        let mut token = Token::for_vms([0, 1, 2, 3].map(VmId::new));
        token.set_level(VmId::new(1), Level::RACK);
        token.set_level(VmId::new(3), Level::RACK);
        let mut hlf = HighestLevelFirst::new();
        // Holder 2 at aggregation level, nobody else there → drop to rack
        // level and take the lowest id (1).
        let v = view_with_level(VmId::new(2), Level::AGGREGATION, vec![]);
        assert_eq!(
            hlf.next_holder(&mut token, VmId::new(2), &o(&v)),
            Some(VmId::new(1))
        );
    }

    #[test]
    fn hlf_falls_back_to_max_level_min_id() {
        let mut token = Token::for_vms([0, 1, 2].map(VmId::new));
        token.set_level(VmId::new(1), Level::CORE);
        token.set_level(VmId::new(2), Level::CORE);
        let mut hlf = HighestLevelFirst::new();
        // Holder 0 at level 0; nobody else at level 0 → lines 15–16 pick
        // the lowest-id max-level VM (1).
        let v = view_with_level(VmId::new(0), Level::ZERO, vec![]);
        // own level 0 comes from the synthetic "no peers above 0" view.
        let v0 = LocalView {
            vm: VmId::new(0),
            server: ServerId::new(0),
            peers: vec![],
        };
        let _ = v;
        assert_eq!(
            hlf.next_holder(&mut token, VmId::new(0), &o(&v0)),
            Some(VmId::new(1))
        );
    }

    #[test]
    fn hlf_singleton_stops() {
        let mut token = Token::for_vms([VmId::new(7)]);
        let mut hlf = HighestLevelFirst::new();
        let v = LocalView {
            vm: VmId::new(7),
            server: ServerId::new(0),
            peers: vec![],
        };
        assert_eq!(hlf.next_holder(&mut token, VmId::new(7), &o(&v)), None);
    }

    #[test]
    fn hlf_does_not_starve_low_level_vms() {
        // Two VMs pinned at core level that never migrate must not trap the
        // token between themselves: every VM gets the token each round.
        let mut token = Token::for_vms([0, 1, 2, 3, 4].map(VmId::new));
        token.set_level(VmId::new(0), Level::CORE);
        token.set_level(VmId::new(1), Level::CORE);
        let mut hlf = HighestLevelFirst::new();
        let mut holder = VmId::new(0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10 {
            seen.insert(holder);
            // Holders report their stored level as their true level.
            let own = token.level_of(holder).unwrap();
            let v = view_with_level(holder, own, vec![]);
            match hlf.next_holder(&mut token, holder, &o(&v)) {
                Some(next) => holder = next,
                None => break,
            }
        }
        assert_eq!(seen.len(), 5, "all 5 VMs must hold the token: {seen:?}");
    }

    #[test]
    fn hlf_round_restart_targets_max_level() {
        let mut token = Token::for_vms([0, 1].map(VmId::new));
        token.set_level(VmId::new(1), Level::CORE);
        let mut hlf = HighestLevelFirst::new();
        // 0 -> 1 (only unchecked), then 1 -> round restart -> 0? No: after
        // both checked, restart picks max-level min-id excluding holder.
        let v0 = LocalView {
            vm: VmId::new(0),
            server: ServerId::new(0),
            peers: vec![],
        };
        assert_eq!(
            hlf.next_holder(&mut token, VmId::new(0), &o(&v0)),
            Some(VmId::new(1))
        );
        let v1 = view_with_level(VmId::new(1), Level::CORE, vec![]);
        // Round over: restart. Max level is 1's own CORE, but 1 is the
        // holder, so 0 gets it.
        assert_eq!(
            hlf.next_holder(&mut token, VmId::new(1), &o(&v1)),
            Some(VmId::new(0))
        );
    }

    #[test]
    fn random_next_avoids_holder_and_is_seeded() {
        let mut token = Token::for_vms([0, 1, 2, 3].map(VmId::new));
        let v = LocalView {
            vm: VmId::new(0),
            server: ServerId::new(0),
            peers: vec![],
        };
        let picks: Vec<Option<VmId>> = {
            let mut p = RandomNext::new(9);
            (0..16)
                .map(|_| p.next_holder(&mut token, VmId::new(0), &o(&v)))
                .collect()
        };
        assert!(picks
            .iter()
            .all(|p| p.is_some() && p.unwrap() != VmId::new(0)));
        let mut p2 = RandomNext::new(9);
        let picks2: Vec<Option<VmId>> = (0..16)
            .map(|_| p2.next_holder(&mut token, VmId::new(0), &o(&v)))
            .collect();
        assert_eq!(picks, picks2, "seeded policy must be deterministic");
    }

    #[test]
    fn policy_names() {
        assert_eq!(RoundRobin::new().name(), "rr");
        assert_eq!(HighestLevelFirst::new().name(), "hlf");
        assert_eq!(RandomNext::new(0).name(), "random");
        assert_eq!(HighestCostFirst::paper_default().name(), "hcf");
    }

    #[test]
    fn hcf_prefers_costly_vms() {
        let mut token = Token::for_vms([0, 1, 2, 3].map(VmId::new));
        let mut hcf = HighestCostFirst::paper_default();
        // Holder 0 sees peer 2 with a heavy core-level pair and peer 1
        // with a light rack-level pair → 2 gets the higher estimate.
        let view = LocalView {
            vm: VmId::new(0),
            server: ServerId::new(0),
            peers: vec![
                crate::view::PeerInfo {
                    vm: VmId::new(1),
                    rate: 1.0,
                    server: ServerId::new(1),
                    level: Level::RACK,
                },
                crate::view::PeerInfo {
                    vm: VmId::new(2),
                    rate: 100.0,
                    server: ServerId::new(8),
                    level: Level::CORE,
                },
            ],
        };
        let next = hcf.next_holder(&mut token, VmId::new(0), &o(&view));
        assert_eq!(next, Some(VmId::new(2)));
        assert!(hcf.estimate(VmId::new(2)) > hcf.estimate(VmId::new(1)));
        // The holder's own (exact) estimate covers both pairs.
        assert!(hcf.estimate(VmId::new(0)) > hcf.estimate(VmId::new(2)));
    }

    #[test]
    fn hcf_covers_everyone_per_round() {
        let mut token = Token::for_vms([0, 1, 2, 3, 4].map(VmId::new));
        let mut hcf = HighestCostFirst::paper_default();
        let mut holder = VmId::new(0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10 {
            seen.insert(holder);
            let view = LocalView {
                vm: holder,
                server: ServerId::new(0),
                peers: vec![],
            };
            match hcf.next_holder(&mut token, holder, &o(&view)) {
                Some(next) => holder = next,
                None => break,
            }
        }
        assert_eq!(seen.len(), 5, "all VMs must hold the token: {seen:?}");
    }

    #[test]
    fn hcf_singleton_stops() {
        let mut token = Token::for_vms([VmId::new(3)]);
        let mut hcf = HighestCostFirst::paper_default();
        let view = LocalView {
            vm: VmId::new(3),
            server: ServerId::new(0),
            peers: vec![],
        };
        assert_eq!(hcf.next_holder(&mut token, VmId::new(3), &o(&view)), None);
    }
}
