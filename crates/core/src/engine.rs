//! The token-holder decision procedure (paper §IV, §V-B5, §V-C).
//!
//! When dom0 receives the token for a hosted VM it:
//!
//! 1. aggregates the VM's per-peer traffic (flow table, §V-B3);
//! 2. resolves peer locations and communication levels (§V-B4);
//! 3. ranks the peers' servers "from highest to lowest communication
//!    levels" and probes each for capacity (§V-B5);
//! 4. migrates iff Theorem 1 holds: `ΔC_{u→x̂} > c_m`, preferring the
//!    feasible target with the largest gain.
//!
//! [`ScoreEngine`] implements steps 3–4 over a [`LocalView`] (steps 1–2).

use score_topology::ServerId;
use score_topology::VmId;
use score_traffic::PairTraffic;
use serde::{Deserialize, Serialize};

use crate::cluster::Cluster;
use crate::cost::CostModel;
use crate::outlook::{OutlookContext, TrafficOutlook};
use crate::scratch::KernelScratch;
use crate::view::{combine_bucketed, LocalView};

/// Tunables of the S-CORE migration decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScoreConfig {
    /// Migration (overhead) cost `c_m` that a move's gain must exceed
    /// (Theorem 1). The paper's headline comparison uses 0.
    pub migration_cost: f64,
    /// Fraction of a host NIC that hosted traffic may occupy; candidate
    /// targets above this are skipped ("the next best choice with adequate
    /// bandwidth will be considered", §V-C).
    pub bandwidth_threshold: f64,
    /// Optional cap on how many candidate servers to probe per decision
    /// (capacity-probe budget). `None` probes every peer server.
    pub max_candidates: Option<usize>,
}

impl ScoreConfig {
    /// The paper's evaluation defaults: `c_m = 0`, no bandwidth headroom
    /// reserved, probe all peers.
    pub fn paper_default() -> Self {
        ScoreConfig {
            migration_cost: 0.0,
            bandwidth_threshold: 1.0,
            max_candidates: None,
        }
    }

    /// Returns a copy with the given migration cost.
    pub fn with_migration_cost(mut self, cm: f64) -> Self {
        self.migration_cost = cm;
        self
    }

    /// Returns a copy with the given bandwidth threshold.
    pub fn with_bandwidth_threshold(mut self, threshold: f64) -> Self {
        self.bandwidth_threshold = threshold;
        self
    }
}

impl Default for ScoreConfig {
    fn default() -> Self {
        ScoreConfig::paper_default()
    }
}

/// Outcome of one token-holder decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationDecision {
    /// The deciding VM.
    pub vm: VmId,
    /// Chosen target server, if the Theorem-1 condition was met.
    pub target: Option<ServerId>,
    /// `ΔC` of the chosen target under the *current* TM (0.0 when no
    /// move). This is the quantity the cost ledger absorbs — for a
    /// pre-emptive move it can be at or below `c_m` (even negative):
    /// the payoff is expected at the horizon, not now.
    pub gain: f64,
    /// `ΔC` of the chosen target under the outlook's *expected* rates —
    /// what the decision was actually ranked on. Equals `gain` for
    /// reactive (no-forecast) decisions.
    pub predicted_gain: f64,
    /// True when the move was accepted on forecasted rates alone, i.e.
    /// the current-TM gain would not have cleared Theorem 1 — the
    /// migration pre-empts a predicted shift instead of reacting to a
    /// landed one.
    pub preemptive: bool,
    /// Candidate servers evaluated.
    pub evaluated: usize,
    /// Candidates rejected by the capacity/bandwidth probe.
    pub rejected_capacity: usize,
}

impl MigrationDecision {
    /// True if the decision is to migrate.
    pub fn migrates(&self) -> bool {
        self.target.is_some()
    }

    /// The signed change this decision applied to the network-wide cost
    /// `C_A`: `−gain` for an accepted migration, `0.0` for a declined
    /// one. This is the quantity an incremental cost accumulator (e.g.
    /// [`crate::CostLedger`]) folds in instead of recomputing Eq. (2).
    pub fn applied_delta(&self) -> f64 {
        -self.gain
    }
}

/// The S-CORE decision engine: stateless combination of a cost model and a
/// configuration, applied to one token holder at a time.
#[derive(Debug, Clone, Default)]
pub struct ScoreEngine {
    cost: CostModel,
    config: ScoreConfig,
}

impl ScoreEngine {
    /// Creates an engine.
    pub fn new(cost: CostModel, config: ScoreConfig) -> Self {
        ScoreEngine { cost, config }
    }

    /// Engine with the paper's cost weights and defaults.
    pub fn paper_default() -> Self {
        ScoreEngine::new(CostModel::paper_default(), ScoreConfig::paper_default())
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ScoreConfig {
        &self.config
    }

    /// The engine's cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Makes the migration decision for the holder described by `view`,
    /// without mutating anything — the reactive (current-TM) pipeline.
    ///
    /// Candidates are the servers hosting the holder's peers, in descending
    /// communication-level order; each is capacity-probed; among the
    /// feasible ones the largest `ΔC` wins, provided it exceeds `c_m`.
    pub fn decide(&self, view: &LocalView, cluster: &Cluster) -> MigrationDecision {
        self.decide_scored(view, None, cluster)
    }

    /// Makes the migration decision for an outlook, without mutating
    /// anything — the one decision procedure every pipeline step runs.
    ///
    /// Candidates come from the outlook's *decision view* (the current
    /// view for reactive outlooks, the forecast-re-rated view
    /// otherwise), ranked "from highest to lowest communication levels"
    /// with ties towards heavier *expected* pairs. Each is
    /// capacity-probed against the live cluster; among the feasible
    /// ones the largest expected `ΔC` wins, provided it exceeds `c_m`.
    ///
    /// For a reactive outlook this is bit-for-bit the paper's §V-B5
    /// procedure. With a forecast, selection and acceptance run on
    /// expected rates while `MigrationDecision::gain` still reports the
    /// current-TM delta of the chosen move (what the cost ledger must
    /// absorb); `preemptive` flags moves only the forecast justified.
    pub fn decide_outlook(&self, outlook: &TrafficOutlook, cluster: &Cluster) -> MigrationDecision {
        let decision_view = outlook.decision_view();
        let current = outlook.has_forecast().then(|| outlook.view());
        self.decide_scored(&decision_view, current, cluster)
    }

    /// The §V-B5 core over the scoring view. `current` is `Some` when
    /// `decision_view` carries forecasted rates — it then supplies the
    /// actual current-TM gain and the pre-emptive flag; `None` is the
    /// reactive path (scoring view *is* the current view, no copies).
    ///
    /// This is the *reference* implementation: allocate the ranked
    /// candidate list, then sweep `delta_for` per candidate. The hot
    /// path is [`ScoreEngine::decide_scored_with`], which is pinned
    /// bit-identical to this by proptest.
    pub fn decide_scored(
        &self,
        decision_view: &LocalView,
        current: Option<&LocalView>,
        cluster: &Cluster,
    ) -> MigrationDecision {
        let mut candidates = decision_view.candidate_servers();
        if let Some(cap) = self.config.max_candidates {
            candidates.truncate(cap);
        }
        let mut best: Option<(ServerId, f64)> = None;
        let mut evaluated = 0;
        let mut rejected = 0;
        for target in candidates {
            evaluated += 1;
            if cluster
                .can_host(target, decision_view.vm, self.config.bandwidth_threshold)
                .is_err()
            {
                rejected += 1;
                continue;
            }
            let delta = decision_view.delta_for(target, self.cost.weights(), cluster.topo());
            if delta > self.config.migration_cost && best.is_none_or(|(_, b)| delta > b) {
                best = Some((target, delta));
            }
        }
        self.finish_decision(best, evaluated, rejected, decision_view, current, cluster)
    }

    /// The single-pass level-bucketed kernel (§V-B5, restructured).
    ///
    /// The Lemma-3 delta decomposes as `2·(before − after(x̂))`:
    /// `before = Σ_z λ(z,u)·prefix(ℓ(z,u))` is candidate-independent,
    /// and on topologies exposing [`score_topology::LevelBuckets`] the
    /// `after` term only depends on how much peer rate sits on the
    /// candidate's host, rack and zone. So one pass over the peers
    /// accumulates `before` plus per-host/rack/zone rate sums into the
    /// epoch-stamped [`KernelScratch`], and each candidate is then
    /// scored from ≤ L bucket reads — O(peers + candidates·L) instead
    /// of O(peers·candidates) — with zero heap allocations.
    ///
    /// Per-bucket sums accumulate the same peer subsequences in the
    /// same order as the decomposed `delta_for`, and both paths share
    /// `combine_bucketed`, so the scores (and therefore
    /// the decision) are bit-identical to [`ScoreEngine::decide_scored`].
    /// Topologies without buckets fall back to the `delta_for` sweep,
    /// still allocation-free.
    pub fn decide_scored_with(
        &self,
        decision_view: &LocalView,
        current: Option<&LocalView>,
        cluster: &Cluster,
        scratch: &mut KernelScratch,
    ) -> MigrationDecision {
        self.decide_scored_inner(decision_view, current, cluster, scratch, false)
    }

    /// [`ScoreEngine::decide_scored_with`] with the bucketed path forced
    /// on (when the topology has buckets at all), bypassing the
    /// candidate-count heuristic — for equivalence tests and benches.
    #[doc(hidden)]
    pub fn decide_scored_bucketed(
        &self,
        decision_view: &LocalView,
        current: Option<&LocalView>,
        cluster: &Cluster,
        scratch: &mut KernelScratch,
    ) -> MigrationDecision {
        self.decide_scored_inner(decision_view, current, cluster, scratch, true)
    }

    fn decide_scored_inner(
        &self,
        decision_view: &LocalView,
        current: Option<&LocalView>,
        cluster: &Cluster,
        scratch: &mut KernelScratch,
        force_bucketed: bool,
    ) -> MigrationDecision {
        /// Minimum candidate count for the bucketed path. Below it the
        /// per-candidate `delta_for` sweep is faster: accumulating into
        /// the (large, mostly cold) per-host/rack/zone arrays costs a
        /// cache miss or two per peer, which only amortizes once enough
        /// candidates reuse the sums. The two paths score bit-identically,
        /// so the cutoff is a pure latency knob — it can never change a
        /// decision.
        const KERNEL_MIN_CANDIDATES: usize = 12;
        let topo = cluster.topo();
        let mut candidates = std::mem::take(&mut scratch.candidates);
        decision_view.rank_candidates_into(&mut candidates);
        if let Some(cap) = self.config.max_candidates {
            candidates.truncate(cap);
        }
        let weights = self.cost.weights();
        let mut best: Option<(ServerId, f64)> = None;
        let mut evaluated = 0;
        let mut rejected = 0;
        let buckets = topo
            .level_buckets()
            .filter(|_| force_bucketed || candidates.len() >= KERNEL_MIN_CANDIDATES);
        if let Some(buckets) = buckets {
            scratch.ensure_topology(topo);
            scratch.begin();
            let mut before = 0.0;
            let mut total = 0.0;
            for p in &decision_view.peers {
                before += p.rate * weights.prefix(p.level);
                let pc = topo.coords_of(p.server);
                scratch.add_host(p.server, p.rate);
                scratch.add_rack(pc.rack, p.rate);
                scratch.add_zone(pc.zone, p.rate);
                total += p.rate;
            }
            let max_level = topo.max_level();
            for &(target, ..) in &candidates {
                evaluated += 1;
                if cluster
                    .can_host(target, decision_view.vm, self.config.bandwidth_threshold)
                    .is_err()
                {
                    rejected += 1;
                    continue;
                }
                let tc = topo.coords_of(target);
                let delta = combine_bucketed(
                    before,
                    scratch.host_sum(target),
                    scratch.rack_sum(tc.rack),
                    scratch.zone_sum(tc.zone),
                    total,
                    weights,
                    buckets,
                    max_level,
                );
                if delta > self.config.migration_cost && best.is_none_or(|(_, b)| delta > b) {
                    best = Some((target, delta));
                }
            }
        } else {
            for &(target, ..) in &candidates {
                evaluated += 1;
                if cluster
                    .can_host(target, decision_view.vm, self.config.bandwidth_threshold)
                    .is_err()
                {
                    rejected += 1;
                    continue;
                }
                let delta = decision_view.delta_for(target, weights, topo);
                if delta > self.config.migration_cost && best.is_none_or(|(_, b)| delta > b) {
                    best = Some((target, delta));
                }
            }
        }
        scratch.candidates = candidates;
        self.finish_decision(best, evaluated, rejected, decision_view, current, cluster)
    }

    /// Shared tail of both decision paths: current-TM gain, pre-emptive
    /// flag and the assembled [`MigrationDecision`].
    fn finish_decision(
        &self,
        best: Option<(ServerId, f64)>,
        evaluated: usize,
        rejected: usize,
        decision_view: &LocalView,
        current: Option<&LocalView>,
        cluster: &Cluster,
    ) -> MigrationDecision {
        let (gain, preemptive) = match (best, current) {
            (Some((target, _)), Some(view)) => {
                // The ledger needs the *actual* delta of the accepted
                // move; whether the current TM alone would have
                // justified it decides pre-emptive vs reactive.
                let actual = view.delta_for(target, self.cost.weights(), cluster.topo());
                (actual, actual <= self.config.migration_cost)
            }
            (Some((_, predicted)), None) => (predicted, false),
            (None, _) => (0.0, false),
        };
        MigrationDecision {
            vm: decision_view.vm,
            target: best.map(|(s, _)| s),
            gain,
            predicted_gain: best.map_or(0.0, |(_, g)| g),
            preemptive,
            evaluated,
            rejected_capacity: rejected,
        }
    }

    /// Observes, decides, and applies the migration if warranted. Returns
    /// the decision and the (pre-migration) local view — the reactive
    /// pipeline ([`ScoreEngine::step_outlook`] with a reactive context).
    pub fn step(
        &self,
        u: VmId,
        cluster: &mut Cluster,
        traffic: &PairTraffic,
    ) -> (MigrationDecision, LocalView) {
        let (decision, outlook) =
            self.step_outlook(u, cluster, traffic, &OutlookContext::reactive());
        (decision, outlook.into_view())
    }

    /// Observes, wraps the view into the context's outlook, decides, and
    /// applies the migration if warranted. Returns the decision and the
    /// (pre-migration) outlook.
    pub fn step_outlook(
        &self,
        u: VmId,
        cluster: &mut Cluster,
        traffic: &PairTraffic,
        ctx: &OutlookContext<'_>,
    ) -> (MigrationDecision, TrafficOutlook) {
        let view = LocalView::observe(u, cluster.allocation(), traffic, cluster.topo());
        let outlook = ctx.outlook_for(view);
        let decision = self.decide_outlook(&outlook, cluster);
        if let Some(target) = decision.target {
            cluster
                .migrate(u, target, self.config.bandwidth_threshold)
                .expect("decide_outlook() validated admission for the chosen target");
        }
        (decision, outlook)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::Allocation;
    use crate::resources::{ServerSpec, VmSpec};
    use score_topology::CanonicalTree;
    use score_traffic::PairTrafficBuilder;
    use std::sync::Arc;

    /// vm0@srv0 with peers vm1@srv1 (L1, heavy) and vm2@srv8 (L3, light).
    fn fixture() -> (Cluster, PairTraffic) {
        let topo = Arc::new(CanonicalTree::small());
        let mut b = PairTrafficBuilder::new(3);
        b.add(VmId::new(0), VmId::new(1), 10.0);
        b.add(VmId::new(0), VmId::new(2), 1.0);
        let traffic = b.build();
        let servers = [0u32, 1, 8];
        let alloc = Allocation::from_fn(3, 16, |vm| ServerId::new(servers[vm.index()]));
        let cluster = Cluster::new(
            topo,
            ServerSpec::paper_default(),
            VmSpec::paper_default(),
            &traffic,
            alloc,
        )
        .unwrap();
        (cluster, traffic)
    }

    #[test]
    fn migrates_to_best_gain_target() {
        let (mut cluster, traffic) = fixture();
        let engine = ScoreEngine::paper_default();
        let (decision, _) = engine.step(VmId::new(0), &mut cluster, &traffic);
        // Moving next to the heavy rack-mate (srv1) collapses the 10-unit
        // pair to level 0 and only raises the light pair — best move.
        assert_eq!(decision.target, Some(ServerId::new(1)));
        assert!(decision.gain > 0.0);
        assert_eq!(
            cluster.allocation().server_of(VmId::new(0)),
            ServerId::new(1)
        );
    }

    #[test]
    fn decision_counts_candidates() {
        let (cluster, traffic) = fixture();
        let engine = ScoreEngine::paper_default();
        let view = LocalView::observe(VmId::new(0), cluster.allocation(), &traffic, cluster.topo());
        let d = engine.decide(&view, &cluster);
        assert_eq!(d.evaluated, 2);
        assert_eq!(d.rejected_capacity, 0);
        assert!(d.migrates());
    }

    #[test]
    fn migration_cost_gates_moves() {
        let (cluster, traffic) = fixture();
        let view = LocalView::observe(VmId::new(0), cluster.allocation(), &traffic, cluster.topo());
        let free = ScoreEngine::paper_default();
        let gain = free.decide(&view, &cluster).gain;
        let expensive = ScoreEngine::new(
            CostModel::paper_default(),
            ScoreConfig::paper_default().with_migration_cost(gain + 1.0),
        );
        let d = expensive.decide(&view, &cluster);
        assert!(!d.migrates(), "cm above the best gain must block migration");
        assert_eq!(d.gain, 0.0);
    }

    #[test]
    fn full_target_fails_over_to_next_best() {
        let topo = Arc::new(CanonicalTree::small());
        // vm0@srv0 talks to vm1@srv1 (heavy) and vm2@srv2 (light), all in
        // rack 0. Collocating with vm1 is best but srv1 is full, so the
        // engine falls over to srv2 (collocating with the light peer while
        // keeping the heavy one at rack level).
        let mut b = PairTrafficBuilder::new(4);
        b.add(VmId::new(0), VmId::new(1), 10.0);
        b.add(VmId::new(0), VmId::new(2), 1.0);
        b.add(VmId::new(1), VmId::new(3), 1.0);
        let traffic = b.build();
        let servers = [0u32, 1, 2, 1]; // vm3 fills srv1's second slot
        let alloc = Allocation::from_fn(4, 16, |vm| ServerId::new(servers[vm.index()]));
        let spec = ServerSpec {
            vm_slots: 2,
            ..ServerSpec::paper_default()
        };
        let mut cluster =
            Cluster::new(topo, spec, VmSpec::paper_default(), &traffic, alloc).unwrap();
        let engine = ScoreEngine::paper_default();
        let (decision, _) = engine.step(VmId::new(0), &mut cluster, &traffic);
        assert_eq!(decision.rejected_capacity, 1);
        assert_eq!(decision.target, Some(ServerId::new(2)));
    }

    #[test]
    fn no_move_when_already_optimal() {
        let (mut cluster, traffic) = fixture();
        let engine = ScoreEngine::paper_default();
        // First step moves vm0 to srv1; a second decision for vm0 must not
        // bounce it back and forth.
        engine.step(VmId::new(0), &mut cluster, &traffic);
        let (second, _) = engine.step(VmId::new(0), &mut cluster, &traffic);
        assert!(!second.migrates(), "stable allocation must not oscillate");
    }

    #[test]
    fn accepted_move_reduces_total_cost() {
        let (mut cluster, traffic) = fixture();
        let engine = ScoreEngine::paper_default();
        let before = engine
            .cost_model()
            .total_cost(cluster.allocation(), &traffic, cluster.topo());
        let (decision, _) = engine.step(VmId::new(0), &mut cluster, &traffic);
        let after = engine
            .cost_model()
            .total_cost(cluster.allocation(), &traffic, cluster.topo());
        assert!(decision.migrates());
        assert!(
            (before - after - decision.gain).abs() < 1e-9,
            "Lemma 3 consistency"
        );
        assert!(after < before);
    }

    #[test]
    fn candidate_budget_respected() {
        let (cluster, traffic) = fixture();
        let engine = ScoreEngine::new(
            CostModel::paper_default(),
            ScoreConfig {
                max_candidates: Some(1),
                ..ScoreConfig::paper_default()
            },
        );
        let view = LocalView::observe(VmId::new(0), cluster.allocation(), &traffic, cluster.topo());
        let d = engine.decide(&view, &cluster);
        assert_eq!(d.evaluated, 1);
    }

    #[test]
    fn config_builders() {
        let c = ScoreConfig::paper_default()
            .with_migration_cost(5.0)
            .with_bandwidth_threshold(0.8);
        assert_eq!(c.migration_cost, 5.0);
        assert_eq!(c.bandwidth_threshold, 0.8);
        assert_eq!(ScoreConfig::default(), ScoreConfig::paper_default());
    }
}
