//! The token ring: driving S-CORE over a whole VM population.
//!
//! One *iteration* passes the token through `|V|` holders (for round-robin
//! this is exactly one sweep over the VM ids). Fig. 2 of the paper plots
//! the ratio of migrated VMs in each of 5 consecutive iterations and shows
//! it plummeting after the second one — [`TokenRing::run_iteration`]
//! produces exactly that statistic.

use score_obs::{Counter, DecisionTrace, Histogram, ObsEvent, ObsHandle};
use score_topology::VmId;
use score_traffic::PairTraffic;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

use crate::cluster::Cluster;
use crate::engine::{MigrationDecision, ScoreEngine};
use crate::ledger::CostLedger;
use crate::outlook::{OutlookContext, TrafficOutlook};
use crate::policy::TokenPolicy;
use crate::scratch::DecisionScratch;
use crate::token::Token;

/// Outcome of one token-holder step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepOutcome {
    /// The VM that held the token.
    pub holder: VmId,
    /// The server hosting the holder *before* any migration this step.
    pub source: score_topology::ServerId,
    /// Its migration decision.
    pub decision: MigrationDecision,
    /// The next token holder (`None` terminates the ring).
    pub next: Option<VmId>,
}

impl StepOutcome {
    /// The signed change this step applied to the network-wide cost
    /// `C_A` (see [`MigrationDecision::applied_delta`]).
    pub fn applied_delta(&self) -> f64 {
        self.decision.applied_delta()
    }
}

/// Aggregate statistics of one iteration (`|V|` token holds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationStats {
    /// Token holds performed.
    pub steps: usize,
    /// Number of migrations performed.
    pub migrations: usize,
    /// Sum of the Lemma-3 gains of all performed migrations.
    pub total_gain: f64,
}

impl IterationStats {
    /// Migrated-VM ratio: migrations / steps (the Fig. 2 metric).
    pub fn migration_ratio(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.migrations as f64 / self.steps as f64
        }
    }
}

/// A running S-CORE instance: engine + token + policy + current holder.
///
/// The policy is held as a `Box<dyn TokenPolicy>` so that it can be
/// selected at runtime (from a serialized `Scenario`, a CLI flag, a
/// config file) instead of being baked into the ring's type — the
/// foundation of the `Scenario`/`Session` experiment API.
#[derive(Debug)]
pub struct TokenRing {
    engine: ScoreEngine,
    policy: Box<dyn TokenPolicy>,
    token: Token,
    holder: Option<VmId>,
    obs: Option<RingObs>,
    /// Per-ring decision buffers: a ring is single-threaded, so owning
    /// the scratch here gives `Session`, the daemon's tenant engines and
    /// every `MatrixRunner` cell a private scratch for free.
    scratch: DecisionScratch,
}

/// Pre-resolved instruments for the decision hot path, built once at
/// [`TokenRing::attach_obs`] time so a step costs a few relaxed atomic adds.
/// All series carry a `policy="<name>"` label.
#[derive(Debug)]
struct RingObs {
    handle: ObsHandle,
    /// Event-clock time published by the driver (see
    /// [`TokenRing::set_obs_clock`]); journal entries are stamped with it.
    clock_s: f64,
    /// `score_decision_latency_ns`: wall time of one token-holder step.
    decision_ns: Arc<Histogram>,
    /// `score_token_hops_total`: token holds performed.
    hops: Arc<Counter>,
    /// `score_migrations_total{kind="reactive"|"preemptive"}`.
    migrations_reactive: Arc<Counter>,
    migrations_preemptive: Arc<Counter>,
}

impl RingObs {
    fn build(handle: &ObsHandle, policy: &'static str) -> Option<Self> {
        if !handle.is_enabled() {
            return None;
        }
        let handle = handle.with_label("policy", policy);
        Some(RingObs {
            decision_ns: handle.histogram("score_decision_latency_ns")?,
            hops: handle.counter("score_token_hops_total")?,
            migrations_reactive: handle.counter("score_migrations_total{kind=\"reactive\"}")?,
            migrations_preemptive: handle.counter("score_migrations_total{kind=\"preemptive\"}")?,
            clock_s: 0.0,
            handle,
        })
    }
}

impl TokenRing {
    /// Creates a ring over VMs `0..num_vms`, starting at the lowest id
    /// ("starting from the VM with lowest ID", §V-A1).
    ///
    /// Accepts any policy value (it is boxed internally); pass an
    /// already-boxed `Box<dyn TokenPolicy>` via [`TokenRing::with_boxed`]
    /// to avoid double indirection.
    pub fn new(engine: ScoreEngine, policy: impl TokenPolicy + 'static, num_vms: u32) -> Self {
        TokenRing::with_boxed(engine, Box::new(policy), num_vms)
    }

    /// Creates a ring from an already-boxed policy (runtime selection).
    pub fn with_boxed(engine: ScoreEngine, mut policy: Box<dyn TokenPolicy>, num_vms: u32) -> Self {
        let token = Token::for_vms((0..num_vms).map(VmId::new));
        let holder = token.first();
        // One-time index builds happen here, not inside the first hold.
        policy.prepare(&token);
        TokenRing {
            engine,
            policy,
            token,
            holder,
            obs: None,
            scratch: DecisionScratch::new(),
        }
    }

    /// Attaches observability: decision latency, token hops and migration
    /// counters (labelled by policy name) plus a journal entry per hold.
    ///
    /// Purely a side channel — an attached ring takes bit-identical
    /// decisions to a bare one. Passing a disabled handle detaches.
    pub fn attach_obs(&mut self, handle: &ObsHandle) {
        self.obs = RingObs::build(handle, self.policy.name());
    }

    /// Publishes the driver's event-clock time (seconds) so journal entries
    /// carry simulation time rather than wall time. No-op when detached.
    pub fn set_obs_clock(&mut self, at_s: f64) {
        if let Some(o) = &mut self.obs {
            o.clock_s = at_s;
        }
    }

    /// The current token holder.
    pub fn holder(&self) -> Option<VmId> {
        self.holder
    }

    /// The token state.
    pub fn token(&self) -> &Token {
        &self.token
    }

    /// The policy in use.
    pub fn policy(&self) -> &dyn TokenPolicy {
        self.policy.as_ref()
    }

    /// The engine in use.
    pub fn engine(&self) -> &ScoreEngine {
        &self.engine
    }

    /// Adds a VM to the ring (elastic arrival): it joins the token at
    /// level 0 and will receive the token in due course. Returns `false`
    /// if it was already a member.
    ///
    /// In the paper, "VM ID allocation is handled by a centralized VM
    /// instance placement manager" — this is the ring-side effect of such
    /// an arrival.
    pub fn add_vm(&mut self, vm: VmId) -> bool {
        let added = self.token.add_vm(vm);
        if self.holder.is_none() {
            self.holder = Some(vm);
        }
        added
    }

    /// Removes a VM from the ring (departure/termination). If the departing
    /// VM currently holds the token, the token passes to its round-robin
    /// successor. Returns `false` if it was not a member.
    pub fn remove_vm(&mut self, vm: VmId) -> bool {
        if !self.token.contains(vm) {
            return false;
        }
        if self.holder == Some(vm) {
            let successor = self.token.next_after(vm).filter(|&z| z != vm);
            self.holder = successor;
        }
        self.token.remove_vm(vm);
        // Re-validate against the shrunk token (defensive: the successor
        // could only be stale if the token mutated concurrently).
        if let Some(h) = self.holder {
            if !self.token.contains(h) {
                self.holder = self.token.first();
            }
        }
        true
    }

    /// Removes a batch of crashed VMs from the ring at once — the
    /// host-crash path, where every VM of a dead server vanishes in the
    /// same instant (no departure protocol, no handover).
    ///
    /// If the current token holder is among the dead, the token passes
    /// to its **deterministic survivor**: the first VM after the dead
    /// holder in token order that is not itself dead. The election is a
    /// pure function of the token order and the *set* of dead VMs —
    /// callers may list the victims in any order (they are normalised
    /// internally), so concurrent fault reporters converge on the same
    /// successor no matter how their batches interleave.
    ///
    /// When no survivor exists the ring degrades gracefully: the holder
    /// becomes `None`, [`TokenRing::step`] returns `None`, and
    /// iteration loops terminate instead of spinning on a dead
    /// membership. A later [`TokenRing::add_vm`] restarts the ring.
    ///
    /// Returns the post-failure holder.
    pub fn fail_vms(&mut self, dead: &[VmId]) -> Option<VmId> {
        let mut dead_sorted: Vec<VmId> = dead
            .iter()
            .copied()
            .filter(|&vm| self.token.contains(vm))
            .collect();
        dead_sorted.sort_unstable();
        dead_sorted.dedup();
        if dead_sorted.is_empty() {
            return self.holder;
        }
        let is_dead = |vm: VmId| dead_sorted.binary_search(&vm).is_ok();
        if let Some(h) = self.holder {
            if is_dead(h) {
                // Walk the ring from the dead holder, skipping dead VMs;
                // bounded by the membership so a fully-dead ring yields
                // `None` instead of cycling.
                let mut successor = None;
                let mut probe = h;
                for _ in 0..self.token.len() {
                    match self.token.next_after(probe) {
                        Some(n) if n == h => break,
                        Some(n) if is_dead(n) => probe = n,
                        Some(n) => {
                            successor = Some(n);
                            break;
                        }
                        None => break,
                    }
                }
                self.holder = successor;
            }
        }
        for &vm in &dead_sorted {
            self.token.remove_vm(vm);
        }
        // Defensive re-validation against the shrunk token (mirrors
        // `remove_vm`).
        if let Some(h) = self.holder {
            if !self.token.contains(h) {
                self.holder = self.token.first();
            }
        }
        self.holder
    }

    /// Regenerates a lost token (failure recovery).
    ///
    /// The token is a single point of loss in any token-passing protocol;
    /// when its holder crashes or the message is dropped, the VM instance
    /// placement manager (which owns ID allocation, §V-A) can mint a fresh
    /// token over the known membership. All level entries restart at zero
    /// and policy-internal state is discarded — the distributed state is
    /// soft and rebuilds within one iteration.
    pub fn regenerate_token(&mut self) {
        let members: Vec<VmId> = self.token.entries().iter().map(|e| e.id).collect();
        self.token = Token::for_vms(members);
        self.policy.reset();
        self.policy.prepare(&self.token);
        self.holder = self.token.first();
    }

    /// Performs one token-holder step: decide, migrate if warranted, pass
    /// the token. Returns `None` when no holder remains.
    ///
    /// This is the reactive pipeline — [`TokenRing::step_outlook`] with
    /// a no-forecast context.
    pub fn step(&mut self, cluster: &mut Cluster, traffic: &PairTraffic) -> Option<StepOutcome> {
        self.step_outlook(cluster, traffic, &OutlookContext::reactive())
    }

    /// Performs one token-holder step with the given outlook context:
    /// both the migration decision and the next-holder choice consume a
    /// `TrafficOutlook` built by `ctx` (the holder's local view plus,
    /// when the context forecasts, the predicted per-peer rates at the
    /// lookahead horizon).
    ///
    /// With [`OutlookContext::reactive`] this reproduces the paper
    /// pipeline bit for bit; the context only ever *reads* its
    /// forecaster, so stepping with one cannot dirty any ledger.
    pub fn step_outlook(
        &mut self,
        cluster: &mut Cluster,
        traffic: &PairTraffic,
        ctx: &OutlookContext<'_>,
    ) -> Option<StepOutcome> {
        let holder = self.holder?;
        let sw = self.obs.as_ref().map(|o| o.handle.stopwatch());
        let scratch = &mut self.scratch;
        scratch
            .view
            .observe_into(holder, cluster.allocation(), traffic, cluster.topo());
        let source = scratch.view.server;
        // Decide via the single-pass bucketed kernel on scratch buffers —
        // bit-identical to `ScoreEngine::step_outlook`, without its
        // allocations. A forecasting context re-rates the scoring view to
        // the peak-demand envelope first (`TrafficOutlook::expected_rate`).
        let decision = if ctx.predict_into(&scratch.view, &mut scratch.predicted) {
            for (slot, p) in scratch.predicted.iter_mut().zip(&scratch.view.peers) {
                *slot = slot.max(p.rate);
            }
            scratch
                .decision_view
                .assign_with_rates(&scratch.view, &scratch.predicted);
            self.engine.decide_scored_with(
                &scratch.decision_view,
                Some(&scratch.view),
                cluster,
                &mut scratch.kernel,
            )
        } else {
            self.engine
                .decide_scored_with(&scratch.view, None, cluster, &mut scratch.kernel)
        };
        if let Some(target) = decision.target {
            cluster
                .migrate(holder, target, self.engine.config().bandwidth_threshold)
                .expect("the kernel validated admission for the chosen target");
        }
        // The policy sees the *post-migration* state: if the holder moved,
        // its levels (and those of its peers) changed — otherwise the
        // pre-migration view is still exact and is reused as-is. The view
        // (and any predicted-rate slab) is lent to the policy inside an
        // owned outlook and reclaimed from its parts afterwards.
        let migrated = decision.migrates();
        let post_view = if migrated {
            scratch
                .post_view
                .observe_into(holder, cluster.allocation(), traffic, cluster.topo());
            std::mem::take(&mut scratch.post_view)
        } else {
            std::mem::take(&mut scratch.view)
        };
        let post_outlook = if ctx.predict_into(&post_view, &mut scratch.predicted) {
            let predicted = std::mem::take(&mut scratch.predicted);
            TrafficOutlook::with_forecast(post_view, predicted, ctx.horizon_s())
        } else {
            TrafficOutlook::reactive(post_view)
        };
        let next = self
            .policy
            .next_holder(&mut self.token, holder, &post_outlook);
        self.holder = next;
        let (post_view, predicted) = post_outlook.into_parts();
        if migrated {
            scratch.post_view = post_view;
        } else {
            scratch.view = post_view;
        }
        if let Some(predicted) = predicted {
            scratch.predicted = predicted;
        }
        if let Some(o) = &self.obs {
            o.hops.inc();
            if let Some(ns) = sw.and_then(|s| s.elapsed_ns()) {
                o.decision_ns.record(ns);
            }
            if decision.migrates() {
                if decision.preemptive {
                    o.migrations_preemptive.inc();
                } else {
                    o.migrations_reactive.inc();
                }
            }
            o.handle.journal_push(ObsEvent::Decision(DecisionTrace {
                at_s: o.clock_s,
                holder: holder.get() as u64,
                candidates: decision.evaluated as u32,
                accepted: decision.migrates(),
                gain: decision.gain,
                ledger_delta: decision.applied_delta(),
                preemptive: decision.preemptive,
            }));
        }
        Some(StepOutcome {
            holder,
            source,
            decision,
            next,
        })
    }

    /// Like [`TokenRing::step`], but folds the step's Lemma-3 delta into
    /// `ledger` so the network-wide cost stays observable in `O(1)`
    /// without any Eq.-(2) recomputation.
    pub fn step_ledgered(
        &mut self,
        cluster: &mut Cluster,
        traffic: &PairTraffic,
        ledger: &mut CostLedger,
    ) -> Option<StepOutcome> {
        self.step_ledgered_outlook(cluster, traffic, ledger, &OutlookContext::reactive())
    }

    /// Like [`TokenRing::step_outlook`], but folds the step's applied
    /// cost delta into `ledger`. For a pre-emptive migration the
    /// decision's `gain` is its *current-TM* delta (possibly ≤ 0), so
    /// the ledger stays exact even when the move only pays off at the
    /// forecast horizon.
    pub fn step_ledgered_outlook(
        &mut self,
        cluster: &mut Cluster,
        traffic: &PairTraffic,
        ledger: &mut CostLedger,
        ctx: &OutlookContext<'_>,
    ) -> Option<StepOutcome> {
        let outcome = self.step_outlook(cluster, traffic, ctx)?;
        if let Some(target) = outcome.decision.target {
            // Sharded ledgers re-attribute the moved VM's pair costs to
            // the racks on the migration's path — O(degree), a no-op
            // when sharding is off. The authoritative total still
            // absorbs the engine's own Lemma-3 gain below, unchanged.
            ledger.apply_migration_shards(
                outcome.holder,
                outcome.source,
                target,
                cluster.allocation(),
                traffic,
                cluster.topo(),
            );
        }
        ledger.apply_gain(outcome.decision.gain);
        Some(outcome)
    }

    /// Runs `|V|` steps — one iteration in the paper's sense.
    pub fn run_iteration(
        &mut self,
        cluster: &mut Cluster,
        traffic: &PairTraffic,
    ) -> IterationStats {
        let n = self.token.len();
        let mut stats = IterationStats {
            steps: 0,
            migrations: 0,
            total_gain: 0.0,
        };
        for _ in 0..n {
            let Some(outcome) = self.step(cluster, traffic) else {
                break;
            };
            stats.steps += 1;
            if outcome.decision.migrates() {
                stats.migrations += 1;
                stats.total_gain += outcome.decision.gain;
            }
        }
        stats
    }

    /// Runs `iterations` iterations, returning per-iteration statistics
    /// (the Fig. 2 series).
    pub fn run_iterations(
        &mut self,
        iterations: usize,
        cluster: &mut Cluster,
        traffic: &PairTraffic,
    ) -> Vec<IterationStats> {
        (0..iterations)
            .map(|_| self.run_iteration(cluster, traffic))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::Allocation;
    use crate::cost::CostModel;
    use crate::policy::{HighestLevelFirst, RoundRobin};
    use crate::resources::{ServerSpec, VmSpec};
    use score_topology::{CanonicalTree, ServerId};
    use score_traffic::WorkloadConfig;
    use std::sync::Arc;

    fn fixture(seed: u64) -> (Cluster, PairTraffic) {
        let topo = Arc::new(CanonicalTree::small()); // 16 servers
        let traffic = WorkloadConfig::new(32, seed).generate();
        // Spread VMs round-robin across servers (a traffic-agnostic initial
        // placement).
        let alloc = Allocation::from_fn(32, 16, |vm| ServerId::new(vm.get() % 16));
        let cluster = Cluster::new(
            topo,
            ServerSpec::paper_default(),
            VmSpec::paper_default(),
            &traffic,
            alloc,
        )
        .unwrap();
        (cluster, traffic)
    }

    #[test]
    fn iterations_reduce_cost_monotonically() {
        let (mut cluster, traffic) = fixture(1);
        let mut ring = TokenRing::new(ScoreEngine::paper_default(), RoundRobin::new(), 32);
        let model = ring.engine().cost_model().clone();
        let mut last = model.total_cost(cluster.allocation(), &traffic, cluster.topo());
        let initial = last;
        for _ in 0..4 {
            ring.run_iteration(&mut cluster, &traffic);
            let now = model.total_cost(cluster.allocation(), &traffic, cluster.topo());
            assert!(now <= last + 1e-9, "cost must never increase");
            last = now;
        }
        assert!(
            last < initial,
            "S-CORE should find improvements on a random placement"
        );
    }

    #[test]
    fn migration_ratio_plummets() {
        // The Fig. 2 property: after the first couple of iterations almost
        // nobody migrates any more.
        let (mut cluster, traffic) = fixture(2);
        let mut ring = TokenRing::new(ScoreEngine::paper_default(), RoundRobin::new(), 32);
        let stats = ring.run_iterations(5, &mut cluster, &traffic);
        assert_eq!(stats.len(), 5);
        assert!(stats[0].migrations >= 1);
        let late: usize = stats[3].migrations + stats[4].migrations;
        assert!(
            late <= stats[0].migrations,
            "late iterations ({late}) should migrate no more than the first ({})",
            stats[0].migrations
        );
        assert_eq!(stats[4].migrations, 0, "converged by the fifth iteration");
    }

    #[test]
    fn hlf_converges_too() {
        let (mut cluster, traffic) = fixture(3);
        let mut ring = TokenRing::new(ScoreEngine::paper_default(), HighestLevelFirst::new(), 32);
        let model = ring.engine().cost_model().clone();
        let initial = model.total_cost(cluster.allocation(), &traffic, cluster.topo());
        let stats = ring.run_iterations(5, &mut cluster, &traffic);
        let final_cost = model.total_cost(cluster.allocation(), &traffic, cluster.topo());
        assert!(final_cost < initial);
        assert!(stats[4].migration_ratio() < 0.1);
    }

    #[test]
    fn gains_match_cost_drop() {
        let (mut cluster, traffic) = fixture(4);
        let mut ring = TokenRing::new(ScoreEngine::paper_default(), RoundRobin::new(), 32);
        let model = ring.engine().cost_model().clone();
        let before = model.total_cost(cluster.allocation(), &traffic, cluster.topo());
        let stats = ring.run_iteration(&mut cluster, &traffic);
        let after = model.total_cost(cluster.allocation(), &traffic, cluster.topo());
        assert!(
            (before - after - stats.total_gain).abs() < 1e-6 * before.max(1.0),
            "sum of Lemma-3 gains must equal the total cost drop"
        );
    }

    #[test]
    fn step_outcome_chain() {
        let (mut cluster, traffic) = fixture(5);
        let mut ring = TokenRing::new(ScoreEngine::paper_default(), RoundRobin::new(), 32);
        let o1 = ring.step(&mut cluster, &traffic).unwrap();
        assert_eq!(o1.holder, VmId::new(0));
        assert_eq!(o1.next, Some(VmId::new(1)));
        let o2 = ring.step(&mut cluster, &traffic).unwrap();
        assert_eq!(o2.holder, VmId::new(1));
    }

    #[test]
    fn ledgered_steps_track_full_recomputation() {
        let (mut cluster, traffic) = fixture(10);
        let mut ring = TokenRing::new(ScoreEngine::paper_default(), RoundRobin::new(), 32);
        let model = ring.engine().cost_model().clone();
        let mut ledger = crate::CostLedger::new(
            model.clone(),
            cluster.allocation(),
            &traffic,
            cluster.topo(),
        );
        for _ in 0..64 {
            let Some(outcome) = ring.step_ledgered(&mut cluster, &traffic, &mut ledger) else {
                break;
            };
            assert_eq!(outcome.applied_delta(), -outcome.decision.gain);
        }
        let fresh = model.total_cost(cluster.allocation(), &traffic, cluster.topo());
        assert!(
            (ledger.current() - fresh).abs() <= 1e-9 * fresh.max(1.0),
            "ledger {} vs fresh {}",
            ledger.current(),
            fresh
        );
    }

    #[test]
    fn empty_ring_terminates() {
        let mut ring = TokenRing::new(ScoreEngine::paper_default(), RoundRobin::new(), 0);
        let (mut cluster, traffic) = fixture(6);
        assert!(ring.holder().is_none());
        assert!(ring.step(&mut cluster, &traffic).is_none());
        let stats = ring.run_iteration(&mut cluster, &traffic);
        assert_eq!(stats.steps, 0);
        assert_eq!(stats.migration_ratio(), 0.0);
    }

    #[test]
    fn churn_add_and_remove_vms_mid_run() {
        let (mut cluster, traffic) = fixture(8);
        let mut ring = TokenRing::new(ScoreEngine::paper_default(), RoundRobin::new(), 32);
        // Run half an iteration, then remove the current holder and a
        // bystander; the ring must keep functioning.
        for _ in 0..16 {
            ring.step(&mut cluster, &traffic);
        }
        let holder = ring.holder().unwrap();
        assert!(ring.remove_vm(holder));
        assert!(ring.remove_vm(VmId::new(0)));
        assert!(!ring.remove_vm(VmId::new(0)), "double removal is a no-op");
        assert_ne!(ring.holder(), Some(holder));
        assert_eq!(ring.token().len(), 30);
        // Re-adding restores membership and the ring still converges.
        assert!(ring.add_vm(VmId::new(0)));
        assert!(!ring.add_vm(VmId::new(0)));
        let stats = ring.run_iteration(&mut cluster, &traffic);
        assert_eq!(stats.steps, 31);
        assert!(cluster.allocation().is_consistent());
    }

    #[test]
    fn token_loss_recovery_preserves_convergence() {
        // Failure injection: lose the token twice mid-run; the regenerated
        // soft state must not prevent convergence or corrupt the cluster.
        let (mut cluster, traffic) = fixture(12);
        let model = CostModel::paper_default();
        let initial = model.total_cost(cluster.allocation(), &traffic, cluster.topo());
        let mut ring = TokenRing::new(ScoreEngine::paper_default(), HighestLevelFirst::new(), 32);
        for burst in 0..3 {
            for _ in 0..20 {
                ring.step(&mut cluster, &traffic);
            }
            if burst < 2 {
                ring.regenerate_token();
                assert_eq!(ring.holder(), Some(VmId::new(0)));
                assert!(ring
                    .token()
                    .entries()
                    .iter()
                    .all(|e| e.level == score_topology::Level::ZERO));
            }
        }
        ring.run_iterations(4, &mut cluster, &traffic);
        let final_cost = model.total_cost(cluster.allocation(), &traffic, cluster.topo());
        assert!(final_cost < initial);
        assert!(cluster.allocation().is_consistent());

        // And the regenerated ring converges to the same cost as an
        // undisturbed one (the allocation state is what matters; token
        // state is soft).
        let (mut cluster2, _) = fixture(12);
        let mut ring2 = TokenRing::new(ScoreEngine::paper_default(), HighestLevelFirst::new(), 32);
        ring2.run_iterations(6, &mut cluster2, &traffic);
        let undisturbed = model.total_cost(cluster2.allocation(), &traffic, cluster2.topo());
        assert!(
            final_cost <= undisturbed * 1.5 + 1e-9,
            "token loss must not wreck convergence: {final_cost} vs {undisturbed}"
        );
    }

    #[test]
    fn removing_last_vm_empties_ring() {
        let (mut cluster, traffic) = fixture(9);
        let mut ring = TokenRing::new(ScoreEngine::paper_default(), RoundRobin::new(), 1);
        assert_eq!(ring.holder(), Some(VmId::new(0)));
        assert!(ring.remove_vm(VmId::new(0)));
        assert!(ring.holder().is_none());
        assert!(ring.step(&mut cluster, &traffic).is_none());
        // An arrival restarts the ring.
        assert!(ring.add_vm(VmId::new(0)));
        assert_eq!(ring.holder(), Some(VmId::new(0)));
    }

    #[test]
    fn capacity_is_never_violated() {
        let (mut cluster, traffic) = fixture(7);
        let slots = cluster.server_spec().vm_slots as usize;
        let mut ring = TokenRing::new(ScoreEngine::paper_default(), RoundRobin::new(), 32);
        ring.run_iterations(3, &mut cluster, &traffic);
        for s in cluster.topo().servers() {
            assert!(cluster.allocation().occupancy(s) <= slots);
        }
        assert!(cluster.allocation().is_consistent());
    }
}
