//! Server-side resource capacities and admission control.
//!
//! S-CORE "adheres to server-side resource capacity boundaries" (§I): a VM
//! migrates only when Theorem 1 holds *and* "the target host has sufficient
//! system resources (e.g., residual CPU, memory and host bandwidth)
//! available" (§VI). The capacity probe of §V-B5 reports "how many more VMs
//! it is able to host and the amount of RAM it has available (to account
//! for VMs with heterogeneous RAM requirements)".

use serde::{Deserialize, Serialize};
use std::fmt;

/// Resource demand of one VM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmSpec {
    /// RAM demand in MiB.
    pub ram_mb: u32,
    /// CPU demand in (possibly fractional) cores.
    pub cpu_cores: f64,
}

impl VmSpec {
    /// The paper's testbed VM: 196 MB RAM, light CPU.
    pub fn paper_default() -> Self {
        VmSpec {
            ram_mb: 196,
            cpu_cores: 0.25,
        }
    }
}

impl Default for VmSpec {
    fn default() -> Self {
        VmSpec::paper_default()
    }
}

/// Capacity of one physical server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    /// Maximum number of VMs the hypervisor will host — "each host can
    /// accommodate up to 16 VMs to model a typical DC server's capacity"
    /// (§VI).
    pub vm_slots: u32,
    /// Total RAM in MiB.
    pub ram_mb: u32,
    /// Total CPU cores.
    pub cpu_cores: f64,
    /// NIC capacity in bits per second.
    pub nic_bps: f64,
}

impl ServerSpec {
    /// The paper's simulated server: 16 VM slots, enough RAM for them, a
    /// 1 GbE NIC.
    pub fn paper_default() -> Self {
        ServerSpec {
            vm_slots: 16,
            ram_mb: 16 * 256,
            cpu_cores: 8.0,
            nic_bps: 1e9,
        }
    }
}

impl Default for ServerSpec {
    fn default() -> Self {
        ServerSpec::paper_default()
    }
}

/// Why a server refused to admit a VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionError {
    /// All VM slots are occupied.
    NoSlot,
    /// Not enough residual RAM.
    Ram,
    /// Not enough residual CPU.
    Cpu,
    /// Admitting the VM would push NIC load over the bandwidth threshold
    /// (§V-C: "if the target host does not have sufficient bandwidth to
    /// accommodate the requesting VM, the next best choice with adequate
    /// bandwidth will be considered").
    Bandwidth,
    /// The host is marked down (crashed) — it admits nothing until the
    /// cluster is rebuilt; evacuations only ever move VMs *off* it.
    HostDown,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::NoSlot => write!(f, "no free VM slot"),
            AdmissionError::Ram => write!(f, "insufficient residual RAM"),
            AdmissionError::Cpu => write!(f, "insufficient residual CPU"),
            AdmissionError::Bandwidth => write!(f, "insufficient residual host bandwidth"),
            AdmissionError::HostDown => write!(f, "host is down"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Running resource usage of one server.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ServerUsage {
    /// Occupied VM slots.
    pub slots: u32,
    /// Committed RAM in MiB.
    pub ram_mb: u32,
    /// Committed CPU cores.
    pub cpu_cores: f64,
    /// Estimated NIC load in bits per second (sum of hosted VMs' traffic
    /// demand; intra-host pairs are conservatively counted too).
    pub nic_bps: f64,
}

impl ServerUsage {
    /// Checks whether a VM with demand `vm` and NIC demand `vm_nic_bps`
    /// fits under `spec` with the given bandwidth threshold (fraction of
    /// NIC capacity that hosted traffic may occupy).
    ///
    /// # Errors
    ///
    /// Returns the first violated resource as an [`AdmissionError`].
    pub fn admission_check(
        &self,
        spec: &ServerSpec,
        vm: &VmSpec,
        vm_nic_bps: f64,
        bandwidth_threshold: f64,
    ) -> Result<(), AdmissionError> {
        if self.slots + 1 > spec.vm_slots {
            return Err(AdmissionError::NoSlot);
        }
        if self.ram_mb + vm.ram_mb > spec.ram_mb {
            return Err(AdmissionError::Ram);
        }
        if self.cpu_cores + vm.cpu_cores > spec.cpu_cores + 1e-9 {
            return Err(AdmissionError::Cpu);
        }
        if self.nic_bps + vm_nic_bps > bandwidth_threshold * spec.nic_bps + 1e-9 {
            return Err(AdmissionError::Bandwidth);
        }
        Ok(())
    }

    /// Adds a VM's demand.
    pub fn admit(&mut self, vm: &VmSpec, vm_nic_bps: f64) {
        self.slots += 1;
        self.ram_mb += vm.ram_mb;
        self.cpu_cores += vm.cpu_cores;
        self.nic_bps += vm_nic_bps;
    }

    /// Removes a VM's demand.
    ///
    /// # Panics
    ///
    /// Panics if the usage would go negative (eviction without admission).
    pub fn evict(&mut self, vm: &VmSpec, vm_nic_bps: f64) {
        assert!(self.slots >= 1, "evicting from an empty server");
        assert!(self.ram_mb >= vm.ram_mb, "RAM usage underflow");
        self.slots -= 1;
        self.ram_mb -= vm.ram_mb;
        self.cpu_cores = (self.cpu_cores - vm.cpu_cores).max(0.0);
        self.nic_bps = (self.nic_bps - vm_nic_bps).max(0.0);
    }
}

/// The §V-B5 capacity response: "how many more VMs it is able to host and
/// the amount of RAM it has available".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapacityReport {
    /// Free VM slots.
    pub free_slots: u32,
    /// Free RAM in MiB.
    pub free_ram_mb: u32,
}

impl CapacityReport {
    /// Builds the report from a server's spec and current usage.
    pub fn from_usage(spec: &ServerSpec, usage: &ServerUsage) -> Self {
        CapacityReport {
            free_slots: spec.vm_slots.saturating_sub(usage.slots),
            free_ram_mb: spec.ram_mb.saturating_sub(usage.ram_mb),
        }
    }

    /// Whether a VM of the given spec could be hosted (slot + RAM only —
    /// the coarse filter a capacity response enables before the detailed
    /// admission check).
    pub fn can_host(&self, vm: &VmSpec) -> bool {
        self.free_slots >= 1 && self.free_ram_mb >= vm.ram_mb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let s = ServerSpec::paper_default();
        assert_eq!(s.vm_slots, 16);
        let v = VmSpec::paper_default();
        assert_eq!(v.ram_mb, 196);
        assert_eq!(ServerSpec::default(), s);
        assert_eq!(VmSpec::default(), v);
    }

    #[test]
    fn admission_slot_limit() {
        let spec = ServerSpec {
            vm_slots: 2,
            ram_mb: 10_000,
            cpu_cores: 32.0,
            nic_bps: 1e9,
        };
        let vm = VmSpec::paper_default();
        let mut usage = ServerUsage::default();
        assert!(usage.admission_check(&spec, &vm, 0.0, 1.0).is_ok());
        usage.admit(&vm, 0.0);
        usage.admit(&vm, 0.0);
        assert_eq!(
            usage.admission_check(&spec, &vm, 0.0, 1.0),
            Err(AdmissionError::NoSlot)
        );
    }

    #[test]
    fn admission_ram_limit() {
        let spec = ServerSpec {
            vm_slots: 16,
            ram_mb: 300,
            cpu_cores: 32.0,
            nic_bps: 1e9,
        };
        let vm = VmSpec {
            ram_mb: 196,
            cpu_cores: 0.1,
        };
        let mut usage = ServerUsage::default();
        usage.admit(&vm, 0.0);
        assert_eq!(
            usage.admission_check(&spec, &vm, 0.0, 1.0),
            Err(AdmissionError::Ram)
        );
    }

    #[test]
    fn admission_cpu_limit() {
        let spec = ServerSpec {
            vm_slots: 16,
            ram_mb: 10_000,
            cpu_cores: 1.0,
            nic_bps: 1e9,
        };
        let vm = VmSpec {
            ram_mb: 10,
            cpu_cores: 0.6,
        };
        let mut usage = ServerUsage::default();
        usage.admit(&vm, 0.0);
        assert_eq!(
            usage.admission_check(&spec, &vm, 0.0, 1.0),
            Err(AdmissionError::Cpu)
        );
    }

    #[test]
    fn admission_bandwidth_threshold() {
        let spec = ServerSpec::paper_default();
        let vm = VmSpec::paper_default();
        let mut usage = ServerUsage::default();
        usage.admit(&vm, 0.7e9);
        // threshold 0.9: 0.7 + 0.3 > 0.9 → rejected
        assert_eq!(
            usage.admission_check(&spec, &vm, 0.3e9, 0.9),
            Err(AdmissionError::Bandwidth)
        );
        // threshold 1.0: exactly fits
        assert!(usage.admission_check(&spec, &vm, 0.3e9, 1.0).is_ok());
    }

    #[test]
    fn admit_evict_roundtrip() {
        let vm = VmSpec {
            ram_mb: 100,
            cpu_cores: 0.5,
        };
        let mut usage = ServerUsage::default();
        usage.admit(&vm, 1e6);
        usage.admit(&vm, 2e6);
        usage.evict(&vm, 1e6);
        assert_eq!(usage.slots, 1);
        assert_eq!(usage.ram_mb, 100);
        assert!((usage.nic_bps - 2e6).abs() < 1e-6);
        usage.evict(&vm, 2e6);
        assert_eq!(usage, ServerUsage::default());
    }

    #[test]
    #[should_panic(expected = "empty server")]
    fn evict_from_empty_panics() {
        let mut usage = ServerUsage::default();
        usage.evict(&VmSpec::paper_default(), 0.0);
    }

    #[test]
    fn capacity_report() {
        let spec = ServerSpec::paper_default();
        let mut usage = ServerUsage::default();
        let vm = VmSpec::paper_default();
        for _ in 0..15 {
            usage.admit(&vm, 0.0);
        }
        let report = CapacityReport::from_usage(&spec, &usage);
        assert_eq!(report.free_slots, 1);
        assert_eq!(report.free_ram_mb, 16 * 256 - 15 * 196);
        assert!(report.can_host(&vm));
        usage.admit(&vm, 0.0);
        let report = CapacityReport::from_usage(&spec, &usage);
        assert!(!report.can_host(&vm));
    }

    #[test]
    fn admission_error_display() {
        assert_eq!(AdmissionError::NoSlot.to_string(), "no free VM slot");
        assert!(AdmissionError::Bandwidth.to_string().contains("bandwidth"));
    }
}
