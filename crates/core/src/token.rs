//! The migration token (paper §V-A, §V-B2).
//!
//! "A token is a message formed as an array of entries … capable of
//! representing over 4 billion IDs before recycling, and an 8-bit
//! communication level. Entries are stored in ascending order by VM ID."
//!
//! The wire format packs each entry as a big-endian `u32` VM id followed by
//! one level byte (5 bytes per VM), so "the size of the message is of the
//! order of the number of VMs in the network".

use bytes::{Buf, BufMut, Bytes, BytesMut};
use score_topology::{Level, VmId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One token entry: a VM id and its last known highest communication level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenEntry {
    /// The VM this entry describes.
    pub id: VmId,
    /// Last recorded highest communication level `l_v` (0 initially).
    pub level: Level,
}

/// Error decoding a token from bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenCodecError {
    /// The byte length is not a multiple of the 5-byte entry size.
    BadLength {
        /// Received length in bytes.
        len: usize,
    },
    /// Entries were not in strictly ascending VM-id order.
    NotSorted {
        /// Index of the first out-of-order entry.
        index: usize,
    },
}

impl fmt::Display for TokenCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenCodecError::BadLength { len } => {
                write!(
                    f,
                    "token length {len} is not a multiple of {} bytes",
                    Token::ENTRY_BYTES
                )
            }
            TokenCodecError::NotSorted { index } => {
                write!(f, "token entry {index} is not in ascending VM-id order")
            }
        }
    }
}

impl std::error::Error for TokenCodecError {}

/// The migration token: an ordered array of `(VM id, level)` entries.
///
/// # Examples
///
/// ```
/// use score_core::Token;
/// use score_topology::{Level, VmId};
///
/// let mut token = Token::for_vms((0..4).map(VmId::new));
/// token.raise_level(VmId::new(2), Level::CORE);
/// let bytes = token.encode();
/// assert_eq!(bytes.len(), 4 * Token::ENTRY_BYTES);
/// let decoded = Token::decode(&bytes).unwrap();
/// assert_eq!(decoded.level_of(VmId::new(2)), Some(Level::CORE));
/// ```
#[derive(Debug, Clone)]
pub struct Token {
    entries: Vec<TokenEntry>,
    /// Direct map from VM id to entry index ([`NO_POS`] for untracked
    /// ids), so the per-step entry lookups (`set_level`, `raise_level`,
    /// `level_of`, `next_after`) are O(1) instead of binary searches.
    /// Rebuilt on membership changes (and on decode/deserialize);
    /// lookups fall back to binary search if the map is ever absent.
    pos: Vec<u32>,
    /// Bumped by every membership change (`add_vm`/`remove_vm`), so
    /// policies keeping derived indexes over the entries can detect
    /// churn they were not told about and rebuild. Not part of token
    /// identity or the wire format.
    version: u64,
}

/// Sentinel in [`Token::pos`] for ids without an entry.
const NO_POS: u32 = u32::MAX;

// Manual impls so the derived wire shape stays exactly what the
// entries-only struct produced — the position map is derived state and
// must not leak into persisted tokens.
impl Serialize for Token {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![("entries".to_string(), self.entries.to_value())])
    }
}

impl Deserialize for Token {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let entries = v
            .get("entries")
            .ok_or_else(|| serde::Error::custom("Token: missing field `entries`"))?;
        let mut token = Token {
            entries: Vec::<TokenEntry>::from_value(entries)?,
            pos: Vec::new(),
            version: 0,
        };
        token.rebuild_pos();
        Ok(token)
    }
}

impl PartialEq for Token {
    fn eq(&self, other: &Self) -> bool {
        // The position map is derived state; token identity is the entries.
        self.entries == other.entries
    }
}

impl Eq for Token {}

impl Token {
    /// Bytes per entry on the wire: a 32-bit id plus an 8-bit level.
    pub const ENTRY_BYTES: usize = 5;

    /// Creates a token covering the given VMs with all levels initialised
    /// to zero ("the highest communication level is initialized at zero for
    /// all VMs", §V-A). Ids are deduplicated and sorted.
    pub fn for_vms<I: IntoIterator<Item = VmId>>(vms: I) -> Self {
        let mut ids: Vec<VmId> = vms.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        let mut token = Token {
            entries: ids
                .into_iter()
                .map(|id| TokenEntry {
                    id,
                    level: Level::ZERO,
                })
                .collect(),
            pos: Vec::new(),
            version: 0,
        };
        token.rebuild_pos();
        token
    }

    /// Membership-change counter: two reads returning the same value from
    /// the same `Token` instance guarantee no `add_vm`/`remove_vm`
    /// happened in between. Derived-index owners (e.g. the HLF policy)
    /// use this to detect churn without scanning the entries.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Rebuilds the id→index map from the (sorted) entries.
    fn rebuild_pos(&mut self) {
        let len = self.entries.last().map_or(0, |e| e.id.index() + 1);
        self.pos.clear();
        self.pos.resize(len, NO_POS);
        for (i, e) in self.entries.iter().enumerate() {
            self.pos[e.id.index()] = i as u32;
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the token has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries, ascending by VM id.
    pub fn entries(&self) -> &[TokenEntry] {
        &self.entries
    }

    /// The lowest VM id, `v0`.
    pub fn first(&self) -> Option<VmId> {
        self.entries.first().map(|e| e.id)
    }

    fn position(&self, vm: VmId) -> Result<usize, usize> {
        match self.entries.last() {
            // The map is valid only when sized to cover the highest id
            // (a deserialized token arrives with it empty).
            Some(last) if self.pos.len() == last.id.index() + 1 => {
                match self.pos.get(vm.index()).copied() {
                    Some(i) if i != NO_POS => Ok(i as usize),
                    // Untracked id: callers still need the insertion index.
                    _ => Err(self.entries.partition_point(|e| e.id < vm)),
                }
            }
            _ => self.entries.binary_search_by_key(&vm, |e| e.id),
        }
    }

    /// True if the token tracks `vm`.
    pub fn contains(&self, vm: VmId) -> bool {
        self.position(vm).is_ok()
    }

    /// The stored level `l_v` for a VM.
    pub fn level_of(&self, vm: VmId) -> Option<Level> {
        self.position(vm).ok().map(|i| self.entries[i].level)
    }

    /// Overwrites the stored level of a VM (used for the holder's own
    /// entry, which is always refreshed). Returns `false` for unknown VMs.
    pub fn set_level(&mut self, vm: VmId, level: Level) -> bool {
        match self.position(vm) {
            Ok(i) => {
                self.entries[i].level = level;
                true
            }
            Err(_) => false,
        }
    }

    /// Raises the stored level of a VM if `level` is greater (the peer
    /// update rule of Algorithm 1: "this update takes place only if the
    /// existing estimation is smaller"). Returns `true` if the entry
    /// changed.
    pub fn raise_level(&mut self, vm: VmId, level: Level) -> bool {
        match self.position(vm) {
            Ok(i) if self.entries[i].level < level => {
                self.entries[i].level = level;
                true
            }
            _ => false,
        }
    }

    /// The cyclic successor of `vm` in ascending id order (round-robin:
    /// "starting from the VM with lowest ID … there is no other VM x such
    /// that ID_u > ID_x > ID_v"). Works whether or not `vm` itself is
    /// tracked. Returns `None` on an empty token; returns `vm` itself only
    /// when it is the sole entry.
    pub fn next_after(&self, vm: VmId) -> Option<VmId> {
        if self.entries.is_empty() {
            return None;
        }
        let idx = match self.position(vm) {
            Ok(i) => (i + 1) % self.entries.len(),
            Err(i) => i % self.entries.len(),
        };
        Some(self.entries[idx].id)
    }

    /// Adds a VM (level 0). Returns `false` if it was already present.
    /// Supports VM arrivals between iterations.
    pub fn add_vm(&mut self, vm: VmId) -> bool {
        match self.position(vm) {
            Ok(_) => false,
            Err(i) => {
                self.entries.insert(
                    i,
                    TokenEntry {
                        id: vm,
                        level: Level::ZERO,
                    },
                );
                self.rebuild_pos();
                self.version += 1;
                true
            }
        }
    }

    /// Removes a VM. Returns `false` if it was not present. Supports VM
    /// departures between iterations.
    pub fn remove_vm(&mut self, vm: VmId) -> bool {
        match self.position(vm) {
            Ok(i) => {
                self.entries.remove(i);
                self.rebuild_pos();
                self.version += 1;
                true
            }
            Err(_) => false,
        }
    }

    /// Entries with the maximum stored level; `(level, ids)`.
    pub fn max_level_entries(&self) -> Option<(Level, Vec<VmId>)> {
        let max = self.entries.iter().map(|e| e.level).max()?;
        Some((
            max,
            self.entries
                .iter()
                .filter(|e| e.level == max)
                .map(|e| e.id)
                .collect(),
        ))
    }

    /// Serialises the token to its 5-byte-per-entry wire format.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.entries.len() * Self::ENTRY_BYTES);
        for e in &self.entries {
            buf.put_u32(e.id.get());
            buf.put_u8(e.level.get());
        }
        buf.freeze()
    }

    /// Parses a token from its wire format.
    ///
    /// # Errors
    ///
    /// Returns [`TokenCodecError`] if the length is not a multiple of the
    /// entry size or entries are not strictly ascending by id.
    pub fn decode(mut bytes: &[u8]) -> Result<Self, TokenCodecError> {
        if !bytes.len().is_multiple_of(Self::ENTRY_BYTES) {
            return Err(TokenCodecError::BadLength { len: bytes.len() });
        }
        let n = bytes.len() / Self::ENTRY_BYTES;
        let mut entries = Vec::with_capacity(n);
        let mut prev: Option<u32> = None;
        for index in 0..n {
            let id = bytes.get_u32();
            let level = bytes.get_u8();
            if let Some(p) = prev {
                if id <= p {
                    return Err(TokenCodecError::NotSorted { index });
                }
            }
            prev = Some(id);
            entries.push(TokenEntry {
                id: VmId::new(id),
                level: Level::new(level),
            });
        }
        let mut token = Token {
            entries,
            pos: Vec::new(),
            version: 0,
        };
        token.rebuild_pos();
        Ok(token)
    }

    /// Wire size in bytes.
    pub fn encoded_len(&self) -> usize {
        self.entries.len() * Self::ENTRY_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn token() -> Token {
        Token::for_vms([3, 1, 7, 1, 5].map(VmId::new))
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let t = token();
        assert_eq!(t.len(), 4);
        let ids: Vec<u32> = t.entries().iter().map(|e| e.id.get()).collect();
        assert_eq!(ids, vec![1, 3, 5, 7]);
        assert!(t.entries().iter().all(|e| e.level == Level::ZERO));
        assert_eq!(t.first(), Some(VmId::new(1)));
    }

    #[test]
    fn level_updates() {
        let mut t = token();
        assert!(t.set_level(VmId::new(3), Level::AGGREGATION));
        assert_eq!(t.level_of(VmId::new(3)), Some(Level::AGGREGATION));
        // raise only goes up
        assert!(!t.raise_level(VmId::new(3), Level::RACK));
        assert_eq!(t.level_of(VmId::new(3)), Some(Level::AGGREGATION));
        assert!(t.raise_level(VmId::new(3), Level::CORE));
        assert_eq!(t.level_of(VmId::new(3)), Some(Level::CORE));
        // unknown VM
        assert!(!t.set_level(VmId::new(99), Level::RACK));
        assert_eq!(t.level_of(VmId::new(99)), None);
    }

    #[test]
    fn round_robin_successor() {
        let t = token();
        assert_eq!(t.next_after(VmId::new(1)), Some(VmId::new(3)));
        assert_eq!(t.next_after(VmId::new(7)), Some(VmId::new(1))); // wraps
                                                                    // For ids not in the token, the next higher tracked id is chosen.
        assert_eq!(t.next_after(VmId::new(4)), Some(VmId::new(5)));
        assert_eq!(t.next_after(VmId::new(100)), Some(VmId::new(1)));
        assert_eq!(Token::for_vms([]).next_after(VmId::new(0)), None);
        let solo = Token::for_vms([VmId::new(9)]);
        assert_eq!(solo.next_after(VmId::new(9)), Some(VmId::new(9)));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut t = token();
        t.set_level(VmId::new(5), Level::CORE);
        let bytes = t.encode();
        assert_eq!(bytes.len(), t.encoded_len());
        assert_eq!(bytes.len(), 4 * Token::ENTRY_BYTES);
        let decoded = Token::decode(&bytes).unwrap();
        assert_eq!(decoded, t);
    }

    #[test]
    fn wire_format_layout() {
        let mut t = Token::for_vms([VmId::new(0x01020304)]);
        t.set_level(VmId::new(0x01020304), Level::new(9));
        let bytes = t.encode();
        assert_eq!(&bytes[..], &[0x01, 0x02, 0x03, 0x04, 9]);
    }

    #[test]
    fn decode_rejects_bad_length() {
        assert_eq!(
            Token::decode(&[0, 0, 0]),
            Err(TokenCodecError::BadLength { len: 3 })
        );
    }

    #[test]
    fn decode_rejects_unsorted() {
        // two entries: id 2 then id 1
        let bytes = [0, 0, 0, 2, 0, 0, 0, 0, 1, 0];
        assert_eq!(
            Token::decode(&bytes),
            Err(TokenCodecError::NotSorted { index: 1 })
        );
        // duplicate ids are also rejected
        let dup = [0, 0, 0, 2, 0, 0, 0, 0, 2, 0];
        assert_eq!(
            Token::decode(&dup),
            Err(TokenCodecError::NotSorted { index: 1 })
        );
    }

    #[test]
    fn membership_changes() {
        let mut t = token();
        assert!(t.add_vm(VmId::new(4)));
        assert!(!t.add_vm(VmId::new(4)));
        assert_eq!(t.next_after(VmId::new(3)), Some(VmId::new(4)));
        assert!(t.remove_vm(VmId::new(4)));
        assert!(!t.remove_vm(VmId::new(4)));
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn lookups_fall_back_without_pos_map() {
        // A serde-deserialized token arrives with an empty position map;
        // every lookup must still work (via binary search).
        let mut t = token();
        t.pos.clear();
        assert_eq!(t.level_of(VmId::new(3)), Some(Level::ZERO));
        assert!(t.set_level(VmId::new(5), Level::CORE));
        assert_eq!(t.level_of(VmId::new(5)), Some(Level::CORE));
        assert_eq!(t.next_after(VmId::new(7)), Some(VmId::new(1)));
        assert!(!t.contains(VmId::new(2)));
        // A membership change rebuilds the map.
        assert!(t.add_vm(VmId::new(2)));
        assert_eq!(t.pos.len(), 8);
        assert_eq!(t.next_after(VmId::new(1)), Some(VmId::new(2)));
        assert_eq!(t.level_of(VmId::new(5)), Some(Level::CORE));
    }

    #[test]
    fn max_level_entries() {
        let mut t = token();
        assert_eq!(
            t.max_level_entries(),
            Some((
                Level::ZERO,
                vec![VmId::new(1), VmId::new(3), VmId::new(5), VmId::new(7)]
            ))
        );
        t.set_level(VmId::new(5), Level::CORE);
        t.set_level(VmId::new(7), Level::CORE);
        let (level, ids) = t.max_level_entries().unwrap();
        assert_eq!(level, Level::CORE);
        assert_eq!(ids, vec![VmId::new(5), VmId::new(7)]);
        assert_eq!(Token::for_vms([]).max_level_entries(), None);
    }

    #[test]
    fn codec_error_display() {
        assert!(TokenCodecError::BadLength { len: 3 }
            .to_string()
            .contains('3'));
        assert!(TokenCodecError::NotSorted { index: 1 }
            .to_string()
            .contains("entry 1"));
    }
}
