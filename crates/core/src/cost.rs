//! The communication cost model (paper §III, Eq. 1–2) and migration deltas
//! (Lemmas 1–3, Theorem 1).
//!
//! * Per-VM cost, Eq. (1): `C_A(u) = 2 Σ_{v∈Vu} λ(u,v) Σ_{i=1..ℓA(u,v)} c_i`
//! * Network-wide cost, Eq. (2): `C_A = Σ_u Σ_{v∈Vu} λ(u,v) Σ_{i≤ℓ} c_i`
//!   (each unordered pair counted once)
//! * Migration delta, Lemma 3: for `u → x̂`,
//!   `ΔC = 2 Σ_{z∈Vu} λ(z,u) (Σ_{i≤ℓA(z,u)} c_i − Σ_{i≤ℓA'(z,u)} c_i)`
//!
//! Theorem 1: the migration compensates its cost iff `ΔC > c_m`.

use score_topology::{LinkWeights, ServerId, Topology, VmId};
use score_traffic::PairTraffic;

use crate::allocation::Allocation;

/// Communication-cost calculator binding link weights to a topology.
///
/// # Examples
///
/// ```
/// use score_core::{Allocation, CostModel};
/// use score_topology::{CanonicalTree, ServerId, VmId};
/// use score_traffic::PairTrafficBuilder;
///
/// let topo = CanonicalTree::small();
/// let mut b = PairTrafficBuilder::new(2);
/// b.add(VmId::new(0), VmId::new(1), 100.0);
/// let traffic = b.build();
///
/// // Same rack: the pair costs 2 * λ * c1.
/// let alloc = Allocation::from_fn(2, 16, |vm| ServerId::new(vm.get()));
/// let model = CostModel::paper_default();
/// let cost = model.total_cost(&alloc, &traffic, &topo);
/// assert!((cost - 200.0).abs() < 1e-9);
///
/// // Collocating them drops the cost to zero (Lemma 3 predicts it).
/// let delta = model.migration_delta(VmId::new(0), ServerId::new(1), &alloc, &traffic, &topo);
/// assert!((delta - 200.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct CostModel {
    weights: LinkWeights,
}

impl CostModel {
    /// Creates a cost model with the given link weights.
    pub fn new(weights: LinkWeights) -> Self {
        CostModel { weights }
    }

    /// The paper's evaluation weights (`c_i = e^0, e^1, e^3`).
    pub fn paper_default() -> Self {
        CostModel::new(LinkWeights::paper_default())
    }

    /// The link weights in use.
    pub fn weights(&self) -> &LinkWeights {
        &self.weights
    }

    /// Per-VM communication cost `C_A(u)` — Eq. (1).
    pub fn vm_cost<T: Topology + ?Sized>(
        &self,
        u: VmId,
        alloc: &Allocation,
        traffic: &PairTraffic,
        topo: &T,
    ) -> f64 {
        let su = alloc.server_of(u);
        let mut cost = 0.0;
        for &(v, rate) in traffic.peers(u) {
            let level = topo.level(su, alloc.server_of(v));
            cost += rate * self.weights.prefix(level);
        }
        2.0 * cost
    }

    /// Network-wide communication cost `C_A` — Eq. (2).
    pub fn total_cost<T: Topology + ?Sized>(
        &self,
        alloc: &Allocation,
        traffic: &PairTraffic,
        topo: &T,
    ) -> f64 {
        let mut cost = 0.0;
        for (u, v, rate) in traffic.pairs() {
            let level = topo.level(alloc.server_of(u), alloc.server_of(v));
            cost += rate * self.weights.prefix(level);
        }
        // Eq. (2) carries the same 2× factor as Eq. (1): a level-ℓ path
        // crosses *two* links of each layer 1..=ℓ.
        2.0 * cost
    }

    /// Migration delta `ΔC_{u→x̂}` — Lemma 3. Positive means the move
    /// reduces the network-wide cost.
    ///
    /// Runs in `O(|Vu|)` using only information local to `u`: its peers,
    /// their rates, and their hosting servers.
    pub fn migration_delta<T: Topology + ?Sized>(
        &self,
        u: VmId,
        target: ServerId,
        alloc: &Allocation,
        traffic: &PairTraffic,
        topo: &T,
    ) -> f64 {
        let su = alloc.server_of(u);
        if su == target {
            return 0.0;
        }
        let mut delta = 0.0;
        for &(z, rate) in traffic.peers(u) {
            let sz = alloc.server_of(z);
            let before = topo.level(sz, su);
            let after = topo.level(sz, target);
            delta += rate * self.weights.level_change_saving(before, after);
        }
        2.0 * delta
    }

    /// Seeds a [`crate::CostLedger`] with this model and one full
    /// Eq.-(2) pass — after which `C_A` stays observable in `O(1)` by
    /// folding each accepted migration's [`CostModel::migration_delta`]
    /// into the ledger instead of recomputing.
    pub fn ledger<T: Topology + ?Sized>(
        &self,
        alloc: &Allocation,
        traffic: &PairTraffic,
        topo: &T,
    ) -> crate::CostLedger {
        crate::CostLedger::new(self.clone(), alloc, traffic, topo)
    }

    /// Theorem 1: should `u` migrate to `target` given migration cost
    /// `cm`? True iff `ΔC > cm`.
    pub fn should_migrate<T: Topology + ?Sized>(
        &self,
        u: VmId,
        target: ServerId,
        alloc: &Allocation,
        traffic: &PairTraffic,
        topo: &T,
        cm: f64,
    ) -> bool {
        self.migration_delta(u, target, alloc, traffic, topo) > cm
    }

    /// The highest communication level of `u` under `alloc` —
    /// `ℓ_A(u) = max_{v∈Vu} ℓ_A(u, v)` (§II), used by the HLF token policy.
    /// Returns level 0 for VMs with no peers.
    pub fn highest_level<T: Topology + ?Sized>(
        &self,
        u: VmId,
        alloc: &Allocation,
        traffic: &PairTraffic,
        topo: &T,
    ) -> score_topology::Level {
        let su = alloc.server_of(u);
        traffic
            .peers(u)
            .iter()
            .map(|&(v, _)| topo.level(su, alloc.server_of(v)))
            .max()
            .unwrap_or(score_topology::Level::ZERO)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper_default()
    }
}

/// Share of pairwise traffic volume communicated at each level under an
/// allocation: `breakdown[ℓ]` is the fraction of total λ whose pair sits
/// at communication level ℓ.
///
/// This is the quantity S-CORE physically moves: migrations shift mass
/// from high indices (core) to low ones (rack/host). The vector has
/// `max_level + 1` entries and sums to 1 for non-empty traffic.
pub fn level_breakdown<T: Topology + ?Sized>(
    alloc: &Allocation,
    traffic: &PairTraffic,
    topo: &T,
) -> Vec<f64> {
    let mut mass = vec![0.0; topo.max_level().index() + 1];
    for (u, v, rate) in traffic.pairs() {
        let level = topo.level(alloc.server_of(u), alloc.server_of(v));
        mass[level.index()] += rate;
    }
    let total: f64 = mass.iter().sum();
    if total > 0.0 {
        for m in &mut mass {
            *m /= total;
        }
    }
    mass
}

#[cfg(test)]
mod tests {
    use super::*;
    use score_topology::{CanonicalTree, Level};
    use score_traffic::PairTrafficBuilder;

    /// 4 racks x 4 hosts, 2 racks per agg, 2 cores.
    fn topo() -> CanonicalTree {
        CanonicalTree::small()
    }

    fn traffic() -> PairTraffic {
        let mut b = PairTrafficBuilder::new(4);
        b.add(VmId::new(0), VmId::new(1), 10.0);
        b.add(VmId::new(0), VmId::new(2), 5.0);
        b.add(VmId::new(2), VmId::new(3), 1.0);
        b.build()
    }

    /// vm0 -> srv0, vm1 -> srv1 (same rack), vm2 -> srv4 (same agg),
    /// vm3 -> srv8 (other agg / core level).
    fn alloc() -> Allocation {
        let servers = [0u32, 1, 4, 8];
        Allocation::from_fn(4, 16, |vm| ServerId::new(servers[vm.index()]))
    }

    fn w(i: u8) -> f64 {
        LinkWeights::paper_default().prefix(Level::new(i))
    }

    #[test]
    fn vm_cost_matches_hand_computation() {
        let m = CostModel::paper_default();
        // vm0: 10 * prefix(1) [to vm1, same rack] + 5 * prefix(2) [to vm2].
        let expected = 2.0 * (10.0 * w(1) + 5.0 * w(2));
        let got = m.vm_cost(VmId::new(0), &alloc(), &traffic(), &topo());
        assert!(
            (got - expected).abs() < 1e-9,
            "got {got} expected {expected}"
        );
    }

    #[test]
    fn total_cost_matches_hand_computation() {
        let m = CostModel::paper_default();
        // Pairs: (0,1)@L1 rate10, (0,2)@L2 rate5, (2,3)@L3 rate1.
        let expected = 2.0 * (10.0 * w(1) + 5.0 * w(2) + 1.0 * w(3));
        let got = m.total_cost(&alloc(), &traffic(), &topo());
        assert!((got - expected).abs() < 1e-9);
    }

    #[test]
    fn total_is_half_sum_of_vm_costs() {
        // C_A = ½ Σ_u C_A(u) (paper §III).
        let m = CostModel::paper_default();
        let (a, t, topo) = (alloc(), traffic(), topo());
        let total = m.total_cost(&a, &t, &topo);
        let sum: f64 = (0..4).map(|v| m.vm_cost(VmId::new(v), &a, &t, &topo)).sum();
        assert!((total - sum / 2.0).abs() < 1e-9);
    }

    #[test]
    fn delta_matches_full_recomputation() {
        let m = CostModel::paper_default();
        let (mut a, t, topo) = (alloc(), traffic(), topo());
        let before = m.total_cost(&a, &t, &topo);
        // Move vm0 next to vm2 (server 4).
        let delta = m.migration_delta(VmId::new(0), ServerId::new(4), &a, &t, &topo);
        a.move_vm(VmId::new(0), ServerId::new(4));
        let after = m.total_cost(&a, &t, &topo);
        assert!(
            (delta - (before - after)).abs() < 1e-9,
            "delta {delta} vs {}",
            before - after
        );
    }

    #[test]
    fn delta_for_noop_move_is_zero() {
        let m = CostModel::paper_default();
        let (a, t, topo) = (alloc(), traffic(), topo());
        assert_eq!(
            m.migration_delta(VmId::new(0), ServerId::new(0), &a, &t, &topo),
            0.0
        );
    }

    #[test]
    fn collocation_zeroes_pair_cost() {
        let m = CostModel::paper_default();
        let (mut a, t, topo) = (alloc(), traffic(), topo());
        // Put vm0 on vm1's server: their 10-unit pair stops costing.
        a.move_vm(VmId::new(0), ServerId::new(1));
        let cost = m.total_cost(&a, &t, &topo);
        let expected = 2.0 * (5.0 * w(2) + 1.0 * w(3));
        assert!((cost - expected).abs() < 1e-9);
    }

    #[test]
    fn theorem1_gate() {
        let m = CostModel::paper_default();
        let (a, t, topo) = (alloc(), traffic(), topo());
        let delta = m.migration_delta(VmId::new(0), ServerId::new(1), &a, &t, &topo);
        assert!(delta > 0.0);
        assert!(m.should_migrate(VmId::new(0), ServerId::new(1), &a, &t, &topo, 0.0));
        // A migration cost above the gain blocks the move.
        assert!(!m.should_migrate(VmId::new(0), ServerId::new(1), &a, &t, &topo, delta + 1.0));
    }

    #[test]
    fn highest_level() {
        let m = CostModel::paper_default();
        let (a, t, topo) = (alloc(), traffic(), topo());
        assert_eq!(
            m.highest_level(VmId::new(0), &a, &t, &topo),
            Level::AGGREGATION
        );
        assert_eq!(m.highest_level(VmId::new(2), &a, &t, &topo), Level::CORE);
        // vm with no peers
        let mut b = PairTrafficBuilder::new(4);
        b.add(VmId::new(0), VmId::new(1), 1.0);
        let t2 = b.build();
        assert_eq!(m.highest_level(VmId::new(3), &a, &t2, &topo), Level::ZERO);
    }

    #[test]
    fn level_breakdown_sums_to_one_and_tracks_moves() {
        let (mut a, t, topo) = (alloc(), traffic(), topo());
        let before = level_breakdown(&a, &t, &topo);
        assert_eq!(before.len(), 4);
        assert!((before.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Pairs: 10@L1, 5@L2, 1@L3 → shares 10/16, 5/16, 1/16.
        assert!((before[1] - 10.0 / 16.0).abs() < 1e-12);
        assert!((before[3] - 1.0 / 16.0).abs() < 1e-12);
        // Collocate vm0 with vm1: the 10-unit pair drops to level 0.
        a.move_vm(VmId::new(0), ServerId::new(1));
        let after = level_breakdown(&a, &t, &topo);
        assert!((after[0] - 10.0 / 16.0).abs() < 1e-12);
        assert!(after[1] < before[1]);
    }

    #[test]
    fn level_breakdown_empty_traffic() {
        let (a, _, topo) = (alloc(), traffic(), topo());
        let empty = score_traffic::PairTraffic::empty(4);
        let breakdown = level_breakdown(&a, &empty, &topo);
        assert!(breakdown.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn moving_away_increases_cost() {
        let m = CostModel::paper_default();
        let (a, t, topo) = (alloc(), traffic(), topo());
        // vm1 away from its only peer vm0: negative delta.
        let delta = m.migration_delta(VmId::new(1), ServerId::new(12), &a, &t, &topo);
        assert!(delta < 0.0);
    }
}
