//! VM-to-server allocations (the `A` of the paper).
//!
//! An [`Allocation`] is the function `σ̂_A : V → S` mapping every VM to its
//! hosting server, maintained bidirectionally so both `σ̂_A(u)` and "which
//! VMs does this server host" are O(1)/O(k).

use score_topology::{ServerId, VmId};
use serde::{Deserialize, Serialize};

/// A total assignment of VMs to servers.
///
/// # Examples
///
/// ```
/// use score_core::Allocation;
/// use score_topology::{ServerId, VmId};
///
/// let mut alloc = Allocation::from_fn(4, 2, |vm| ServerId::new(vm.get() % 2));
/// assert_eq!(alloc.server_of(VmId::new(2)), ServerId::new(0));
/// alloc.move_vm(VmId::new(2), ServerId::new(1));
/// assert_eq!(alloc.server_of(VmId::new(2)), ServerId::new(1));
/// assert_eq!(alloc.vms_on(ServerId::new(1)).len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocation {
    vm_server: Vec<ServerId>,
    server_vms: Vec<Vec<VmId>>,
}

impl Allocation {
    /// Builds an allocation by evaluating `place` for every VM.
    ///
    /// # Panics
    ///
    /// Panics if `place` returns a server `>= num_servers`.
    pub fn from_fn<F>(num_vms: u32, num_servers: u32, mut place: F) -> Self
    where
        F: FnMut(VmId) -> ServerId,
    {
        let mut vm_server = Vec::with_capacity(num_vms as usize);
        let mut server_vms: Vec<Vec<VmId>> = vec![Vec::new(); num_servers as usize];
        for v in 0..num_vms {
            let vm = VmId::new(v);
            let s = place(vm);
            assert!(
                s.index() < num_servers as usize,
                "placement put {vm} on out-of-range server {s}"
            );
            vm_server.push(s);
            server_vms[s.index()].push(vm);
        }
        Allocation {
            vm_server,
            server_vms,
        }
    }

    /// Builds an allocation from an explicit vector (`vec[vm] = server`).
    ///
    /// # Panics
    ///
    /// Panics if any server is out of range.
    pub fn from_vec(vm_server: Vec<ServerId>, num_servers: u32) -> Self {
        let n = vm_server.len() as u32;
        let mut copy = vm_server;
        let taken = std::mem::take(&mut copy);
        Allocation::from_fn(n, num_servers, |vm| taken[vm.index()])
    }

    /// Number of VMs.
    pub fn num_vms(&self) -> u32 {
        self.vm_server.len() as u32
    }

    /// Number of servers.
    pub fn num_servers(&self) -> u32 {
        self.server_vms.len() as u32
    }

    /// The server hosting `vm` — `σ̂_A(vm)`.
    ///
    /// # Panics
    ///
    /// Panics if `vm` is out of range.
    pub fn server_of(&self, vm: VmId) -> ServerId {
        self.vm_server[vm.index()]
    }

    /// VMs hosted by `server`.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn vms_on(&self, server: ServerId) -> &[VmId] {
        &self.server_vms[server.index()]
    }

    /// Number of VMs hosted by `server`.
    pub fn occupancy(&self, server: ServerId) -> usize {
        self.server_vms[server.index()].len()
    }

    /// Moves `vm` to `target` (the migration `u → x̂`). No-op if the VM is
    /// already there.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn move_vm(&mut self, vm: VmId, target: ServerId) {
        assert!(
            target.index() < self.server_vms.len(),
            "server {target} out of range"
        );
        let current = self.vm_server[vm.index()];
        if current == target {
            return;
        }
        let old_list = &mut self.server_vms[current.index()];
        let pos = old_list
            .iter()
            .position(|&v| v == vm)
            .expect("reverse index corrupt");
        old_list.swap_remove(pos);
        self.server_vms[target.index()].push(vm);
        self.vm_server[vm.index()] = target;
    }

    /// Appends a new VM (the next dense id) on `server`, returning its
    /// id — the arrival half of live cluster churn.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn push_vm(&mut self, server: ServerId) -> VmId {
        assert!(
            server.index() < self.server_vms.len(),
            "server {server} out of range"
        );
        let vm = VmId::new(self.vm_server.len() as u32);
        self.vm_server.push(server);
        self.server_vms[server.index()].push(vm);
        vm
    }

    /// The raw VM→server vector.
    pub fn as_slice(&self) -> &[ServerId] {
        &self.vm_server
    }

    /// Iterates over `(vm, server)` pairs in VM order.
    pub fn iter(&self) -> impl Iterator<Item = (VmId, ServerId)> + '_ {
        self.vm_server
            .iter()
            .enumerate()
            .map(|(i, &s)| (VmId::new(i as u32), s))
    }

    /// Largest per-server occupancy (for capacity sanity checks).
    pub fn max_occupancy(&self) -> usize {
        self.server_vms.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Verifies the bidirectional index; used in tests and debug
    /// assertions.
    pub fn is_consistent(&self) -> bool {
        let mut seen = 0usize;
        for (s, vms) in self.server_vms.iter().enumerate() {
            for &vm in vms {
                if self.vm_server.get(vm.index()).map(|sid| sid.index()) != Some(s) {
                    return false;
                }
                seen += 1;
            }
        }
        seen == self.vm_server.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc() -> Allocation {
        Allocation::from_fn(6, 3, |vm| ServerId::new(vm.get() / 2))
    }

    #[test]
    fn construction_and_lookup() {
        let a = alloc();
        assert_eq!(a.num_vms(), 6);
        assert_eq!(a.num_servers(), 3);
        assert_eq!(a.server_of(VmId::new(3)), ServerId::new(1));
        assert_eq!(a.vms_on(ServerId::new(1)), &[VmId::new(2), VmId::new(3)]);
        assert_eq!(a.occupancy(ServerId::new(2)), 2);
        assert!(a.is_consistent());
    }

    #[test]
    fn move_vm_updates_both_indexes() {
        let mut a = alloc();
        a.move_vm(VmId::new(0), ServerId::new(2));
        assert_eq!(a.server_of(VmId::new(0)), ServerId::new(2));
        assert_eq!(a.occupancy(ServerId::new(0)), 1);
        assert_eq!(a.occupancy(ServerId::new(2)), 3);
        assert!(a.is_consistent());
    }

    #[test]
    fn move_to_same_server_is_noop() {
        let mut a = alloc();
        let before = a.clone();
        a.move_vm(VmId::new(0), ServerId::new(0));
        assert_eq!(a, before);
    }

    #[test]
    fn from_vec_roundtrip() {
        let servers = vec![ServerId::new(2), ServerId::new(0), ServerId::new(2)];
        let a = Allocation::from_vec(servers.clone(), 3);
        assert_eq!(a.as_slice(), servers.as_slice());
        assert_eq!(a.occupancy(ServerId::new(2)), 2);
        assert_eq!(a.max_occupancy(), 2);
    }

    #[test]
    fn iter_pairs() {
        let a = alloc();
        let pairs: Vec<_> = a.iter().collect();
        assert_eq!(pairs.len(), 6);
        assert_eq!(pairs[4], (VmId::new(4), ServerId::new(2)));
    }

    #[test]
    #[should_panic(expected = "out-of-range server")]
    fn out_of_range_placement_panics() {
        let _ = Allocation::from_fn(2, 1, |_| ServerId::new(5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn move_to_out_of_range_server_panics() {
        let mut a = alloc();
        a.move_vm(VmId::new(0), ServerId::new(99));
    }

    #[test]
    fn empty_allocation() {
        let a = Allocation::from_fn(0, 4, |_| ServerId::new(0));
        assert_eq!(a.num_vms(), 0);
        assert_eq!(a.max_occupancy(), 0);
        assert!(a.is_consistent());
    }
}
