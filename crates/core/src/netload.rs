//! Per-link load accounting.
//!
//! Given an allocation and the pairwise loads, route every VM pair over the
//! topology's (multipath) route shares and accumulate bits per second on
//! each link. This produces the link-utilization CDFs of Fig. 4a and the
//! congestion signal that the Remedy baseline consumes.

use score_topology::{Level, LinkId, Topology, VmId};
use score_traffic::PairTraffic;
use serde::{Deserialize, Serialize};

use crate::allocation::Allocation;

/// Load and utilization of every link under one allocation.
///
/// # Examples
///
/// ```
/// use score_core::{Allocation, LinkLoadMap};
/// use score_topology::{CanonicalTree, Level, ServerId, VmId};
/// use score_traffic::PairTrafficBuilder;
///
/// let topo = CanonicalTree::small();
/// let mut b = PairTrafficBuilder::new(2);
/// b.add(VmId::new(0), VmId::new(1), 100e6); // 100 Mb/s across the core
/// let traffic = b.build();
/// let alloc = Allocation::from_fn(2, 16, |vm| ServerId::new(vm.get() * 8));
///
/// let map = LinkLoadMap::compute(&alloc, &traffic, &topo);
/// // Both 1 GbE host links carry the full rate: 10% utilization.
/// let (_, max_util) = map.max_utilization(Level::RACK).unwrap();
/// assert!((max_util - 0.1).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkLoadMap {
    /// Load per link in bits per second, indexed by `LinkId`.
    load_bps: Vec<f64>,
    /// Capacity per link in bits per second.
    capacity_bps: Vec<f64>,
    /// Link level (1 = host↔ToR, 2 = ToR↔agg, 3 = agg↔core).
    level: Vec<u8>,
}

impl LinkLoadMap {
    /// Computes link loads for `alloc` by fluid-routing every communicating
    /// pair over its topology route shares.
    pub fn compute<T: Topology + ?Sized>(
        alloc: &Allocation,
        traffic: &PairTraffic,
        topo: &T,
    ) -> Self {
        let links = topo.graph().links();
        let mut load_bps = vec![0.0; links.len()];
        for (u, v, rate) in traffic.pairs() {
            let (su, sv) = (alloc.server_of(u), alloc.server_of(v));
            for share in topo.route_shares(su, sv) {
                load_bps[share.link.index()] += rate * share.fraction;
            }
        }
        LinkLoadMap {
            load_bps,
            capacity_bps: links.iter().map(|l| l.capacity_bps).collect(),
            level: links.iter().map(|l| l.level).collect(),
        }
    }

    /// Number of links tracked.
    pub fn num_links(&self) -> usize {
        self.load_bps.len()
    }

    /// Load on one link in bits per second.
    pub fn load_bps(&self, link: LinkId) -> f64 {
        self.load_bps[link.index()]
    }

    /// Utilization of one link in `[0, ∞)` (can exceed 1 when demand
    /// exceeds capacity).
    pub fn utilization(&self, link: LinkId) -> f64 {
        self.load_bps[link.index()] / self.capacity_bps[link.index()]
    }

    /// Level of one link.
    pub fn link_level(&self, link: LinkId) -> Level {
        Level::new(self.level[link.index()])
    }

    /// Iterator over `(link, load_bps, utilization)` tuples.
    pub fn iter(&self) -> impl Iterator<Item = (LinkId, f64, f64)> + '_ {
        (0..self.load_bps.len()).map(move |i| {
            (
                LinkId::new(i as u32),
                self.load_bps[i],
                self.load_bps[i] / self.capacity_bps[i],
            )
        })
    }

    /// Utilizations of all links at the given level, unsorted.
    pub fn utilizations_at_level(&self, level: Level) -> Vec<f64> {
        (0..self.load_bps.len())
            .filter(|&i| self.level[i] == level.get())
            .map(|i| self.load_bps[i] / self.capacity_bps[i])
            .collect()
    }

    /// The most utilized link and its utilization, optionally restricted to
    /// a minimum level (Remedy watches the oversubscribed upper layers).
    pub fn max_utilization(&self, min_level: Level) -> Option<(LinkId, f64)> {
        (0..self.load_bps.len())
            .filter(|&i| self.level[i] >= min_level.get())
            .map(|i| {
                (
                    LinkId::new(i as u32),
                    self.load_bps[i] / self.capacity_bps[i],
                )
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// Total load carried on links of the given level (bps, both
    /// directions of every path counted once per link).
    pub fn total_load_at_level(&self, level: Level) -> f64 {
        (0..self.load_bps.len())
            .filter(|&i| self.level[i] == level.get())
            .map(|i| self.load_bps[i])
            .sum()
    }

    /// Empirical CDF of the utilizations at `level`: returns the sorted
    /// utilization values; plotting index/(n-1) against value reproduces
    /// Fig. 4a's per-layer CDFs.
    pub fn utilization_cdf(&self, level: Level) -> Vec<f64> {
        let mut utils = self.utilizations_at_level(level);
        utils.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        utils
    }

    /// VMs contributing load to `link` under `alloc`, with their
    /// contributed bps, descending — Remedy's candidate selection signal.
    pub fn contributors<T: Topology + ?Sized>(
        link: LinkId,
        alloc: &Allocation,
        traffic: &PairTraffic,
        topo: &T,
    ) -> Vec<(VmId, f64)> {
        let mut contrib: Vec<f64> = vec![0.0; traffic.num_vms() as usize];
        for (u, v, rate) in traffic.pairs() {
            let (su, sv) = (alloc.server_of(u), alloc.server_of(v));
            for share in topo.route_shares(su, sv) {
                if share.link == link {
                    contrib[u.index()] += rate * share.fraction;
                    contrib[v.index()] += rate * share.fraction;
                }
            }
        }
        let mut out: Vec<(VmId, f64)> = contrib
            .into_iter()
            .enumerate()
            .filter(|&(_, c)| c > 0.0)
            .map(|(i, c)| (VmId::new(i as u32), c))
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use score_topology::{CanonicalTree, ServerId};
    use score_traffic::PairTrafficBuilder;

    fn fixture() -> (CanonicalTree, Allocation, PairTraffic) {
        let topo = CanonicalTree::small();
        // vm0@srv0, vm1@srv1 (same rack), vm2@srv8 (across core)
        let servers = [0u32, 1, 8];
        let alloc = Allocation::from_fn(3, 16, |vm| ServerId::new(servers[vm.index()]));
        let mut b = PairTrafficBuilder::new(3);
        b.add(VmId::new(0), VmId::new(1), 100e6);
        b.add(VmId::new(0), VmId::new(2), 50e6);
        (topo, alloc, b.build())
    }

    #[test]
    fn loads_land_on_route_links() {
        let (topo, alloc, traffic) = fixture();
        let map = LinkLoadMap::compute(&alloc, &traffic, &topo);
        // srv0's host link carries both pairs: 150 Mb/s.
        let host0 =
            score_topology::Topology::route_shares(&topo, ServerId::new(0), ServerId::new(1))[0]
                .link;
        assert!((map.load_bps(host0) - 150e6).abs() < 1.0);
        // Host link utilization: 150 Mb/s over 1 Gb/s.
        assert!((map.utilization(host0) - 0.15).abs() < 1e-9);
    }

    #[test]
    fn core_links_split_by_ecmp() {
        let (topo, alloc, traffic) = fixture();
        let map = LinkLoadMap::compute(&alloc, &traffic, &topo);
        // The 50 Mb/s core pair splits across 2 cores: each agg-core link
        // on the path carries 25 Mb/s.
        let core_loads: Vec<f64> = map
            .iter()
            .filter(|&(l, _, _)| map.link_level(l) == Level::CORE)
            .map(|(_, load, _)| load)
            .filter(|&l| l > 0.0)
            .collect();
        assert_eq!(core_loads.len(), 4); // 2 sides x 2 cores
        for l in core_loads {
            assert!((l - 25e6).abs() < 1.0);
        }
        assert!((map.total_load_at_level(Level::CORE) - 100e6).abs() < 1.0);
    }

    #[test]
    fn max_utilization_finds_hot_link() {
        let (topo, alloc, traffic) = fixture();
        let map = LinkLoadMap::compute(&alloc, &traffic, &topo);
        let (_link, util) = map.max_utilization(Level::RACK).unwrap();
        assert!((util - 0.15).abs() < 1e-9); // srv0's host link
                                             // Restricted to core level only.
        let (_link, util) = map.max_utilization(Level::CORE).unwrap();
        assert!((util - 25e6 / 10e9).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_sorted_and_complete() {
        let (topo, alloc, traffic) = fixture();
        let map = LinkLoadMap::compute(&alloc, &traffic, &topo);
        let cdf = map.utilization_cdf(Level::RACK);
        assert_eq!(cdf.len(), 16); // all host links
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn contributors_ranked() {
        let (topo, alloc, traffic) = fixture();
        let map = LinkLoadMap::compute(&alloc, &traffic, &topo);
        let (hot, _) = map.max_utilization(Level::CORE).unwrap();
        let contribs = LinkLoadMap::contributors(hot, &alloc, &traffic, &topo);
        // Only the core pair (vm0, vm2) touches core links.
        assert_eq!(contribs.len(), 2);
        let vms: Vec<VmId> = contribs.iter().map(|&(v, _)| v).collect();
        assert!(vms.contains(&VmId::new(0)) && vms.contains(&VmId::new(2)));
    }

    #[test]
    fn collocation_produces_zero_load() {
        let (topo, _, traffic) = fixture();
        let together = Allocation::from_fn(3, 16, |_| ServerId::new(0));
        let map = LinkLoadMap::compute(&together, &traffic, &topo);
        assert!(map.iter().all(|(_, load, _)| load == 0.0));
        assert!(map.max_utilization(Level::RACK).unwrap().1 == 0.0);
    }
}
