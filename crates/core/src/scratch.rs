//! Reusable decision-path buffers.
//!
//! A steady-state token hold must not touch the heap: at 100k hosts the
//! decision itself is a few microseconds, so even one `Vec` growth per
//! hold shows up. [`DecisionScratch`] owns every buffer the hold needs —
//! the observed view, the forecast-re-rated decision view, the
//! post-migration view, the predicted-rate slab, and the level-bucket
//! accumulators of the single-pass kernel — all grown once to the
//! topology's size and reused forever after.
//!
//! Ownership rules (see `docs/ARCHITECTURE.md` § Decision kernel):
//! every [`crate::TokenRing`] owns exactly one scratch (so `Session`,
//! `scored`'s tenant engines and `MatrixRunner` cells each get their own
//! through the rings they already own), and a scratch is never shared
//! across threads — per-worker rings mean per-worker scratches.

use score_topology::{Level, ServerId, Topology};

use crate::view::LocalView;

/// Epoch-stamped sparse accumulators for the level-bucketed kernel.
///
/// The kernel needs per-server / per-rack / per-zone peer-rate sums for
/// one holder at a time. Dense arrays sized to the topology give O(1)
/// reads, and an epoch stamp per slot gives O(1) *clearing*: a slot is
/// valid only when its mark equals the current epoch, so starting a new
/// decision is one counter increment, not an O(topology) memset.
#[derive(Debug, Default)]
pub struct KernelScratch {
    epoch: u32,
    host_rate: Vec<f64>,
    host_mark: Vec<u32>,
    rack_rate: Vec<f64>,
    rack_mark: Vec<u32>,
    zone_rate: Vec<f64>,
    zone_mark: Vec<u32>,
    /// Ranked-candidate buffer: `(server, level, rate, peer index)` —
    /// the same rank tuple `LocalView::candidate_servers` sorts.
    pub(crate) candidates: Vec<(ServerId, Level, f64, u32)>,
}

impl KernelScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        KernelScratch::default()
    }

    /// Grows the accumulator arrays to the topology's dimensions. New
    /// slots start with mark 0, which is never a live epoch.
    pub fn ensure_topology<T: Topology + ?Sized>(&mut self, topo: &T) {
        let servers = topo.num_servers();
        if self.host_rate.len() < servers {
            self.host_rate.resize(servers, 0.0);
            self.host_mark.resize(servers, 0);
        }
        let racks = topo.num_racks();
        if self.rack_rate.len() < racks {
            self.rack_rate.resize(racks, 0.0);
            self.rack_mark.resize(racks, 0);
        }
        let zones = topo.num_zones();
        if self.zone_rate.len() < zones {
            self.zone_rate.resize(zones, 0.0);
            self.zone_mark.resize(zones, 0);
        }
    }

    /// Starts a new decision: invalidates every slot in O(1) by
    /// advancing the epoch (with an O(topology) mark reset on the once-
    /// per-4-billion wrap, so stale marks can never alias a live epoch).
    pub fn begin(&mut self) {
        if self.epoch == u32::MAX {
            self.host_mark.fill(0);
            self.rack_mark.fill(0);
            self.zone_mark.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    #[inline]
    fn add(epoch: u32, rate: &mut [f64], mark: &mut [u32], idx: usize, r: f64) {
        if mark[idx] == epoch {
            rate[idx] += r;
        } else {
            mark[idx] = epoch;
            rate[idx] = r;
        }
    }

    #[inline]
    fn get(epoch: u32, rate: &[f64], mark: &[u32], idx: usize) -> f64 {
        if mark[idx] == epoch {
            rate[idx]
        } else {
            0.0
        }
    }

    /// Accumulates one peer's rate onto its server slot.
    #[inline]
    pub(crate) fn add_host(&mut self, s: ServerId, r: f64) {
        Self::add(
            self.epoch,
            &mut self.host_rate,
            &mut self.host_mark,
            s.index(),
            r,
        );
    }

    /// Accumulates one peer's rate onto its rack slot.
    #[inline]
    pub(crate) fn add_rack(&mut self, rack: u32, r: f64) {
        Self::add(
            self.epoch,
            &mut self.rack_rate,
            &mut self.rack_mark,
            rack as usize,
            r,
        );
    }

    /// Accumulates one peer's rate onto its zone slot.
    #[inline]
    pub(crate) fn add_zone(&mut self, zone: u32, r: f64) {
        Self::add(
            self.epoch,
            &mut self.zone_rate,
            &mut self.zone_mark,
            zone as usize,
            r,
        );
    }

    /// Peer rate hosted on `s` this epoch (0 when untouched).
    #[inline]
    pub(crate) fn host_sum(&self, s: ServerId) -> f64 {
        Self::get(self.epoch, &self.host_rate, &self.host_mark, s.index())
    }

    /// Peer rate in rack `rack` this epoch (0 when untouched).
    #[inline]
    pub(crate) fn rack_sum(&self, rack: u32) -> f64 {
        Self::get(self.epoch, &self.rack_rate, &self.rack_mark, rack as usize)
    }

    /// Peer rate in zone `zone` this epoch (0 when untouched).
    #[inline]
    pub(crate) fn zone_sum(&self, zone: u32) -> f64 {
        Self::get(self.epoch, &self.zone_rate, &self.zone_mark, zone as usize)
    }
}

/// Every buffer one token hold needs, reusable across holds.
#[derive(Debug, Default)]
pub struct DecisionScratch {
    /// The holder's observed (pre-migration) view.
    pub(crate) view: LocalView,
    /// The post-migration view the policy consumes (only refilled when a
    /// migration actually happened; otherwise the pre-view is reused).
    pub(crate) post_view: LocalView,
    /// The forecast-re-rated scoring view (forecast contexts only).
    pub(crate) decision_view: LocalView,
    /// Predicted per-peer rates, index-aligned with `view.peers`.
    pub(crate) predicted: Vec<f64>,
    /// The level-bucketed kernel's accumulators.
    pub(crate) kernel: KernelScratch,
}

impl DecisionScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        DecisionScratch::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use score_topology::CanonicalTree;

    #[test]
    fn epoch_invalidates_between_decisions() {
        let topo = CanonicalTree::small();
        let mut k = KernelScratch::new();
        k.ensure_topology(&topo);
        k.begin();
        k.add_host(ServerId::new(3), 5.0);
        k.add_host(ServerId::new(3), 2.5);
        k.add_rack(1, 7.5);
        k.add_zone(0, 7.5);
        assert_eq!(k.host_sum(ServerId::new(3)), 7.5);
        assert_eq!(k.host_sum(ServerId::new(4)), 0.0);
        assert_eq!(k.rack_sum(1), 7.5);
        assert_eq!(k.zone_sum(0), 7.5);
        k.begin();
        assert_eq!(k.host_sum(ServerId::new(3)), 0.0, "new epoch, clean slate");
        assert_eq!(k.rack_sum(1), 0.0);
        assert_eq!(k.zone_sum(0), 0.0);
    }

    #[test]
    fn epoch_wrap_resets_marks() {
        let topo = CanonicalTree::small();
        let mut k = KernelScratch::new();
        k.ensure_topology(&topo);
        k.epoch = u32::MAX - 1;
        k.begin(); // -> MAX
        k.add_host(ServerId::new(0), 1.0);
        k.begin(); // wrap -> 1, marks reset
        assert_eq!(k.epoch, 1);
        assert_eq!(k.host_sum(ServerId::new(0)), 0.0);
    }
}
