//! Incremental Eq.-(2) cost accounting — the [`CostLedger`].
//!
//! The paper's headline claim is *scalability*: each migration decision
//! needs only the Lemma-3 delta, which is local to the moving VM. The
//! simulator's observability must match that property — sampling the
//! network-wide cost `C_A` at every tick by re-walking all VM pairs
//! (Eq. 2) is `O(pairs)` per sample and dominates the run time at the
//! paper's 2560-host scale.
//!
//! [`CostLedger`] keeps `C_A` as a running total instead:
//!
//! * **initialization** — one full Eq.-(2) pass ([`CostLedger::new`]);
//! * **migration** — every accepted move already computed its Lemma-3
//!   delta `ΔC`; [`CostLedger::apply_gain`] folds it in, making the
//!   update `O(1)` on top of the `O(|Vu|)` the decision itself paid;
//! * **traffic rebind** — when a phase swaps the traffic matrix under an
//!   unchanged allocation, [`CostLedger::rebind`] merge-joins the two
//!   canonical pair lists and only re-prices pairs whose rate actually
//!   changed (`O(changed pairs)` level lookups);
//! * **sampling** — [`CostLedger::current`] is a field read, `O(1)`.
//!
//! Lemma 3 guarantees the delta equals the difference of full
//! recomputations exactly; the ledger therefore tracks the true cost up
//! to floating-point rounding (pinned to ≤ 1e-9 relative by the property
//! suite in `tests/ledger_properties.rs`). When external code mutates
//! the allocation wholesale (centralized baselines via
//! `Cluster::set_allocation`), call [`CostLedger::resync`] to restore
//! the invariant with one full pass.

use std::cell::Cell;

use score_topology::{RackId, ServerId, Topology, VmId};
use score_traffic::PairTraffic;

use crate::allocation::Allocation;
use crate::cost::CostModel;

/// Per-subtree cost partials riding along with the ledger total.
///
/// Each pair's Eq.-(2) price `2·λ(u,v)·W(ℓ)` is split half/half between
/// the racks hosting its two endpoints; racks roll up into topology
/// *zones* (aggregation groups / pods, see [`Topology::num_zones`]).
/// Every sparse delta and migration touches only the racks on its own
/// path, so at 100k hosts the bookkeeping stays O(changed pairs) and
/// O(degree) instead of O(cluster). The merged sample is computed
/// lazily — shard mutations just poison a cached sum.
///
/// The shards are an *observability* surface: [`CostLedger::current`]
/// keeps its own byte-identical arithmetic and stays authoritative; the
/// invariant `|Σ shards − total| ≤ 1e-9·|total|` is pinned by tests.
#[derive(Debug, Clone)]
struct LedgerShards {
    /// Half-price cost mass attributed to each rack.
    per_rack: Vec<f64>,
    /// Rack masses rolled up per topology zone.
    per_zone: Vec<f64>,
    /// Rack → zone map, cached off the topology at build time.
    zone_of_rack: Vec<u32>,
    /// Lazily merged Σ-over-zones sample; poisoned on every mutation.
    merged: Cell<Option<f64>>,
}

impl LedgerShards {
    /// Adds `price_delta` split half/half between two racks (and their
    /// zones), poisoning the merged cache.
    fn attribute_racks(&mut self, ra: RackId, rb: RackId, price_delta: f64) {
        let half = 0.5 * price_delta;
        self.per_rack[ra.index()] += half;
        self.per_rack[rb.index()] += half;
        self.per_zone[self.zone_of_rack[ra.index()] as usize] += half;
        self.per_zone[self.zone_of_rack[rb.index()] as usize] += half;
        self.merged.set(None);
    }

    /// Attributes a pair's price delta via its endpoints' current racks.
    fn attribute_pair<T: Topology + ?Sized>(
        &mut self,
        alloc: &Allocation,
        topo: &T,
        u: VmId,
        v: VmId,
        price_delta: f64,
    ) {
        let ra = topo.rack_of(alloc.server_of(u));
        let rb = topo.rack_of(alloc.server_of(v));
        self.attribute_racks(ra, rb, price_delta);
    }

    /// The lazily merged Σ-over-zones sample.
    fn merged_total(&self) -> f64 {
        if let Some(m) = self.merged.get() {
            return m;
        }
        let sum: f64 = self.per_zone.iter().sum();
        self.merged.set(Some(sum));
        sum
    }
}

/// Incrementally maintained network-wide communication cost `C_A`
/// (see the module docs).
#[derive(Debug, Clone)]
pub struct CostLedger {
    model: CostModel,
    total: f64,
    resyncs: u64,
    /// Optional per-rack/zone partials (see [`LedgerShards`]).
    shards: Option<LedgerShards>,
    obs: Option<LedgerObs>,
}

/// Pre-resolved instruments attached via [`CostLedger::attach_obs`].
///
/// The delta hot path only bumps the plain `pending_*` fields (no atomics —
/// an attached ledger must stay within a few percent of bare sparse-delta
/// throughput); the shared counters, the cost gauge, and the O(zones)
/// shard-drift gauge are all settled when the driver calls
/// [`CostLedger::publish_obs`] at its sampling cadence.
#[derive(Debug, Clone)]
struct LedgerObs {
    /// `score_ledger_cost`: the current authoritative `C_A`.
    cost: std::sync::Arc<score_obs::Gauge>,
    /// `score_ledger_delta_batches_total`: sparse delta batches applied.
    delta_batches: std::sync::Arc<score_obs::Counter>,
    /// `score_ledger_pairs_repriced_total`: pair rates re-priced.
    pairs_repriced: std::sync::Arc<score_obs::Counter>,
    /// `score_ledger_resyncs_total`: full-pass escape hatches paid.
    resyncs: std::sync::Arc<score_obs::Counter>,
    /// `score_ledger_shard_drift`: |sharded sum − authoritative total|.
    shard_drift: std::sync::Arc<score_obs::Gauge>,
    /// Delta batches applied since the last [`CostLedger::publish_obs`].
    pending_batches: u64,
    /// Pairs re-priced since the last [`CostLedger::publish_obs`].
    pending_pairs: u64,
}

impl CostLedger {
    /// Initializes the ledger with one full Eq.-(2) pass over `traffic`
    /// under `alloc`.
    pub fn new<T: Topology + ?Sized>(
        model: CostModel,
        alloc: &Allocation,
        traffic: &PairTraffic,
        topo: &T,
    ) -> Self {
        let total = model.total_cost(alloc, traffic, topo);
        CostLedger {
            model,
            total,
            resyncs: 0,
            shards: None,
            obs: None,
        }
    }

    /// Attaches observability: delta/resync counters plus cost and
    /// shard-drift gauges. Purely a side channel — the ledger's arithmetic
    /// (and therefore `total`) is bit-identical with or without it.
    /// Passing a disabled handle detaches.
    pub fn attach_obs(&mut self, handle: &score_obs::ObsHandle) {
        self.obs = if handle.is_enabled() {
            let obs = LedgerObs {
                cost: handle.gauge("score_ledger_cost").unwrap(),
                delta_batches: handle.counter("score_ledger_delta_batches_total").unwrap(),
                pairs_repriced: handle.counter("score_ledger_pairs_repriced_total").unwrap(),
                resyncs: handle.counter("score_ledger_resyncs_total").unwrap(),
                shard_drift: handle.gauge("score_ledger_shard_drift").unwrap(),
                pending_batches: 0,
                pending_pairs: 0,
            };
            obs.cost.set(self.total);
            Some(obs)
        } else {
            None
        };
    }

    /// Settles the instruments the delta hot path deliberately defers: the
    /// pending batch/pair counts are flushed into their shared counters, the
    /// cost gauge is refreshed, and (when sharded) the O(zones) shard-drift
    /// merge runs. Called by the simulation driver at its sampling cadence,
    /// never on the delta hot path. No-op when detached.
    pub fn publish_obs(&mut self) {
        let drift = self.shards.is_some().then(|| self.shard_drift());
        if let Some(obs) = &mut self.obs {
            if obs.pending_batches > 0 {
                obs.delta_batches.add(obs.pending_batches);
                obs.pairs_repriced.add(obs.pending_pairs);
                obs.pending_batches = 0;
                obs.pending_pairs = 0;
            }
            obs.cost.set(self.total);
            if let Some(d) = drift {
                obs.shard_drift.set(d);
            }
        }
    }

    /// Builds the per-rack/zone partials with one full pair pass.
    fn build_shards<T: Topology + ?Sized>(
        model: &CostModel,
        alloc: &Allocation,
        traffic: &PairTraffic,
        topo: &T,
    ) -> LedgerShards {
        let weights = model.weights();
        let num_racks = topo.num_racks();
        let zone_of_rack: Vec<u32> = (0..num_racks as u32)
            .map(|r| topo.zone_of_rack(RackId::new(r)))
            .collect();
        let mut per_rack = vec![0.0f64; num_racks];
        for (u, v, rate) in traffic.pairs() {
            let (su, sv) = (alloc.server_of(u), alloc.server_of(v));
            let price = 2.0 * rate * weights.prefix(topo.level(su, sv));
            per_rack[topo.rack_of(su).index()] += 0.5 * price;
            per_rack[topo.rack_of(sv).index()] += 0.5 * price;
        }
        let mut per_zone = vec![0.0f64; topo.num_zones()];
        for (r, &mass) in per_rack.iter().enumerate() {
            per_zone[zone_of_rack[r] as usize] += mass;
        }
        LedgerShards {
            per_rack,
            per_zone,
            zone_of_rack,
            merged: Cell::new(None),
        }
    }

    /// Turns on per-rack/zone cost sharding, paying one full pair pass
    /// to seed the partials. From here on every sparse delta, rebind
    /// and [`CostLedger::apply_migration_shards`] call keeps the shards
    /// in step; `total` remains the authoritative (byte-identical)
    /// ledger value and the shards stay within 1e-9 relative of it.
    pub fn enable_sharding<T: Topology + ?Sized>(
        &mut self,
        alloc: &Allocation,
        traffic: &PairTraffic,
        topo: &T,
    ) {
        self.shards = Some(Self::build_shards(&self.model, alloc, traffic, topo));
    }

    /// True when per-rack/zone partials are being maintained.
    pub fn sharding_enabled(&self) -> bool {
        self.shards.is_some()
    }

    /// Cost mass currently attributed to rack `r` (half of each
    /// endpoint pair's Eq.-(2) price).
    ///
    /// # Panics
    ///
    /// Panics if sharding is not enabled or `r` is out of range.
    pub fn rack_cost(&self, r: RackId) -> f64 {
        let shards = self.shards.as_ref().expect("sharding not enabled");
        shards.per_rack[r.index()]
    }

    /// Cost mass currently attributed to topology zone `zone`.
    ///
    /// # Panics
    ///
    /// Panics if sharding is not enabled or `zone` is out of range.
    pub fn zone_cost(&self, zone: u32) -> f64 {
        let shards = self.shards.as_ref().expect("sharding not enabled");
        shards.per_zone[zone as usize]
    }

    /// The merged Σ-over-zones sample, computed lazily (mutations only
    /// poison a cached sum; the O(zones) merge is paid at sample time).
    ///
    /// # Panics
    ///
    /// Panics if sharding is not enabled.
    pub fn sharded_total(&self) -> f64 {
        self.shards
            .as_ref()
            .expect("sharding not enabled")
            .merged_total()
    }

    /// Absolute difference between the merged shard sample and the
    /// authoritative total — the shard-coherence invariant tests pin to
    /// ≤ 1e-9 relative.
    ///
    /// # Panics
    ///
    /// Panics if sharding is not enabled.
    pub fn shard_drift(&self) -> f64 {
        (self.sharded_total() - self.total).abs()
    }

    /// The current network-wide cost `C_A` — `O(1)`.
    pub fn current(&self) -> f64 {
        self.total
    }

    /// The cost model whose weights price the ledger.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Folds in the Lemma-3 gain of an accepted migration: the move
    /// reduced `C_A` by exactly `gain`. Passing the `0.0` gain of a
    /// declined decision is a no-op, so callers can apply every
    /// `MigrationDecision` unconditionally.
    pub fn apply_gain(&mut self, gain: f64) {
        self.total -= gain;
        if let Some(obs) = &self.obs {
            obs.cost.set(self.total);
        }
    }

    /// Re-attributes a performed migration's cost mass across the rack
    /// shards: VM `vm` moved `from → to` while its peers stayed put, so
    /// only the racks on the migration's path (source, target, and each
    /// peer's rack) change — `O(degree)` shard touches, never a cluster
    /// sweep. `alloc` is the *post-move* allocation (the peers' servers
    /// are the same either way).
    ///
    /// A no-op when sharding is disabled or `from == to`. The
    /// authoritative `total` is **not** touched — callers fold the
    /// Lemma-3 gain in via [`CostLedger::apply_gain`] exactly as
    /// before, which keeps the total byte-identical to the unsharded
    /// ledger.
    pub fn apply_migration_shards<T: Topology + ?Sized>(
        &mut self,
        vm: VmId,
        from: ServerId,
        to: ServerId,
        alloc: &Allocation,
        traffic: &PairTraffic,
        topo: &T,
    ) {
        let Some(mut shards) = self.shards.take() else {
            return;
        };
        if from != to {
            let weights = self.model.weights();
            let (rack_from, rack_to) = (topo.rack_of(from), topo.rack_of(to));
            for &(peer, rate) in traffic.peers(vm) {
                let sp = alloc.server_of(peer);
                let rp = topo.rack_of(sp);
                let old_price = 2.0 * rate * weights.prefix(topo.level(from, sp));
                let new_price = 2.0 * rate * weights.prefix(topo.level(to, sp));
                shards.attribute_racks(rack_from, rp, -old_price);
                shards.attribute_racks(rack_to, rp, new_price);
            }
        }
        self.shards = Some(shards);
    }

    /// Rescales the ledger for a dense `ScaleAll` traffic event: `C_A`
    /// is linear in `λ`, so multiplying every rate by `factor` scales
    /// the total (and every shard partial) by exactly `factor` — no
    /// pair walk at all. Saturates at `f64::MAX` like the rate sweep in
    /// `PairTraffic::scale_all_in_place`.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is positive and finite.
    pub fn scale(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive and finite, got {factor}"
        );
        self.total = (self.total * factor).min(f64::MAX);
        if let Some(shards) = self.shards.as_mut() {
            for mass in &mut shards.per_rack {
                *mass = (*mass * factor).min(f64::MAX);
            }
            for mass in &mut shards.per_zone {
                *mass = (*mass * factor).min(f64::MAX);
            }
            shards.merged.set(None);
        }
    }

    /// Re-prices the ledger for a traffic rebind: `old` is replaced by
    /// `new` while the allocation stays fixed. Merge-joins the two
    /// canonical (sorted, `u < v`) pair lists and adjusts the total only
    /// for pairs whose rate changed, appeared, or disappeared — level
    /// lookups are paid per *changed* pair, not per pair.
    ///
    /// Both traffic matrices must describe the same VM population.
    pub fn rebind<T: Topology + ?Sized>(
        &mut self,
        alloc: &Allocation,
        old: &PairTraffic,
        new: &PairTraffic,
        topo: &T,
    ) {
        debug_assert_eq!(old.num_vms(), new.num_vms(), "populations must match");
        let mut shards = self.shards.take();
        let weights = self.model.weights();
        let price = |u: score_topology::VmId, v: score_topology::VmId, rate: f64| {
            2.0 * rate * weights.prefix(topo.level(alloc.server_of(u), alloc.server_of(v)))
        };
        let note = |shards: &mut Option<LedgerShards>, u, v, price_delta: f64| {
            if let Some(s) = shards.as_mut() {
                s.attribute_pair(alloc, topo, u, v, price_delta);
            }
        };
        let (old_pairs, new_pairs) = (old.pairs(), new.pairs());
        let (mut i, mut j) = (0, 0);
        let mut delta = 0.0;
        while i < old_pairs.len() && j < new_pairs.len() {
            let (ou, ov, or) = old_pairs[i];
            let (nu, nv, nr) = new_pairs[j];
            match (ou, ov).cmp(&(nu, nv)) {
                std::cmp::Ordering::Less => {
                    let p = price(ou, ov, or);
                    delta -= p;
                    note(&mut shards, ou, ov, -p);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    let p = price(nu, nv, nr);
                    delta += p;
                    note(&mut shards, nu, nv, p);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    if or != nr {
                        let p = price(nu, nv, nr - or);
                        delta += p;
                        note(&mut shards, nu, nv, p);
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        for &(u, v, r) in &old_pairs[i..] {
            let p = price(u, v, r);
            delta -= p;
            note(&mut shards, u, v, -p);
        }
        for &(u, v, r) in &new_pairs[j..] {
            let p = price(u, v, r);
            delta += p;
            note(&mut shards, u, v, p);
        }
        self.total += delta;
        self.shards = shards;
    }

    /// Re-prices the ledger for a **sparse** traffic delta: each entry
    /// is one changed pair `(u, v, old_rate, new_rate)` under an
    /// unchanged allocation. Strictly `O(changed pairs)` — unlike
    /// [`CostLedger::rebind`], the untouched pair lists are never
    /// walked, which is what makes trace replay (hundreds of mid-run
    /// deltas) cheap.
    ///
    /// The caller is responsible for `old_rate` being the rate the
    /// ledger last priced for that pair (trace replay reads it off the
    /// outgoing `PairTraffic` before swapping the new one in).
    pub fn apply_rate_changes<T: Topology + ?Sized>(
        &mut self,
        alloc: &Allocation,
        changes: &[(score_topology::VmId, score_topology::VmId, f64, f64)],
        topo: &T,
    ) {
        let mut shards = self.shards.take();
        let weights = self.model.weights();
        let mut delta = 0.0;
        for &(u, v, old, new) in changes {
            let (su, sv) = (alloc.server_of(u), alloc.server_of(v));
            let level = topo.level(su, sv);
            let price = 2.0 * (new - old) * weights.prefix(level);
            delta += price;
            if let Some(s) = shards.as_mut() {
                s.attribute_racks(topo.rack_of(su), topo.rack_of(sv), price);
            }
        }
        self.total += delta;
        self.shards = shards;
        // Hot path: two plain adds, no atomics — the shared counters and the
        // cost gauge are settled at the publish_obs cadence instead.
        if let Some(obs) = &mut self.obs {
            obs.pending_batches += 1;
            obs.pending_pairs += changes.len() as u64;
        }
    }

    /// Discards the running total and recomputes it with one full
    /// Eq.-(2) pass — the escape hatch after wholesale allocation
    /// replacement (e.g. a centralized baseline rewrote the placement
    /// behind the ledger's back).
    pub fn resync<T: Topology + ?Sized>(
        &mut self,
        alloc: &Allocation,
        traffic: &PairTraffic,
        topo: &T,
    ) {
        self.total = self.model.total_cost(alloc, traffic, topo);
        if self.shards.is_some() {
            self.shards = Some(Self::build_shards(&self.model, alloc, traffic, topo));
        }
        self.resyncs += 1;
        if let Some(obs) = &self.obs {
            obs.resyncs.inc();
            obs.cost.set(self.total);
        }
    }

    /// Number of full-pass resyncs this ledger has paid — the counter a
    /// trace-replay test pins to zero to prove every delta took the
    /// sparse path.
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// Absolute difference between the ledger and a fresh full
    /// recomputation — the drift a test pins to (near) zero.
    pub fn drift<T: Topology + ?Sized>(
        &self,
        alloc: &Allocation,
        traffic: &PairTraffic,
        topo: &T,
    ) -> f64 {
        (self.total - self.model.total_cost(alloc, traffic, topo)).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use score_topology::{CanonicalTree, ServerId, VmId};
    use score_traffic::PairTrafficBuilder;

    fn topo() -> CanonicalTree {
        CanonicalTree::small()
    }

    fn traffic() -> PairTraffic {
        let mut b = PairTrafficBuilder::new(4);
        b.add(VmId::new(0), VmId::new(1), 10.0);
        b.add(VmId::new(0), VmId::new(2), 5.0);
        b.add(VmId::new(2), VmId::new(3), 1.0);
        b.build()
    }

    fn alloc() -> Allocation {
        let servers = [0u32, 1, 4, 8];
        Allocation::from_fn(4, 16, |vm| ServerId::new(servers[vm.index()]))
    }

    #[test]
    fn initialization_matches_full_pass() {
        let (a, t, topo) = (alloc(), traffic(), topo());
        let model = CostModel::paper_default();
        let ledger = CostLedger::new(model.clone(), &a, &t, &topo);
        assert_eq!(ledger.current(), model.total_cost(&a, &t, &topo));
        assert_eq!(ledger.drift(&a, &t, &topo), 0.0);
    }

    #[test]
    fn gains_track_migrations() {
        let (mut a, t, topo) = (alloc(), traffic(), topo());
        let model = CostModel::paper_default();
        let mut ledger = CostLedger::new(model.clone(), &a, &t, &topo);
        // Move vm0 next to vm2 and fold the Lemma-3 delta in.
        let delta = model.migration_delta(VmId::new(0), ServerId::new(4), &a, &t, &topo);
        a.move_vm(VmId::new(0), ServerId::new(4));
        ledger.apply_gain(delta);
        assert!(ledger.drift(&a, &t, &topo) < 1e-9);
        // A declined decision's 0.0 gain is a no-op.
        let before = ledger.current();
        ledger.apply_gain(0.0);
        assert_eq!(ledger.current(), before);
    }

    #[test]
    fn rebind_reprices_changed_pairs_only() {
        let (a, t, topo) = (alloc(), traffic(), topo());
        let model = CostModel::paper_default();
        let mut ledger = CostLedger::new(model.clone(), &a, &t, &topo);
        // New matrix: one pair kept, one re-rated, one dropped, one added.
        let mut b = PairTrafficBuilder::new(4);
        b.add(VmId::new(0), VmId::new(1), 10.0); // kept
        b.add(VmId::new(0), VmId::new(2), 7.0); // re-rated
        b.add(VmId::new(1), VmId::new(3), 4.0); // added; (2,3) dropped
        let new = b.build();
        ledger.rebind(&a, &t, &new, &topo);
        assert!(
            (ledger.current() - model.total_cost(&a, &new, &topo)).abs() < 1e-9,
            "rebind must land on the full recomputation"
        );
    }

    #[test]
    fn rebind_to_empty_and_back() {
        let (a, t, topo) = (alloc(), traffic(), topo());
        let model = CostModel::paper_default();
        let mut ledger = CostLedger::new(model.clone(), &a, &t, &topo);
        let empty = PairTraffic::empty(4);
        ledger.rebind(&a, &t, &empty, &topo);
        assert_eq!(ledger.current(), 0.0);
        ledger.rebind(&a, &empty, &t, &topo);
        assert!(ledger.drift(&a, &t, &topo) < 1e-9);
    }

    #[test]
    fn sparse_rate_changes_match_full_recomputation() {
        let (a, t, topo) = (alloc(), traffic(), topo());
        let model = CostModel::paper_default();
        let mut ledger = CostLedger::new(model.clone(), &a, &t, &topo);
        // Replace (0,1), remove (0,2), add (1,3).
        let changes = [
            (VmId::new(0), VmId::new(1), 10.0, 25.0),
            (VmId::new(0), VmId::new(2), 5.0, 0.0),
            (VmId::new(1), VmId::new(3), 0.0, 4.0),
        ];
        ledger.apply_rate_changes(&a, &changes, &topo);
        let mut b = PairTrafficBuilder::new(4);
        b.add(VmId::new(0), VmId::new(1), 25.0);
        b.add(VmId::new(1), VmId::new(3), 4.0);
        b.add(VmId::new(2), VmId::new(3), 1.0);
        let new = b.build();
        let fresh = model.total_cost(&a, &new, &topo);
        assert!(
            (ledger.current() - fresh).abs() <= 1e-9 * fresh.max(1.0),
            "sparse re-pricing must land on the full recomputation"
        );
        // No full pass was paid.
        assert_eq!(ledger.resyncs(), 0);
        // An empty change list is a no-op.
        let before = ledger.current();
        ledger.apply_rate_changes(&a, &[], &topo);
        assert_eq!(ledger.current(), before);
    }

    /// The shard-coherence invariant: merged shard sample within 1e-9
    /// relative of the authoritative total.
    fn assert_shards_coherent(ledger: &CostLedger) {
        let tol = 1e-9 * ledger.current().abs().max(1.0);
        assert!(
            ledger.shard_drift() <= tol,
            "shard drift {} exceeds {tol} (total {})",
            ledger.shard_drift(),
            ledger.current()
        );
    }

    #[test]
    fn shards_partition_the_total() {
        let (a, t, topo) = (alloc(), traffic(), topo());
        let mut ledger = CostLedger::new(CostModel::paper_default(), &a, &t, &topo);
        assert!(!ledger.sharding_enabled());
        ledger.enable_sharding(&a, &t, &topo);
        assert!(ledger.sharding_enabled());
        assert_shards_coherent(&ledger);
        // Zone rollups partition the rack masses.
        let rack_sum: f64 = topo.racks().map(|r| ledger.rack_cost(r)).sum();
        let zone_sum: f64 = (0..topo.num_zones() as u32)
            .map(|z| ledger.zone_cost(z))
            .sum();
        assert!((rack_sum - zone_sum).abs() <= 1e-9 * rack_sum.abs().max(1.0));
    }

    #[test]
    fn shards_follow_sparse_deltas_and_rebinds() {
        let (a, t, topo) = (alloc(), traffic(), topo());
        let mut ledger = CostLedger::new(CostModel::paper_default(), &a, &t, &topo);
        ledger.enable_sharding(&a, &t, &topo);
        let changes = [
            (VmId::new(0), VmId::new(1), 10.0, 25.0),
            (VmId::new(0), VmId::new(2), 5.0, 0.0),
            (VmId::new(1), VmId::new(3), 0.0, 4.0),
        ];
        ledger.apply_rate_changes(&a, &changes, &topo);
        assert_shards_coherent(&ledger);
        // Rebind back onto the original matrix.
        let mut b = PairTrafficBuilder::new(4);
        b.add(VmId::new(0), VmId::new(1), 25.0);
        b.add(VmId::new(1), VmId::new(3), 4.0);
        b.add(VmId::new(2), VmId::new(3), 1.0);
        let cur = b.build();
        ledger.rebind(&a, &cur, &t, &topo);
        assert_shards_coherent(&ledger);
        assert_eq!(ledger.resyncs(), 0, "no full pass on the sharded path");
    }

    #[test]
    fn shards_follow_migrations_and_scaling() {
        let (mut a, t, topo) = (alloc(), traffic(), topo());
        let model = CostModel::paper_default();
        let mut ledger = CostLedger::new(model.clone(), &a, &t, &topo);
        ledger.enable_sharding(&a, &t, &topo);
        // Perform a migration exactly as the ring does: shard update
        // with the post-move allocation, then the Lemma-3 gain.
        let (vm, from, to) = (VmId::new(0), ServerId::new(0), ServerId::new(4));
        let gain = model.migration_delta(vm, to, &a, &t, &topo);
        a.move_vm(vm, to);
        ledger.apply_migration_shards(vm, from, to, &a, &t, &topo);
        ledger.apply_gain(gain);
        assert!(ledger.drift(&a, &t, &topo) < 1e-9);
        assert_shards_coherent(&ledger);
        // A dense ScaleAll is a pure multiply on total and shards.
        ledger.scale(3.5);
        assert_shards_coherent(&ledger);
        // Resync rebuilds the partials along with the total.
        ledger.resync(&a, &t, &topo);
        assert_shards_coherent(&ledger);
        assert_eq!(ledger.resyncs(), 1);
    }

    #[test]
    #[should_panic(expected = "sharding not enabled")]
    fn sharded_accessors_require_enablement() {
        let (a, t, topo) = (alloc(), traffic(), topo());
        let ledger = CostLedger::new(CostModel::paper_default(), &a, &t, &topo);
        let _ = ledger.sharded_total();
    }

    #[test]
    fn resync_restores_after_external_mutation() {
        let (mut a, t, topo) = (alloc(), traffic(), topo());
        let mut ledger = CostLedger::new(CostModel::paper_default(), &a, &t, &topo);
        // Mutate the allocation without telling the ledger …
        a.move_vm(VmId::new(3), ServerId::new(0));
        assert!(ledger.drift(&a, &t, &topo) > 0.0);
        // … then resync.
        ledger.resync(&a, &t, &topo);
        assert_eq!(ledger.drift(&a, &t, &topo), 0.0);
    }
}
