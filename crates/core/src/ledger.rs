//! Incremental Eq.-(2) cost accounting — the [`CostLedger`].
//!
//! The paper's headline claim is *scalability*: each migration decision
//! needs only the Lemma-3 delta, which is local to the moving VM. The
//! simulator's observability must match that property — sampling the
//! network-wide cost `C_A` at every tick by re-walking all VM pairs
//! (Eq. 2) is `O(pairs)` per sample and dominates the run time at the
//! paper's 2560-host scale.
//!
//! [`CostLedger`] keeps `C_A` as a running total instead:
//!
//! * **initialization** — one full Eq.-(2) pass ([`CostLedger::new`]);
//! * **migration** — every accepted move already computed its Lemma-3
//!   delta `ΔC`; [`CostLedger::apply_gain`] folds it in, making the
//!   update `O(1)` on top of the `O(|Vu|)` the decision itself paid;
//! * **traffic rebind** — when a phase swaps the traffic matrix under an
//!   unchanged allocation, [`CostLedger::rebind`] merge-joins the two
//!   canonical pair lists and only re-prices pairs whose rate actually
//!   changed (`O(changed pairs)` level lookups);
//! * **sampling** — [`CostLedger::current`] is a field read, `O(1)`.
//!
//! Lemma 3 guarantees the delta equals the difference of full
//! recomputations exactly; the ledger therefore tracks the true cost up
//! to floating-point rounding (pinned to ≤ 1e-9 relative by the property
//! suite in `tests/ledger_properties.rs`). When external code mutates
//! the allocation wholesale (centralized baselines via
//! `Cluster::set_allocation`), call [`CostLedger::resync`] to restore
//! the invariant with one full pass.

use score_topology::Topology;
use score_traffic::PairTraffic;

use crate::allocation::Allocation;
use crate::cost::CostModel;

/// Incrementally maintained network-wide communication cost `C_A`
/// (see the module docs).
#[derive(Debug, Clone)]
pub struct CostLedger {
    model: CostModel,
    total: f64,
    resyncs: u64,
}

impl CostLedger {
    /// Initializes the ledger with one full Eq.-(2) pass over `traffic`
    /// under `alloc`.
    pub fn new<T: Topology + ?Sized>(
        model: CostModel,
        alloc: &Allocation,
        traffic: &PairTraffic,
        topo: &T,
    ) -> Self {
        let total = model.total_cost(alloc, traffic, topo);
        CostLedger {
            model,
            total,
            resyncs: 0,
        }
    }

    /// The current network-wide cost `C_A` — `O(1)`.
    pub fn current(&self) -> f64 {
        self.total
    }

    /// The cost model whose weights price the ledger.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Folds in the Lemma-3 gain of an accepted migration: the move
    /// reduced `C_A` by exactly `gain`. Passing the `0.0` gain of a
    /// declined decision is a no-op, so callers can apply every
    /// `MigrationDecision` unconditionally.
    pub fn apply_gain(&mut self, gain: f64) {
        self.total -= gain;
    }

    /// Re-prices the ledger for a traffic rebind: `old` is replaced by
    /// `new` while the allocation stays fixed. Merge-joins the two
    /// canonical (sorted, `u < v`) pair lists and adjusts the total only
    /// for pairs whose rate changed, appeared, or disappeared — level
    /// lookups are paid per *changed* pair, not per pair.
    ///
    /// Both traffic matrices must describe the same VM population.
    pub fn rebind<T: Topology + ?Sized>(
        &mut self,
        alloc: &Allocation,
        old: &PairTraffic,
        new: &PairTraffic,
        topo: &T,
    ) {
        debug_assert_eq!(old.num_vms(), new.num_vms(), "populations must match");
        let weights = self.model.weights();
        let price = |u: score_topology::VmId, v: score_topology::VmId, rate: f64| {
            2.0 * rate * weights.prefix(topo.level(alloc.server_of(u), alloc.server_of(v)))
        };
        let (old_pairs, new_pairs) = (old.pairs(), new.pairs());
        let (mut i, mut j) = (0, 0);
        let mut delta = 0.0;
        while i < old_pairs.len() && j < new_pairs.len() {
            let (ou, ov, or) = old_pairs[i];
            let (nu, nv, nr) = new_pairs[j];
            match (ou, ov).cmp(&(nu, nv)) {
                std::cmp::Ordering::Less => {
                    delta -= price(ou, ov, or);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    delta += price(nu, nv, nr);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    if or != nr {
                        delta += price(nu, nv, nr - or);
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        for &(u, v, r) in &old_pairs[i..] {
            delta -= price(u, v, r);
        }
        for &(u, v, r) in &new_pairs[j..] {
            delta += price(u, v, r);
        }
        self.total += delta;
    }

    /// Re-prices the ledger for a **sparse** traffic delta: each entry
    /// is one changed pair `(u, v, old_rate, new_rate)` under an
    /// unchanged allocation. Strictly `O(changed pairs)` — unlike
    /// [`CostLedger::rebind`], the untouched pair lists are never
    /// walked, which is what makes trace replay (hundreds of mid-run
    /// deltas) cheap.
    ///
    /// The caller is responsible for `old_rate` being the rate the
    /// ledger last priced for that pair (trace replay reads it off the
    /// outgoing `PairTraffic` before swapping the new one in).
    pub fn apply_rate_changes<T: Topology + ?Sized>(
        &mut self,
        alloc: &Allocation,
        changes: &[(score_topology::VmId, score_topology::VmId, f64, f64)],
        topo: &T,
    ) {
        let weights = self.model.weights();
        let mut delta = 0.0;
        for &(u, v, old, new) in changes {
            let level = topo.level(alloc.server_of(u), alloc.server_of(v));
            delta += 2.0 * (new - old) * weights.prefix(level);
        }
        self.total += delta;
    }

    /// Discards the running total and recomputes it with one full
    /// Eq.-(2) pass — the escape hatch after wholesale allocation
    /// replacement (e.g. a centralized baseline rewrote the placement
    /// behind the ledger's back).
    pub fn resync<T: Topology + ?Sized>(
        &mut self,
        alloc: &Allocation,
        traffic: &PairTraffic,
        topo: &T,
    ) {
        self.total = self.model.total_cost(alloc, traffic, topo);
        self.resyncs += 1;
    }

    /// Number of full-pass resyncs this ledger has paid — the counter a
    /// trace-replay test pins to zero to prove every delta took the
    /// sparse path.
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// Absolute difference between the ledger and a fresh full
    /// recomputation — the drift a test pins to (near) zero.
    pub fn drift<T: Topology + ?Sized>(
        &self,
        alloc: &Allocation,
        traffic: &PairTraffic,
        topo: &T,
    ) -> f64 {
        (self.total - self.model.total_cost(alloc, traffic, topo)).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use score_topology::{CanonicalTree, ServerId, VmId};
    use score_traffic::PairTrafficBuilder;

    fn topo() -> CanonicalTree {
        CanonicalTree::small()
    }

    fn traffic() -> PairTraffic {
        let mut b = PairTrafficBuilder::new(4);
        b.add(VmId::new(0), VmId::new(1), 10.0);
        b.add(VmId::new(0), VmId::new(2), 5.0);
        b.add(VmId::new(2), VmId::new(3), 1.0);
        b.build()
    }

    fn alloc() -> Allocation {
        let servers = [0u32, 1, 4, 8];
        Allocation::from_fn(4, 16, |vm| ServerId::new(servers[vm.index()]))
    }

    #[test]
    fn initialization_matches_full_pass() {
        let (a, t, topo) = (alloc(), traffic(), topo());
        let model = CostModel::paper_default();
        let ledger = CostLedger::new(model.clone(), &a, &t, &topo);
        assert_eq!(ledger.current(), model.total_cost(&a, &t, &topo));
        assert_eq!(ledger.drift(&a, &t, &topo), 0.0);
    }

    #[test]
    fn gains_track_migrations() {
        let (mut a, t, topo) = (alloc(), traffic(), topo());
        let model = CostModel::paper_default();
        let mut ledger = CostLedger::new(model.clone(), &a, &t, &topo);
        // Move vm0 next to vm2 and fold the Lemma-3 delta in.
        let delta = model.migration_delta(VmId::new(0), ServerId::new(4), &a, &t, &topo);
        a.move_vm(VmId::new(0), ServerId::new(4));
        ledger.apply_gain(delta);
        assert!(ledger.drift(&a, &t, &topo) < 1e-9);
        // A declined decision's 0.0 gain is a no-op.
        let before = ledger.current();
        ledger.apply_gain(0.0);
        assert_eq!(ledger.current(), before);
    }

    #[test]
    fn rebind_reprices_changed_pairs_only() {
        let (a, t, topo) = (alloc(), traffic(), topo());
        let model = CostModel::paper_default();
        let mut ledger = CostLedger::new(model.clone(), &a, &t, &topo);
        // New matrix: one pair kept, one re-rated, one dropped, one added.
        let mut b = PairTrafficBuilder::new(4);
        b.add(VmId::new(0), VmId::new(1), 10.0); // kept
        b.add(VmId::new(0), VmId::new(2), 7.0); // re-rated
        b.add(VmId::new(1), VmId::new(3), 4.0); // added; (2,3) dropped
        let new = b.build();
        ledger.rebind(&a, &t, &new, &topo);
        assert!(
            (ledger.current() - model.total_cost(&a, &new, &topo)).abs() < 1e-9,
            "rebind must land on the full recomputation"
        );
    }

    #[test]
    fn rebind_to_empty_and_back() {
        let (a, t, topo) = (alloc(), traffic(), topo());
        let model = CostModel::paper_default();
        let mut ledger = CostLedger::new(model.clone(), &a, &t, &topo);
        let empty = PairTraffic::empty(4);
        ledger.rebind(&a, &t, &empty, &topo);
        assert_eq!(ledger.current(), 0.0);
        ledger.rebind(&a, &empty, &t, &topo);
        assert!(ledger.drift(&a, &t, &topo) < 1e-9);
    }

    #[test]
    fn sparse_rate_changes_match_full_recomputation() {
        let (a, t, topo) = (alloc(), traffic(), topo());
        let model = CostModel::paper_default();
        let mut ledger = CostLedger::new(model.clone(), &a, &t, &topo);
        // Replace (0,1), remove (0,2), add (1,3).
        let changes = [
            (VmId::new(0), VmId::new(1), 10.0, 25.0),
            (VmId::new(0), VmId::new(2), 5.0, 0.0),
            (VmId::new(1), VmId::new(3), 0.0, 4.0),
        ];
        ledger.apply_rate_changes(&a, &changes, &topo);
        let mut b = PairTrafficBuilder::new(4);
        b.add(VmId::new(0), VmId::new(1), 25.0);
        b.add(VmId::new(1), VmId::new(3), 4.0);
        b.add(VmId::new(2), VmId::new(3), 1.0);
        let new = b.build();
        let fresh = model.total_cost(&a, &new, &topo);
        assert!(
            (ledger.current() - fresh).abs() <= 1e-9 * fresh.max(1.0),
            "sparse re-pricing must land on the full recomputation"
        );
        // No full pass was paid.
        assert_eq!(ledger.resyncs(), 0);
        // An empty change list is a no-op.
        let before = ledger.current();
        ledger.apply_rate_changes(&a, &[], &topo);
        assert_eq!(ledger.current(), before);
    }

    #[test]
    fn resync_restores_after_external_mutation() {
        let (mut a, t, topo) = (alloc(), traffic(), topo());
        let mut ledger = CostLedger::new(CostModel::paper_default(), &a, &t, &topo);
        // Mutate the allocation without telling the ledger …
        a.move_vm(VmId::new(3), ServerId::new(0));
        assert!(ledger.drift(&a, &t, &topo) > 0.0);
        // … then resync.
        ledger.resync(&a, &t, &topo);
        assert_eq!(ledger.drift(&a, &t, &topo), 0.0);
    }
}
