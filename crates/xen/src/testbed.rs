//! Testbed experiment harnesses for Fig. 5b/5c/5d.
//!
//! The paper measured >100 real Xen migrations; these helpers run the
//! pre-copy model over the same experimental designs: the migrated-bytes
//! distribution, and the migration-time / downtime sweeps over background
//! CBR load.

use score_traffic::CbrLoad;
use serde::{Deserialize, Serialize};

use crate::livemig::{MigrationSample, PreCopyModel, SummaryStats};

/// One histogram bin of the Fig. 5b distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramBin {
    /// Bin center, in MB.
    pub center_mb: f64,
    /// Empirical probability of the bin.
    pub probability: f64,
    /// Sample count in the bin.
    pub count: usize,
}

/// Fig. 5b: distribution of migrated bytes over `n` idle-link migrations.
///
/// # Panics
///
/// Panics if `n == 0` or `bin_mb <= 0`.
pub fn migrated_bytes_histogram(
    model: &PreCopyModel,
    n: usize,
    bin_mb: f64,
    seed: u64,
) -> (Vec<HistogramBin>, SummaryStats) {
    assert!(n > 0, "need at least one migration");
    assert!(bin_mb > 0.0, "bin width must be positive");
    const MB: f64 = 1024.0 * 1024.0;
    let samples = model.migrate_many(CbrLoad::IDLE, n, seed);
    let mb: Vec<f64> = samples.iter().map(|s| s.migrated_bytes / MB).collect();
    let stats = SummaryStats::of(&mb);
    let lo = (stats.min / bin_mb).floor() * bin_mb;
    let bins = (((stats.max - lo) / bin_mb).floor() as usize) + 1;
    let mut counts = vec![0usize; bins];
    for &v in &mb {
        let idx = (((v - lo) / bin_mb) as usize).min(bins - 1);
        counts[idx] += 1;
    }
    let hist = counts
        .into_iter()
        .enumerate()
        .map(|(i, count)| HistogramBin {
            center_mb: lo + (i as f64 + 0.5) * bin_mb,
            probability: count as f64 / n as f64,
            count,
        })
        .collect();
    (hist, stats)
}

/// One point of the Fig. 5c/5d sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Background CBR load.
    pub load: f64,
    /// Total-migration-time statistics, seconds.
    pub time: SummaryStats,
    /// Downtime statistics, seconds.
    pub downtime: SummaryStats,
}

/// Fig. 5c + 5d: migration time and downtime vs background load, `n`
/// migrations per point over [`CbrLoad::paper_sweep`].
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn load_sweep(model: &PreCopyModel, n: usize, seed: u64) -> Vec<SweepPoint> {
    assert!(n > 0, "need at least one migration per point");
    CbrLoad::paper_sweep()
        .into_iter()
        .enumerate()
        .map(|(i, load)| {
            let samples = model.migrate_many(load, n, seed.wrapping_add(i as u64));
            summarize_point(load, &samples)
        })
        .collect()
}

fn summarize_point(load: CbrLoad, samples: &[MigrationSample]) -> SweepPoint {
    let times: Vec<f64> = samples.iter().map(|s| s.total_time_s).collect();
    let downs: Vec<f64> = samples.iter().map(|s| s.downtime_s).collect();
    SweepPoint {
        load: load.get(),
        time: SummaryStats::of(&times),
        downtime: SummaryStats::of(&downs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_covers_all_samples() {
        let model = PreCopyModel::default();
        let (hist, stats) = migrated_bytes_histogram(&model, 150, 5.0, 1);
        let total: usize = hist.iter().map(|b| b.count).sum();
        assert_eq!(total, 150);
        let prob: f64 = hist.iter().map(|b| b.probability).sum();
        assert!((prob - 1.0).abs() < 1e-9);
        assert!(stats.mean > 100.0 && stats.mean < 150.0);
        // Bin centers are ordered and spaced by the bin width.
        for w in hist.windows(2) {
            assert!((w[1].center_mb - w[0].center_mb - 5.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sweep_shape_matches_paper() {
        let model = PreCopyModel::default();
        let sweep = load_sweep(&model, 60, 2);
        assert_eq!(sweep.len(), 11);
        // Times increase with load; downtime stays under 50 ms.
        for w in sweep.windows(2) {
            assert!(w[1].time.mean > w[0].time.mean, "time not monotone");
        }
        for p in &sweep {
            assert!(
                p.downtime.max < 0.050,
                "downtime {} ms",
                p.downtime.max * 1e3
            );
        }
        // Endpoints near the paper's values.
        assert!((sweep[0].time.mean - 2.94).abs() < 0.5);
        assert!((sweep[10].time.mean - 9.34).abs() < 1.6);
    }

    #[test]
    #[should_panic(expected = "at least one migration")]
    fn empty_histogram_rejected() {
        let _ = migrated_bytes_histogram(&PreCopyModel::default(), 0, 5.0, 1);
    }
}
