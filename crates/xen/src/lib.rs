//! Xen-testbed substitute for the S-CORE reproduction (paper §V-B, §VI-C).
//!
//! The paper implements S-CORE inside dom0 of the Xen hypervisor and
//! evaluates migration overheads on a physical testbed. This crate
//! reproduces the pieces of that deployment that the evaluation depends
//! on, as calibrated models and in-process machinery:
//!
//! * [`livemig`] — the pre-copy live-migration model (Clark et al.,
//!   NSDI'05) with dirty-page feedback, producing the migrated-bytes
//!   distribution (Fig. 5b), total migration times (Fig. 5c) and
//!   stop-and-copy downtimes (Fig. 5d) under CBR background load;
//! * [`messages`] — the dom0 control plane: token listener + NAT
//!   redirects, location probes and capacity probes (§V-B2/4/5) with
//!   message accounting;
//! * [`testbed`] — harnesses running the Fig. 5 experimental designs.
//!
//! Substitution note (see DESIGN.md): we do not have the paper's Intel P4
//! testbed; the model's constants are calibrated to the paper's published
//! measurements (127 ± 11 MB migrated, 2.94 s / 4.29 s / 9.34 s total
//! times, < 50 ms downtime) and its *mechanisms* (geometric pre-copy
//! rounds, stop-and-copy residue) are implemented faithfully, so the
//! shape of every Fig. 5 curve derives from mechanism, not curve-fitting.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod livemig;
pub mod messages;
pub mod testbed;

pub use livemig::{
    migration_throughput_fraction, MigrationSample, PreCopyConfig, PreCopyModel, SummaryStats,
};
pub use messages::{ControlPlane, Dom0Message, MessageStats, UnroutableError};
pub use testbed::{load_sweep, migrated_bytes_histogram, HistogramBin, SweepPoint};
