//! Pre-copy live-migration model (the Xen testbed substitute).
//!
//! The paper's testbed (§VI-C) measures real Xen 4.1 migrations of 196 MB
//! VMs over 1 GbE with NFS-backed images ("only transferring of memory
//! state is needed"): migrated bytes of 127 MB ± 11 MB (all below 150 MB),
//! total migration time from 2.94 s (idle) through 4.29 s (100 Mb/s CBR)
//! to 9.34 s (saturated link), and stop-and-copy downtime below 50 ms.
//!
//! We model the pre-copy protocol of Clark et al. (NSDI'05), which Xen
//! implements:
//!
//! 1. an initial round copies all non-zero/non-ballooned pages;
//! 2. each subsequent round copies the pages dirtied during the previous
//!    round (a geometric series when `dirty rate < bandwidth`);
//! 3. when the residue falls below a threshold (or rounds are exhausted),
//!    the VM is suspended and the residue plus CPU state is copied — the
//!    *downtime* — then resumed on the target.
//!
//! The migration stream's achievable throughput under competing CBR load
//! is taken from the paper's own three measured operating points
//! ([`migration_throughput_fraction`]).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use score_traffic::dist::standard_normal;
use score_traffic::CbrLoad;
use serde::{Deserialize, Serialize};

/// Fraction of the link rate a TCP migration stream achieves against CBR
/// background traffic of intensity `load`.
///
/// Piecewise-linear fit through the paper's measured points: idle → full
/// rate; 10% CBR → the rate implied by 4.29 s total time; saturated → the
/// rate implied by 9.34 s. The sharp initial drop reflects how an open-loop
/// CBR source disproportionately punishes a congestion-controlled stream.
pub fn migration_throughput_fraction(load: CbrLoad) -> f64 {
    let x = load.get();
    if x <= 0.1 {
        1.0 - 5.5 * x
    } else {
        0.45 - 0.344 * (x - 0.1)
    }
}

/// Parameters of the pre-copy model, calibrated to the paper's testbed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PreCopyConfig {
    /// VM memory size in bytes (paper: 196 MB).
    pub ram_bytes: f64,
    /// Mean fraction of pages skipped in round 0 (zero/ballooned pages).
    pub skip_fraction_mean: f64,
    /// Standard deviation of the skip fraction (drives the Fig. 5b
    /// spread).
    pub skip_fraction_std: f64,
    /// Mean page-dirty rate in bytes/s while migrating (the testbed VMs
    /// run light HTTP/iperf service loads).
    pub dirty_rate_mean: f64,
    /// Standard deviation of the dirty rate.
    pub dirty_rate_std: f64,
    /// Residue threshold that triggers stop-and-copy.
    pub stop_threshold_bytes: f64,
    /// Maximum pre-copy rounds before forcing stop-and-copy.
    pub max_rounds: u32,
    /// Migration setup overhead (handshake, resource reservation) in
    /// seconds.
    pub setup_s: f64,
    /// Suspend/resume overhead added to the downtime, seconds (mean).
    pub suspend_overhead_mean_s: f64,
    /// Jitter of the suspend/resume overhead, seconds (half-width).
    pub suspend_overhead_jitter_s: f64,
    /// Link capacity in bits per second.
    pub link_bps: f64,
}

impl PreCopyConfig {
    /// The paper's testbed: 196 MB VMs on 1 GbE.
    pub fn paper_default() -> Self {
        PreCopyConfig {
            ram_bytes: 196.0 * 1024.0 * 1024.0,
            skip_fraction_mean: 0.37,
            skip_fraction_std: 0.054,
            dirty_rate_mean: 1.6e6,
            dirty_rate_std: 0.8e6,
            stop_threshold_bytes: 512.0 * 1024.0,
            max_rounds: 30,
            setup_s: 1.85,
            suspend_overhead_mean_s: 0.009,
            suspend_overhead_jitter_s: 0.003,
            link_bps: 1e9,
        }
    }
}

impl Default for PreCopyConfig {
    fn default() -> Self {
        PreCopyConfig::paper_default()
    }
}

/// Result of one simulated migration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationSample {
    /// Total bytes pushed over the network (all rounds + stop-and-copy).
    pub migrated_bytes: f64,
    /// Wall-clock migration time in seconds, including setup.
    pub total_time_s: f64,
    /// Stop-and-copy downtime in seconds.
    pub downtime_s: f64,
    /// Pre-copy rounds executed (excluding the stop-and-copy).
    pub rounds: u32,
}

/// The pre-copy simulator.
///
/// # Examples
///
/// ```
/// use score_traffic::CbrLoad;
/// use score_xen::{PreCopyModel, SummaryStats};
///
/// let model = PreCopyModel::default();
/// let samples = model.migrate_many(CbrLoad::IDLE, 100, 7);
/// let times: Vec<f64> = samples.iter().map(|s| s.total_time_s).collect();
/// let stats = SummaryStats::of(&times);
/// // An idle 1 GbE link migrates a 196 MB VM in about three seconds.
/// assert!(stats.mean > 2.0 && stats.mean < 4.0);
/// ```
#[derive(Debug, Clone)]
pub struct PreCopyModel {
    config: PreCopyConfig,
}

impl PreCopyModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics on non-positive RAM or link capacity.
    pub fn new(config: PreCopyConfig) -> Self {
        assert!(config.ram_bytes > 0.0, "RAM must be positive");
        assert!(config.link_bps > 0.0, "link capacity must be positive");
        assert!(config.max_rounds >= 1, "need at least one round");
        PreCopyModel { config }
    }

    /// The configuration.
    pub fn config(&self) -> &PreCopyConfig {
        &self.config
    }

    /// Simulates one migration under the given background load.
    pub fn migrate<R: Rng + ?Sized>(&self, load: CbrLoad, rng: &mut R) -> MigrationSample {
        let c = &self.config;
        let rate_bytes = (c.link_bps / 8.0) * migration_throughput_fraction(load).max(0.01);

        // Round 0 working set: RAM minus skipped pages.
        let skip =
            (c.skip_fraction_mean + c.skip_fraction_std * standard_normal(rng)).clamp(0.05, 0.75);
        let initial = c.ram_bytes * (1.0 - skip);
        let dirty_rate =
            (c.dirty_rate_mean + c.dirty_rate_std * standard_normal(rng)).clamp(0.1e6, 50e6);

        let mut remaining = initial;
        let mut migrated = 0.0;
        let mut time = c.setup_s;
        let mut rounds = 0u32;
        loop {
            // Copy the current residue; pages dirty while we copy.
            let round_time = remaining / rate_bytes;
            migrated += remaining;
            time += round_time;
            rounds += 1;
            let dirtied = (dirty_rate * round_time).min(initial);
            if dirtied <= c.stop_threshold_bytes || rounds >= c.max_rounds || dirtied >= remaining {
                remaining = dirtied;
                break;
            }
            remaining = dirtied;
        }

        // Stop-and-copy: suspend, push the residue and CPU state, resume.
        let overhead = c.suspend_overhead_mean_s
            + rng.gen_range(-c.suspend_overhead_jitter_s..=c.suspend_overhead_jitter_s);
        let downtime = remaining / rate_bytes + overhead.max(0.001);
        migrated += remaining;
        time += downtime;

        MigrationSample {
            migrated_bytes: migrated,
            total_time_s: time,
            downtime_s: downtime,
            rounds,
        }
    }

    /// Simulates `n` migrations with a fresh deterministic RNG.
    pub fn migrate_many(&self, load: CbrLoad, n: usize, seed: u64) -> Vec<MigrationSample> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| self.migrate(load, &mut rng)).collect()
    }
}

impl Default for PreCopyModel {
    fn default() -> Self {
        PreCopyModel::new(PreCopyConfig::paper_default())
    }
}

/// Mean / standard deviation / extrema of a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SummaryStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl SummaryStats {
    /// Computes statistics over `values`.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "no samples");
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        SummaryStats {
            mean,
            std: var.sqrt(),
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: f64 = 1024.0 * 1024.0;

    #[test]
    fn throughput_fraction_matches_paper_points() {
        assert!((migration_throughput_fraction(CbrLoad::IDLE) - 1.0).abs() < 1e-12);
        let at_10 = migration_throughput_fraction(CbrLoad::new(0.1));
        assert!((at_10 - 0.45).abs() < 1e-9);
        let at_full = migration_throughput_fraction(CbrLoad::new(1.0));
        assert!(at_full > 0.1 && at_full < 0.15);
        // Monotone decreasing.
        let sweep = CbrLoad::paper_sweep();
        for w in sweep.windows(2) {
            assert!(migration_throughput_fraction(w[1]) < migration_throughput_fraction(w[0]));
        }
    }

    #[test]
    fn migrated_bytes_match_fig5b() {
        let model = PreCopyModel::default();
        let samples = model.migrate_many(CbrLoad::IDLE, 200, 42);
        let bytes: Vec<f64> = samples.iter().map(|s| s.migrated_bytes / MB).collect();
        let stats = SummaryStats::of(&bytes);
        // Paper: mean 127 MB, std 11 MB, all below 150 MB.
        assert!(
            (stats.mean - 127.0).abs() < 8.0,
            "mean {:.1} MB",
            stats.mean
        );
        assert!(
            stats.std > 5.0 && stats.std < 18.0,
            "std {:.1} MB",
            stats.std
        );
        assert!(stats.max < 160.0, "max {:.1} MB", stats.max);
    }

    #[test]
    fn idle_migration_time_matches_fig5c() {
        let model = PreCopyModel::default();
        let samples = model.migrate_many(CbrLoad::IDLE, 200, 7);
        let times: Vec<f64> = samples.iter().map(|s| s.total_time_s).collect();
        let stats = SummaryStats::of(&times);
        assert!(
            (stats.mean - 2.94).abs() < 0.4,
            "idle mean {:.2} s",
            stats.mean
        );
    }

    #[test]
    fn loaded_migration_times_match_fig5c() {
        let model = PreCopyModel::default();
        let at = |l: f64| {
            let s = model.migrate_many(CbrLoad::new(l), 200, 11);
            SummaryStats::of(&s.iter().map(|x| x.total_time_s).collect::<Vec<_>>()).mean
        };
        let t10 = at(0.1);
        let t100 = at(1.0);
        assert!((t10 - 4.29).abs() < 0.7, "10% load mean {t10:.2} s");
        assert!((t100 - 9.34).abs() < 1.5, "100% load mean {t100:.2} s");
        // Sub-linear growth between the extremes.
        let t50 = at(0.5);
        assert!(t10 < t50 && t50 < t100);
    }

    #[test]
    fn downtime_stays_below_50ms() {
        let model = PreCopyModel::default();
        for &load in &CbrLoad::paper_sweep() {
            let samples = model.migrate_many(load, 100, 23);
            for s in &samples {
                assert!(
                    s.downtime_s < 0.050,
                    "downtime {:.1} ms at load {load}",
                    s.downtime_s * 1e3
                );
            }
        }
        // And grows with load (Fig. 5d trend).
        let idle = SummaryStats::of(
            &model
                .migrate_many(CbrLoad::IDLE, 200, 5)
                .iter()
                .map(|s| s.downtime_s)
                .collect::<Vec<_>>(),
        );
        let full = SummaryStats::of(
            &model
                .migrate_many(CbrLoad::new(1.0), 200, 5)
                .iter()
                .map(|s| s.downtime_s)
                .collect::<Vec<_>>(),
        );
        assert!(full.mean > idle.mean);
    }

    #[test]
    fn few_rounds_when_idle() {
        let model = PreCopyModel::default();
        let samples = model.migrate_many(CbrLoad::IDLE, 50, 3);
        for s in samples {
            assert!(
                s.rounds <= 4,
                "idle migrations converge quickly, got {}",
                s.rounds
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let model = PreCopyModel::default();
        let a = model.migrate_many(CbrLoad::new(0.3), 10, 9);
        let b = model.migrate_many(CbrLoad::new(0.3), 10, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn summary_stats() {
        let s = SummaryStats::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert!((s.std - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_stats_panic() {
        let _ = SummaryStats::of(&[]);
    }

    #[test]
    #[should_panic(expected = "RAM must be positive")]
    fn bad_config_rejected() {
        let _ = PreCopyModel::new(PreCopyConfig {
            ram_bytes: 0.0,
            ..PreCopyConfig::paper_default()
        });
    }
}
