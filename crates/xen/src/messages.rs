//! The dom0 control plane (paper §V-B2, §V-B4, §V-B5).
//!
//! In the Xen deployment, every hypervisor's dom0 runs a token listener on
//! a known port; iptables NAT redirects deliver messages addressed to a
//! hosted VM's IP to dom0 itself, which acts on the VM's behalf. The same
//! mechanism serves *location requests* (resolving a peer VM's IP to its
//! dom0 address) and *capacity requests* (free slots + free RAM).
//!
//! [`ControlPlane`] reproduces that machinery in-process: a routing table
//! from VM addresses to hosts, message-size/latency accounting, and the
//! three request/response exchanges S-CORE uses.

use score_core::resources::CapacityReport;
use score_topology::Ip4;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A control-plane message, as carried over the dom0 listener port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Dom0Message {
    /// The migration token (opaque wire bytes, see
    /// [`score_core::Token::encode`]).
    Token(Vec<u8>),
    /// "What is your dom0's address?" sent to a VM address.
    LocationRequest {
        /// Address the response should go to.
        reply_to: Ip4,
    },
    /// The dom0's static address (§V-B4).
    LocationResponse {
        /// The responding hypervisor's address.
        dom0: Ip4,
    },
    /// "How many more VMs can you host?" sent to a dom0 address.
    CapacityRequest {
        /// Address the response should go to.
        reply_to: Ip4,
    },
    /// Free slots and RAM (§V-B5).
    CapacityResponse(CapacityReport),
}

impl Dom0Message {
    /// Wire size of the message in bytes (for overhead accounting).
    pub fn wire_bytes(&self) -> usize {
        match self {
            Dom0Message::Token(bytes) => bytes.len(),
            Dom0Message::LocationRequest { .. } => 8,
            Dom0Message::LocationResponse { .. } => 8,
            Dom0Message::CapacityRequest { .. } => 8,
            Dom0Message::CapacityResponse(_) => 12,
        }
    }
}

/// Error for messages addressed outside the control plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnroutableError {
    addr: Ip4,
}

impl UnroutableError {
    /// The unroutable address.
    pub fn address(&self) -> Ip4 {
        self.addr
    }
}

impl fmt::Display for UnroutableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no NAT route for address {}", self.addr)
    }
}

impl std::error::Error for UnroutableError {}

/// Message-traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageStats {
    /// Token deliveries.
    pub tokens: u64,
    /// Location request/response exchanges.
    pub location_probes: u64,
    /// Capacity request/response exchanges.
    pub capacity_probes: u64,
    /// Total wire bytes moved by the control plane.
    pub bytes: u64,
}

/// One hypervisor visible to the control plane.
#[derive(Debug, Clone)]
struct HostEntry {
    dom0: Ip4,
    capacity: CapacityReport,
}

/// In-process dom0 message router.
#[derive(Debug, Clone, Default)]
pub struct ControlPlane {
    hosts: Vec<HostEntry>,
    dom0_index: HashMap<Ip4, usize>,
    /// The NAT tables: VM address → host index.
    vm_route: HashMap<Ip4, usize>,
    stats: MessageStats,
}

impl ControlPlane {
    /// Creates an empty control plane.
    pub fn new() -> Self {
        ControlPlane::default()
    }

    /// Registers a hypervisor by its dom0 address.
    ///
    /// # Panics
    ///
    /// Panics if the address is already registered.
    pub fn add_host(&mut self, dom0: Ip4, capacity: CapacityReport) -> usize {
        assert!(
            !self.dom0_index.contains_key(&dom0),
            "dom0 {dom0} already registered"
        );
        let idx = self.hosts.len();
        self.hosts.push(HostEntry { dom0, capacity });
        self.dom0_index.insert(dom0, idx);
        idx
    }

    /// Installs the NAT redirect for a VM on the given host.
    ///
    /// # Panics
    ///
    /// Panics if the host index is out of range.
    pub fn place_vm(&mut self, vm: Ip4, host: usize) {
        assert!(host < self.hosts.len(), "host {host} out of range");
        self.vm_route.insert(vm, host);
    }

    /// Re-homes a VM after migration (the NAT redirect moves with it).
    ///
    /// # Errors
    ///
    /// Returns [`UnroutableError`] for unknown VMs.
    pub fn migrate_vm(&mut self, vm: Ip4, to_host: usize) -> Result<(), UnroutableError> {
        assert!(to_host < self.hosts.len(), "host {to_host} out of range");
        match self.vm_route.get_mut(&vm) {
            Some(h) => {
                *h = to_host;
                Ok(())
            }
            None => Err(UnroutableError { addr: vm }),
        }
    }

    /// Updates a host's advertised capacity.
    pub fn set_capacity(&mut self, host: usize, capacity: CapacityReport) {
        self.hosts[host].capacity = capacity;
    }

    /// Routes a message addressed to `vm` through the NAT redirect,
    /// returning the dom0 (host index, address) that receives it.
    ///
    /// # Errors
    ///
    /// Returns [`UnroutableError`] for unknown VM addresses.
    pub fn route_to_vm(&self, vm: Ip4) -> Result<(usize, Ip4), UnroutableError> {
        self.vm_route
            .get(&vm)
            .map(|&h| (h, self.hosts[h].dom0))
            .ok_or(UnroutableError { addr: vm })
    }

    /// Delivers the token to the dom0 hosting `vm` ("the token can be sent
    /// directly to the IP address of the next VM", §V-B2).
    ///
    /// # Errors
    ///
    /// Returns [`UnroutableError`] for unknown VM addresses.
    pub fn send_token(&mut self, vm: Ip4, token_wire: &[u8]) -> Result<usize, UnroutableError> {
        let (host, _) = self.route_to_vm(vm)?;
        self.stats.tokens += 1;
        self.stats.bytes += token_wire.len() as u64;
        Ok(host)
    }

    /// The §V-B4 location exchange: resolves a peer VM's address to its
    /// hypervisor's dom0 address.
    ///
    /// # Errors
    ///
    /// Returns [`UnroutableError`] for unknown VM addresses.
    pub fn location_probe(&mut self, peer_vm: Ip4) -> Result<Ip4, UnroutableError> {
        let (_, dom0) = self.route_to_vm(peer_vm)?;
        self.stats.location_probes += 1;
        self.stats.bytes += (Dom0Message::LocationRequest { reply_to: dom0 }.wire_bytes()
            + Dom0Message::LocationResponse { dom0 }.wire_bytes())
            as u64;
        Ok(dom0)
    }

    /// The §V-B5 capacity exchange with a hypervisor.
    ///
    /// # Errors
    ///
    /// Returns [`UnroutableError`] if `dom0` is not a registered
    /// hypervisor address.
    pub fn capacity_probe(&mut self, dom0: Ip4) -> Result<CapacityReport, UnroutableError> {
        let &idx = self
            .dom0_index
            .get(&dom0)
            .ok_or(UnroutableError { addr: dom0 })?;
        let report = self.hosts[idx].capacity;
        self.stats.capacity_probes += 1;
        self.stats.bytes += (Dom0Message::CapacityRequest { reply_to: dom0 }.wire_bytes()
            + Dom0Message::CapacityResponse(report).wire_bytes())
            as u64;
        Ok(report)
    }

    /// Control-plane traffic counters so far.
    pub fn stats(&self) -> MessageStats {
        self.stats
    }

    /// Number of registered hypervisors.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Number of routed VMs.
    pub fn num_vms(&self) -> usize {
        self.vm_route.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use score_core::Token;
    use score_topology::VmId;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> Ip4 {
        Ip4::from_octets(a, b, c, d)
    }

    fn plane() -> ControlPlane {
        let mut cp = ControlPlane::new();
        let h0 = cp.add_host(
            ip(10, 0, 0, 1),
            CapacityReport {
                free_slots: 2,
                free_ram_mb: 512,
            },
        );
        let h1 = cp.add_host(
            ip(10, 0, 1, 1),
            CapacityReport {
                free_slots: 0,
                free_ram_mb: 0,
            },
        );
        cp.place_vm(ip(172, 16, 0, 1), h0);
        cp.place_vm(ip(172, 16, 0, 2), h1);
        cp
    }

    #[test]
    fn nat_routing() {
        let cp = plane();
        let (host, dom0) = cp.route_to_vm(ip(172, 16, 0, 2)).unwrap();
        assert_eq!(host, 1);
        assert_eq!(dom0, ip(10, 0, 1, 1));
        let err = cp.route_to_vm(ip(9, 9, 9, 9)).unwrap_err();
        assert_eq!(err.address(), ip(9, 9, 9, 9));
        assert!(err.to_string().contains("9.9.9.9"));
    }

    #[test]
    fn token_delivery_counts_bytes() {
        let mut cp = plane();
        let token = Token::for_vms((0..10).map(VmId::new));
        let wire = token.encode();
        let host = cp.send_token(ip(172, 16, 0, 1), &wire).unwrap();
        assert_eq!(host, 0);
        let stats = cp.stats();
        assert_eq!(stats.tokens, 1);
        assert_eq!(stats.bytes, 50); // 10 entries x 5 bytes
    }

    #[test]
    fn location_probe_resolves_dom0() {
        let mut cp = plane();
        let dom0 = cp.location_probe(ip(172, 16, 0, 2)).unwrap();
        assert_eq!(dom0, ip(10, 0, 1, 1));
        assert_eq!(cp.stats().location_probes, 1);
        assert!(cp.stats().bytes > 0);
    }

    #[test]
    fn capacity_probe_returns_report() {
        let mut cp = plane();
        let report = cp.capacity_probe(ip(10, 0, 0, 1)).unwrap();
        assert_eq!(report.free_slots, 2);
        assert!(cp.capacity_probe(ip(10, 0, 9, 1)).is_err());
        assert_eq!(cp.stats().capacity_probes, 1);
    }

    #[test]
    fn migration_rehomes_nat_entry() {
        let mut cp = plane();
        cp.migrate_vm(ip(172, 16, 0, 1), 1).unwrap();
        let (host, _) = cp.route_to_vm(ip(172, 16, 0, 1)).unwrap();
        assert_eq!(host, 1);
        assert!(cp.migrate_vm(ip(1, 1, 1, 1), 0).is_err());
    }

    #[test]
    fn capacity_updates_visible() {
        let mut cp = plane();
        cp.set_capacity(
            1,
            CapacityReport {
                free_slots: 5,
                free_ram_mb: 1000,
            },
        );
        assert_eq!(cp.capacity_probe(ip(10, 0, 1, 1)).unwrap().free_slots, 5);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_dom0_rejected() {
        let mut cp = plane();
        cp.add_host(
            ip(10, 0, 0, 1),
            CapacityReport {
                free_slots: 1,
                free_ram_mb: 1,
            },
        );
    }

    #[test]
    fn message_wire_sizes() {
        assert_eq!(Dom0Message::Token(vec![0; 25]).wire_bytes(), 25);
        assert_eq!(
            Dom0Message::LocationRequest {
                reply_to: ip(1, 2, 3, 4)
            }
            .wire_bytes(),
            8
        );
        assert_eq!(
            Dom0Message::CapacityResponse(CapacityReport {
                free_slots: 1,
                free_ram_mb: 2
            })
            .wire_bytes(),
            12
        );
    }

    #[test]
    fn counters_accumulate() {
        let mut cp = plane();
        let _ = cp.location_probe(ip(172, 16, 0, 1));
        let _ = cp.location_probe(ip(172, 16, 0, 2));
        let _ = cp.capacity_probe(ip(10, 0, 0, 1));
        assert_eq!(cp.stats().location_probes, 2);
        assert_eq!(cp.stats().capacity_probes, 1);
        assert_eq!(cp.num_hosts(), 2);
        assert_eq!(cp.num_vms(), 2);
    }
}
