//! Property-based tests for the pre-copy migration model.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use score_traffic::CbrLoad;
use score_xen::{migration_throughput_fraction, PreCopyConfig, PreCopyModel};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn migrated_bytes_bounded_by_geometric_limit(seed in 0u64..500, load in 0.0f64..=1.0) {
        let config = PreCopyConfig::paper_default();
        let model = PreCopyModel::new(config);
        let mut rng = StdRng::seed_from_u64(seed);
        let s = model.migrate(CbrLoad::new(load), &mut rng);
        // At least the non-skipped working set is moved once …
        prop_assert!(s.migrated_bytes >= config.ram_bytes * 0.2);
        // … and never more than a few times the VM's RAM (geometric series
        // with ratio < 1 plus safety margin).
        prop_assert!(s.migrated_bytes <= config.ram_bytes * 4.0,
            "migrated {} for {} RAM", s.migrated_bytes, config.ram_bytes);
        prop_assert!(s.rounds >= 1 && s.rounds <= config.max_rounds);
        prop_assert!(s.downtime_s > 0.0);
        prop_assert!(s.total_time_s > s.downtime_s);
    }

    #[test]
    fn mean_time_monotone_in_load(seed in 0u64..100) {
        let model = PreCopyModel::default();
        let mean = |load: f64| {
            let samples = model.migrate_many(CbrLoad::new(load), 60, seed);
            samples.iter().map(|s| s.total_time_s).sum::<f64>() / samples.len() as f64
        };
        let lo = mean(0.0);
        let mid = mean(0.5);
        let hi = mean(1.0);
        prop_assert!(lo < mid && mid < hi, "{lo} {mid} {hi}");
    }

    #[test]
    fn throughput_fraction_is_monotone_and_bounded(a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let f_lo = migration_throughput_fraction(CbrLoad::new(lo));
        let f_hi = migration_throughput_fraction(CbrLoad::new(hi));
        prop_assert!(f_lo >= f_hi - 1e-12);
        prop_assert!(f_hi > 0.0 && f_lo <= 1.0);
    }

    #[test]
    fn downtime_never_exceeds_50ms_at_paper_settings(seed in 0u64..200, load in 0.0f64..=1.0) {
        let model = PreCopyModel::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let s = model.migrate(CbrLoad::new(load), &mut rng);
        prop_assert!(s.downtime_s < 0.050, "downtime {} ms", s.downtime_s * 1e3);
    }
}
