//! Primitive instruments: monotonic counters, f64 gauges, and fixed
//! log-bucket latency histograms with percentile snapshots.
//!
//! Every instrument is a handful of `AtomicU64`s updated with relaxed
//! ordering — recording never takes a lock, never allocates, and is safe to
//! call from any thread. Precision is traded for speed in the histogram: the
//! bucket ladder is quarter-octave (4 sub-buckets per power of two), so any
//! reported quantile is within ~25% of the true value. That is plenty to
//! tell a 1 µs decision from a 10 µs one, which is what the dashboard needs.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge holding an `f64` (stored as raw bits in an `AtomicU64`).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// New gauge at `0.0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Sub-buckets per octave (power of two). Two mantissa bits → factor-1.25
/// spacing at the bucket edges, so quantiles are exact to within ~25%.
const SUB: usize = 4;
/// Total buckets: values 0..4 get exact buckets, then 4 per octave up to
/// `u64::MAX` (exponents 2..=63 → 62 octaves).
pub(crate) const BUCKETS: usize = SUB + 62 * SUB;

/// Index of the log bucket containing `v`.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let e = 63 - v.leading_zeros() as usize; // e >= 2
        let m = ((v >> (e - 2)) & 3) as usize;
        (e - 1) * SUB + m
    }
}

/// Inclusive upper bound of bucket `idx` — the representative value reported
/// for quantiles landing in that bucket.
fn bucket_upper(idx: usize) -> u64 {
    if idx < SUB {
        idx as u64
    } else {
        let e = idx / SUB + 1;
        let m = (idx % SUB) as u128;
        // The very top bucket's bound would be 2^64; saturate to u64::MAX.
        let bound = ((SUB as u128 + m + 1) << (e - 2)) - 1;
        bound.min(u64::MAX as u128) as u64
    }
}

/// Fixed log-bucket histogram for latency-like `u64` samples (nanoseconds).
///
/// Recording is three relaxed `fetch_add`s (bucket, count, sum); reading is
/// done through an immutable [`HistogramSnapshot`]. Concurrent recorders and
/// snapshotters never block each other; a snapshot taken during concurrent
/// recording sees some consistent subset of the recorded samples (counts may
/// lag sums by in-flight records, which only perturbs `mean()` transiently).
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Fold every sample of `other` into `self` (bucket-wise addition).
    pub fn merge(&self, other: &Histogram) {
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = src.load(Ordering::Relaxed);
            if n > 0 {
                dst.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Immutable point-in-time view for quantile math and rendering.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Per-bucket counts (see [`HistogramSnapshot::bucket_bound`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Inclusive upper bound of bucket `idx`.
    pub fn bucket_bound(idx: usize) -> u64 {
        bucket_upper(idx)
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]`: the upper bound of the first bucket
    /// whose cumulative count reaches rank `ceil(q * count)`. Returns 0 for
    /// an empty histogram. Overestimates by at most one bucket width (~25%).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return bucket_upper(idx);
            }
        }
        // count/sum can lead the bucket array under concurrent recording;
        // fall back to the highest non-empty bucket.
        bucket_upper(
            self.buckets
                .iter()
                .rposition(|&n| n > 0)
                .unwrap_or(BUCKETS - 1),
        )
    }

    /// Median (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Upper bound of the highest non-empty bucket (0 when empty).
    pub fn max_bound(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&n| n > 0)
            .map(bucket_upper)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(-2.5);
        assert_eq!(g.get(), -2.5);
    }

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        // Every value maps to a bucket whose bounds contain it, and bucket
        // upper bounds strictly increase.
        let mut prev = None;
        for idx in 0..BUCKETS {
            let ub = bucket_upper(idx);
            if let Some(p) = prev {
                assert!(ub > p, "bucket {idx} bound {ub} <= {p}");
            }
            prev = Some(ub);
        }
        for v in [0u64, 1, 2, 3, 4, 5, 7, 8, 100, 1023, 1024, u64::MAX / 2] {
            let idx = bucket_of(v);
            assert!(v <= bucket_upper(idx), "v={v} above bucket {idx}");
            if idx > 0 {
                assert!(v > bucket_upper(idx - 1), "v={v} below bucket {idx}");
            }
        }
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_bound_true_percentiles() {
        let h = Histogram::new();
        let mut samples: Vec<u64> = (1..=1000).map(|i| i * 37).collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        for (q, p) in [(0.5f64, snap.p50()), (0.95, snap.p95()), (0.99, snap.p99())] {
            let rank = ((q * 1000.0).ceil() as usize).clamp(1, 1000);
            let truth = samples[rank - 1];
            assert!(p >= truth, "q={q}: {p} < exact {truth}");
            assert!(
                (p as f64) <= truth as f64 * 1.25 + 1.0,
                "q={q}: {p} > 1.25x exact {truth}"
            );
        }
    }

    #[test]
    fn merge_adds_bucketwise() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [5u64, 9, 130] {
            a.record(v);
        }
        for v in [5u64, 1_000_000] {
            b.record(v);
        }
        a.merge(&b);
        let snap = a.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 5 + 9 + 130 + 5 + 1_000_000);
        assert_eq!(snap.buckets[bucket_of(5)], 2);
    }

    #[test]
    fn empty_snapshot_is_zeroes() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.mean(), 0.0);
        assert_eq!(snap.max_bound(), 0);
    }
}
