//! Bounded ring-buffer journal of structured decision traces.
//!
//! The journal answers "what did the token do recently?" without grepping a
//! trace file: every token hold appends a [`DecisionTrace`] (candidates
//! scored, accept/reject, gain, ledger delta magnitude, preemptive flag) and
//! the ring keeps the last `capacity` entries, counting what it evicted. A
//! mutex guards the ring — pushes are rare (one per token hold, microseconds
//! apart) compared to metric increments, so contention is a non-issue.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::registry::json_escape;

/// One structured journal entry.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsEvent {
    /// A token hold: the holder scored its candidates and accepted or
    /// rejected a migration.
    Decision(DecisionTrace),
    /// A traffic-delta batch was applied to the live traffic matrix.
    TrafficDeltas {
        /// Event-clock time of the batch (seconds).
        at_s: f64,
        /// Trace events lowered into this batch.
        events: u64,
        /// Pairs whose rate changed.
        pairs: u64,
    },
    /// A trace segment boundary was crossed (phase rebind).
    SegmentAdvance {
        /// Event-clock time of the boundary (seconds).
        at_s: f64,
    },
    /// Free-form marker (daemon lifecycle, resyncs, subscriber drops...).
    Note(String),
}

/// Decision-trace payload for one token hold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionTrace {
    /// Event-clock time of the hold (seconds).
    pub at_s: f64,
    /// VM id holding the token.
    pub holder: u64,
    /// Candidate destinations scored under Theorem 1.
    pub candidates: u32,
    /// Whether a migration was accepted.
    pub accepted: bool,
    /// Communication-cost gain of the accepted move (0 when rejected).
    pub gain: f64,
    /// Magnitude of the Lemma-3 delta applied to the cost ledger.
    pub ledger_delta: f64,
    /// True when the move was justified by the forecast envelope rather
    /// than the current traffic matrix.
    pub preemptive: bool,
}

/// One journal slot: a monotonically increasing sequence number plus the
/// event. Sequence numbers survive eviction, so a reader can detect gaps.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Position in the append stream (starts at 0, never reused).
    pub seq: u64,
    /// The recorded event.
    pub event: ObsEvent,
}

struct Ring {
    entries: VecDeque<JournalEntry>,
    next_seq: u64,
    evicted: u64,
}

/// Bounded ring buffer of [`JournalEntry`] values.
pub struct Journal {
    capacity: usize,
    ring: Mutex<Ring>,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl Journal {
    /// New journal retaining at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            ring: Mutex::new(Ring {
                entries: VecDeque::new(),
                next_seq: 0,
                evicted: 0,
            }),
        }
    }

    /// Maximum retained entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append an event, evicting the oldest entry when full.
    pub fn push(&self, event: ObsEvent) {
        let mut ring = self.ring.lock().unwrap();
        if ring.entries.len() == self.capacity {
            ring.entries.pop_front();
            ring.evicted += 1;
        }
        let seq = ring.next_seq;
        ring.next_seq += 1;
        ring.entries.push_back(JournalEntry { seq, event });
    }

    /// Entries currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().entries.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries evicted by the bound so far.
    pub fn evicted(&self) -> u64 {
        self.ring.lock().unwrap().evicted
    }

    /// The most recent `n` entries, oldest first.
    pub fn recent(&self, n: usize) -> Vec<JournalEntry> {
        let ring = self.ring.lock().unwrap();
        let skip = ring.entries.len().saturating_sub(n);
        ring.entries.iter().skip(skip).cloned().collect()
    }

    /// Render the most recent `n` entries as a JSON array, oldest first.
    pub fn recent_json(&self, n: usize) -> String {
        let mut out = String::from("[");
        for (i, e) in self.recent(n).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&e.to_json());
        }
        out.push(']');
        out
    }
}

fn fin(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl JournalEntry {
    /// Render as a single JSON object `{"seq":..,"kind":..,...}`.
    pub fn to_json(&self) -> String {
        match &self.event {
            ObsEvent::Decision(d) => format!(
                "{{\"seq\":{},\"kind\":\"decision\",\"at_s\":{},\"holder\":{},\"candidates\":{},\"accepted\":{},\"gain\":{},\"ledger_delta\":{},\"preemptive\":{}}}",
                self.seq,
                fin(d.at_s),
                d.holder,
                d.candidates,
                d.accepted,
                fin(d.gain),
                fin(d.ledger_delta),
                d.preemptive,
            ),
            ObsEvent::TrafficDeltas { at_s, events, pairs } => format!(
                "{{\"seq\":{},\"kind\":\"traffic_deltas\",\"at_s\":{},\"events\":{events},\"pairs\":{pairs}}}",
                self.seq,
                fin(*at_s),
            ),
            ObsEvent::SegmentAdvance { at_s } => format!(
                "{{\"seq\":{},\"kind\":\"segment_advance\",\"at_s\":{}}}",
                self.seq,
                fin(*at_s),
            ),
            ObsEvent::Note(s) => format!(
                "{{\"seq\":{},\"kind\":\"note\",\"note\":\"{}\"}}",
                self.seq,
                json_escape(s),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_keeps_seq() {
        let j = Journal::new(3);
        for i in 0..5 {
            j.push(ObsEvent::Note(format!("n{i}")));
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.evicted(), 2);
        let recent = j.recent(10);
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].seq, 2);
        assert_eq!(recent[2].seq, 4);
        assert_eq!(recent[2].event, ObsEvent::Note("n4".into()));
    }

    #[test]
    fn recent_json_is_wellformed_array() {
        let j = Journal::new(8);
        j.push(ObsEvent::Decision(DecisionTrace {
            at_s: 1.5,
            holder: 7,
            candidates: 12,
            accepted: true,
            gain: 3.25,
            ledger_delta: -3.25,
            preemptive: false,
        }));
        j.push(ObsEvent::SegmentAdvance { at_s: 2.0 });
        let json = j.recent_json(2);
        assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
        assert!(json.contains("\"kind\":\"decision\""), "{json}");
        assert!(json.contains("\"preemptive\":false"), "{json}");
        assert!(json.contains("\"kind\":\"segment_advance\""), "{json}");
    }
}
