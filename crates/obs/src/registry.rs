//! Name-keyed metric registry with JSON and Prometheus text renderings.
//!
//! Registration (name → instrument) goes through a mutex-guarded `BTreeMap`,
//! but that happens once per series at attach time: callers hold on to the
//! returned `Arc<Counter>` / `Arc<Gauge>` / `Arc<Histogram>` and update it
//! lock-free afterwards. Series names follow the Prometheus convention and
//! may carry inline labels, e.g. `scored_requests_total{verb="place"}` —
//! the renderer groups series into families by stripping the label block.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};

/// One registered instrument.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Metric registry. Cheap to share (`Arc<Registry>` lives inside
/// [`crate::ObsHandle`]); all methods take `&self`.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter registered under `series`.
    ///
    /// Panics if `series` is already registered as a different instrument
    /// kind — metric names are a global namespace and a kind clash is a
    /// programming error, not a runtime condition.
    pub fn counter(&self, series: &str) -> Arc<Counter> {
        let mut map = self.metrics.lock().unwrap();
        match map
            .entry(series.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("series {series:?} already registered as a non-counter"),
        }
    }

    /// Get or create the gauge registered under `series`.
    pub fn gauge(&self, series: &str) -> Arc<Gauge> {
        let mut map = self.metrics.lock().unwrap();
        match map
            .entry(series.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("series {series:?} already registered as a non-gauge"),
        }
    }

    /// Get or create the histogram registered under `series`.
    pub fn histogram(&self, series: &str) -> Arc<Histogram> {
        let mut map = self.metrics.lock().unwrap();
        match map
            .entry(series.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("series {series:?} already registered as a non-histogram"),
        }
    }

    /// Point-in-time copy of every registered series, name-sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.metrics.lock().unwrap();
        let mut snap = MetricsSnapshot::default();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => snap.counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => snap.histograms.push((name.clone(), h.snapshot())),
            }
        }
        snap
    }
}

/// Name-sorted copy of a [`Registry`]'s contents.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter series and their values.
    pub counters: Vec<(String, u64)>,
    /// Gauge series and their values.
    pub gauges: Vec<(String, f64)>,
    /// Histogram series and their snapshots.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Split `series` into `(family, labels)`: `a_total{k="v"}` → `("a_total",
/// Some("k=\"v\""))`.
fn split_series(series: &str) -> (&str, Option<&str>) {
    match series.find('{') {
        Some(open) if series.ends_with('}') => {
            (&series[..open], Some(&series[open + 1..series.len() - 1]))
        }
        _ => (series, None),
    }
}

/// Escape a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        // JSON has no Inf/NaN; null keeps the document well-formed.
        "null".to_string()
    }
}

impl MetricsSnapshot {
    /// Render as a JSON object:
    /// `{"counters":{..},"gauges":{..},"histograms":{name:{count,sum,mean,p50,p95,p99,max}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", json_escape(name)));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json_escape(name), json_f64(*v)));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}",
                json_escape(name),
                h.count,
                h.sum,
                json_f64(h.mean()),
                h.p50(),
                h.p95(),
                h.p99(),
                h.max_bound(),
            ));
        }
        out.push_str("}}");
        out
    }

    /// Render in the Prometheus text exposition format (version 0.0.4).
    ///
    /// Histograms emit cumulative `_bucket{le=..}` series over the non-empty
    /// buckets plus `+Inf`, and `_sum` / `_count` series, merging any inline
    /// labels the series name carries.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut typed: BTreeMap<String, &str> = BTreeMap::new();
        let mut type_line = |out: &mut String, family: &str, kind: &'static str| {
            if typed.insert(family.to_string(), kind).is_none() {
                out.push_str(&format!("# TYPE {family} {kind}\n"));
            }
        };
        for (series, v) in &self.counters {
            let (family, _) = split_series(series);
            type_line(&mut out, family, "counter");
            out.push_str(&format!("{series} {v}\n"));
        }
        for (series, v) in &self.gauges {
            let (family, _) = split_series(series);
            type_line(&mut out, family, "gauge");
            out.push_str(&format!("{series} {v}\n"));
        }
        for (series, h) in &self.histograms {
            let (family, labels) = split_series(series);
            type_line(&mut out, family, "histogram");
            let with_le = |le: &str| match labels {
                Some(l) => format!("{family}_bucket{{{l},le=\"{le}\"}}"),
                None => format!("{family}_bucket{{le=\"{le}\"}}"),
            };
            let mut cum = 0u64;
            for (idx, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                cum += n;
                let le = HistogramSnapshot::bucket_bound(idx).to_string();
                out.push_str(&format!("{} {cum}\n", with_le(&le)));
            }
            out.push_str(&format!("{} {}\n", with_le("+Inf"), h.count));
            let suffixed = |suffix: &str| match labels {
                Some(l) => format!("{family}_{suffix}{{{l}}}"),
                None => format!("{family}_{suffix}"),
            };
            out.push_str(&format!("{} {}\n", suffixed("sum"), h.sum));
            out.push_str(&format!("{} {}\n", suffixed("count"), h.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_instrument() {
        let r = Registry::new();
        r.counter("a_total").add(3);
        r.counter("a_total").add(4);
        assert_eq!(r.counter("a_total").get(), 7);
    }

    #[test]
    #[should_panic(expected = "non-counter")]
    fn kind_clash_panics() {
        let r = Registry::new();
        r.gauge("x");
        r.counter("x");
    }

    #[test]
    fn json_snapshot_is_sorted_and_escaped() {
        let r = Registry::new();
        r.counter("b_total").inc();
        r.counter("a_total{verb=\"place\"}").add(2);
        r.gauge("g").set(1.5);
        r.histogram("h_ns").record(100);
        let json = r.snapshot().to_json();
        let a = json.find("a_total").unwrap();
        let b = json.find("b_total").unwrap();
        assert!(a < b, "names not sorted: {json}");
        assert!(json.contains("a_total{verb=\\\"place\\\"}"), "{json}");
        assert!(json.contains("\"g\":1.5"), "{json}");
        assert!(json.contains("\"count\":1"), "{json}");
    }

    #[test]
    fn prometheus_rendering_groups_families() {
        let r = Registry::new();
        r.counter("req_total{verb=\"place\"}").add(2);
        r.counter("req_total{verb=\"stats\"}").add(1);
        r.histogram("lat_ns{verb=\"place\"}").record(1000);
        let text = r.snapshot().to_prometheus();
        assert_eq!(text.matches("# TYPE req_total counter").count(), 1);
        assert!(text.contains("req_total{verb=\"place\"} 2\n"), "{text}");
        assert!(text.contains("# TYPE lat_ns histogram"), "{text}");
        assert!(
            text.contains("lat_ns_bucket{verb=\"place\",le=\"+Inf\"} 1"),
            "{text}"
        );
        assert!(text.contains("lat_ns_sum{verb=\"place\"} 1000"), "{text}");
        assert!(text.ends_with('\n'));
    }
}
