//! `score_obs` — observability primitives for the S-CORE reproduction.
//!
//! The simulation pipeline is deterministic by contract: a [`crate::ObsHandle`]
//! may be attached to a `Session`, `TokenRing`, `CostLedger` or the `scored`
//! daemon, and the attached run must produce byte-identical results to a bare
//! run. The crate enforces the shape of that contract:
//!
//! - **Instruments are write-only side channels.** Counters, gauges,
//!   histograms ([`Counter`], [`Gauge`], [`Histogram`]) and the decision
//!   [`Journal`] absorb observations; nothing in the simulation ever reads
//!   them back to make a decision.
//! - **Wall-clock reads live here, not in simulation state.** Instrumented
//!   code asks the handle for a [`Stopwatch`]; when observability is
//!   disabled the stopwatch is inert and `Instant::now()` is never called.
//! - **Disabled means free.** [`ObsHandle::disabled`] is an `Option::None`
//!   inside — every instrumentation site is one branch on a cold `None`.
//!
//! Attached layers pre-resolve their series (`handle.counter(..)` once at
//! attach time, lock-free `Arc` updates afterwards), so the hot-path cost of
//! an enabled handle is a few relaxed atomic adds.

#![warn(missing_docs)]

pub mod journal;
pub mod metrics;
pub mod registry;

pub use journal::{DecisionTrace, Journal, JournalEntry, ObsEvent};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{MetricsSnapshot, Registry};

use std::sync::Arc;
use std::time::Instant;

/// The shared observability state behind an enabled [`ObsHandle`]:
/// a metric [`Registry`] plus a bounded decision [`Journal`].
#[derive(Debug)]
pub struct Obs {
    registry: Registry,
    journal: Journal,
}

impl Obs {
    /// The metric registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The decision journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }
}

/// Default bound on retained journal entries.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1024;

/// Cloneable, zero-cost-when-disabled attachment point for instrumentation.
///
/// A handle is either *disabled* (the default — every operation is a no-op
/// branch) or *enabled*, in which case all clones share one [`Obs`]. Clones
/// may carry extra labels ([`ObsHandle::with_label`]) that are appended to
/// every series resolved through them, which is how the daemon gives each
/// tenant its own series without separate registries.
#[derive(Debug, Clone, Default)]
pub struct ObsHandle {
    inner: Option<Arc<Obs>>,
    labels: String,
}

impl ObsHandle {
    /// An enabled handle with a fresh registry and a journal bounded at
    /// [`DEFAULT_JOURNAL_CAPACITY`].
    pub fn new() -> Self {
        Self::with_journal_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// An enabled handle with a journal bounded at `capacity`.
    pub fn with_journal_capacity(capacity: usize) -> Self {
        Self {
            inner: Some(Arc::new(Obs {
                registry: Registry::new(),
                journal: Journal::new(capacity),
            })),
            labels: String::new(),
        }
    }

    /// A disabled handle: every operation is a no-op.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// True when observations are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The shared state, when enabled.
    pub fn obs(&self) -> Option<&Obs> {
        self.inner.as_deref()
    }

    /// A clone of this handle with `key="value"` appended to the label set
    /// applied to every series resolved through it. No-op when disabled.
    pub fn with_label(&self, key: &str, value: &str) -> Self {
        if self.inner.is_none() {
            return Self::default();
        }
        let escaped = value.replace('\\', "\\\\").replace('"', "\\\"");
        let mut labels = self.labels.clone();
        if !labels.is_empty() {
            labels.push(',');
        }
        labels.push_str(&format!("{key}=\"{escaped}\""));
        Self {
            inner: self.inner.clone(),
            labels,
        }
    }

    /// Format `name` with this handle's labels merged in. A `name` that
    /// already carries inline labels keeps them, handle labels first.
    pub fn series(&self, name: &str) -> String {
        if self.labels.is_empty() {
            return name.to_string();
        }
        match name.find('{') {
            Some(open) if name.ends_with('}') => {
                let (family, rest) = name.split_at(open);
                let inline = &rest[1..rest.len() - 1];
                format!("{family}{{{},{inline}}}", self.labels)
            }
            _ => format!("{name}{{{}}}", self.labels),
        }
    }

    /// Resolve (get-or-create) a counter; `None` when disabled.
    pub fn counter(&self, name: &str) -> Option<Arc<Counter>> {
        self.inner
            .as_ref()
            .map(|o| o.registry.counter(&self.series(name)))
    }

    /// Resolve (get-or-create) a gauge; `None` when disabled.
    pub fn gauge(&self, name: &str) -> Option<Arc<Gauge>> {
        self.inner
            .as_ref()
            .map(|o| o.registry.gauge(&self.series(name)))
    }

    /// Resolve (get-or-create) a histogram; `None` when disabled.
    pub fn histogram(&self, name: &str) -> Option<Arc<Histogram>> {
        self.inner
            .as_ref()
            .map(|o| o.registry.histogram(&self.series(name)))
    }

    /// The shared journal; `None` when disabled.
    pub fn journal(&self) -> Option<&Journal> {
        self.inner.as_ref().map(|o| o.journal())
    }

    /// Append `event` to the journal, if enabled.
    #[inline]
    pub fn journal_push(&self, event: ObsEvent) {
        if let Some(o) = &self.inner {
            o.journal.push(event);
        }
    }

    /// Start a stopwatch. Reads the wall clock only when enabled — this is
    /// the single doorway through which instrumented code may observe time.
    #[inline]
    pub fn stopwatch(&self) -> Stopwatch {
        Stopwatch {
            start: self.inner.as_ref().map(|_| Instant::now()),
        }
    }

    /// Snapshot the registry as JSON; `None` when disabled.
    pub fn snapshot_json(&self) -> Option<String> {
        self.inner.as_ref().map(|o| o.registry.snapshot().to_json())
    }

    /// Render the registry in Prometheus text format; `None` when disabled.
    pub fn prometheus(&self) -> Option<String> {
        self.inner
            .as_ref()
            .map(|o| o.registry.snapshot().to_prometheus())
    }
}

/// A wall-clock stopwatch handed out by [`ObsHandle::stopwatch`]. Inert
/// (never touches the clock) when the handle is disabled; the `Default`
/// stopwatch is inert too.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stopwatch {
    start: Option<Instant>,
}

impl Stopwatch {
    /// Nanoseconds since the stopwatch started; `None` when inert.
    #[inline]
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.start.map(|s| s.elapsed().as_nanos() as u64)
    }

    /// Record the elapsed time into `hist` (no-op when inert or `hist` is
    /// `None`).
    #[inline]
    pub fn observe(&self, hist: &Option<Arc<Histogram>>) {
        if let (Some(ns), Some(h)) = (self.elapsed_ns(), hist.as_ref()) {
            h.record(ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let h = ObsHandle::disabled();
        assert!(!h.is_enabled());
        assert!(h.counter("c").is_none());
        assert!(h.snapshot_json().is_none());
        assert!(h.stopwatch().elapsed_ns().is_none());
        h.journal_push(ObsEvent::Note("dropped".into()));
        assert!(h.with_label("tenant", "t").counter("c").is_none());
    }

    #[test]
    fn clones_share_state() {
        let h = ObsHandle::new();
        let c = h.counter("hits_total").unwrap();
        c.inc();
        let h2 = h.clone();
        h2.counter("hits_total").unwrap().add(2);
        assert_eq!(c.get(), 3);
        h2.journal_push(ObsEvent::Note("x".into()));
        assert_eq!(h.journal().unwrap().len(), 1);
    }

    #[test]
    fn labels_compose_and_merge_inline() {
        let h = ObsHandle::new().with_label("tenant", "edge");
        assert_eq!(h.series("a_total"), "a_total{tenant=\"edge\"}");
        assert_eq!(
            h.series("a_total{verb=\"place\"}"),
            "a_total{tenant=\"edge\",verb=\"place\"}"
        );
        let h2 = h.with_label("zone", "z\"1");
        assert_eq!(h2.series("g"), "g{tenant=\"edge\",zone=\"z\\\"1\"}");
    }

    #[test]
    fn stopwatch_records_into_histogram() {
        let h = ObsHandle::new();
        let hist = h.histogram("lat_ns");
        let sw = h.stopwatch();
        sw.observe(&hist);
        let snap = hist.unwrap().snapshot();
        assert_eq!(snap.count, 1);
    }
}
