//! Property pins for the metrics layer: histogram snapshot math against an
//! exact sorted reference, merge equivalence, and correctness under
//! concurrent recording.

use proptest::prelude::*;
use score_obs::{Histogram, HistogramSnapshot};
use std::sync::Arc;

/// Exact value at quantile `q` of a sorted sample vector, using the same
/// rank convention as `HistogramSnapshot::quantile`.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    /// Quantiles reported by the log-bucket histogram bound the exact
    /// quantile from above, within one bucket width (factor 1.25 + 1).
    #[test]
    fn quantiles_bound_exact_reference(
        samples in prop::collection::vec(0u64..=10_000_000_000, 1..400),
        qs in prop::collection::vec(0.0f64..=1.0, 1..8),
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, samples.len() as u64);
        prop_assert_eq!(snap.sum, samples.iter().sum::<u64>());
        for &q in &qs {
            let approx = snap.quantile(q);
            let truth = exact_quantile(&sorted, q);
            prop_assert!(approx >= truth, "q={} approx {} < exact {}", q, approx, truth);
            prop_assert!(
                approx as f64 <= truth as f64 * 1.25 + 1.0,
                "q={} approx {} > 1.25x exact {}", q, approx, truth
            );
        }
        let max = *sorted.last().unwrap();
        prop_assert!(snap.max_bound() >= max);
        prop_assert!(snap.max_bound() as f64 <= max as f64 * 1.25 + 1.0);
    }

    /// Recording a sample stream split across two histograms then merging is
    /// bucket-for-bucket identical to recording it all into one.
    #[test]
    fn merge_equals_single_recorder(
        a in prop::collection::vec(0u64..=1_000_000_000, 0..200),
        b in prop::collection::vec(0u64..=1_000_000_000, 0..200),
    ) {
        let merged = Histogram::new();
        let ha = Histogram::new();
        let hb = Histogram::new();
        let single = Histogram::new();
        for &s in &a {
            ha.record(s);
            single.record(s);
        }
        for &s in &b {
            hb.record(s);
            single.record(s);
        }
        merged.merge(&ha);
        merged.merge(&hb);
        prop_assert_eq!(merged.snapshot(), single.snapshot());
    }
}

/// Concurrent recorders lose nothing: N threads hammer one shared histogram
/// and the final snapshot agrees exactly with a serial reference.
#[test]
fn concurrent_recording_is_exact() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 5_000;
    let shared = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = Arc::clone(&shared);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    // Deterministic per-thread stream spanning many buckets.
                    h.record((t * PER_THREAD + i) * 997 % 10_000_000);
                }
            })
        })
        .collect();
    for j in handles {
        j.join().unwrap();
    }
    let reference = Histogram::new();
    let mut sum = 0u64;
    for t in 0..THREADS {
        for i in 0..PER_THREAD {
            let v = (t * PER_THREAD + i) * 997 % 10_000_000;
            reference.record(v);
            sum += v;
        }
    }
    let got = shared.snapshot();
    assert_eq!(got, reference.snapshot());
    assert_eq!(got.count, THREADS * PER_THREAD);
    assert_eq!(got.sum, sum);
    assert_eq!(got.buckets.iter().sum::<u64>(), got.count);
}

/// A snapshot taken while writers are mid-flight is still internally sane:
/// quantiles never panic and stay within the recorded value range.
#[test]
fn concurrent_snapshotting_is_sane() {
    let shared = Arc::new(Histogram::new());
    let writer = {
        let h = Arc::clone(&shared);
        std::thread::spawn(move || {
            for i in 0..50_000u64 {
                h.record(i % 1_000_000);
            }
        })
    };
    let mut last_count = 0;
    while !writer.is_finished() {
        let snap = shared.snapshot();
        assert!(snap.count >= last_count, "count went backwards");
        last_count = snap.count;
        let p99 = snap.p99();
        assert!(
            p99 as f64 <= 1_000_000.0 * 1.25 + 1.0,
            "p99 {p99} out of range"
        );
        let _ = HistogramSnapshot::bucket_bound(0);
    }
    writer.join().unwrap();
    assert_eq!(shared.snapshot().count, 50_000);
}
