//! Forecast-aware baselines: running the centralized algorithms on the
//! *predicted* traffic matrix.
//!
//! The token-ring pipeline became forecast-aware through the
//! `TrafficOutlook` layer in `score_core`; the centralized baselines
//! (Remedy, the GA, the exhaustive search) need no such surgery —
//! every one of them ranks placements against a `PairTraffic`, so
//! handing them `score_traffic::predicted_traffic` (each current pair
//! re-rated to its forecast at `now + horizon`) makes them plan for
//! where load is *going*. This module provides the one-line glue for
//! the baseline the paper actually compares against.

use score_core::Cluster;
use score_traffic::{predicted_traffic, PairTraffic, RateForecaster};

use crate::remedy::{Remedy, RemedyResult};

/// Runs Remedy against the forecasted TM: the predicted per-pair rates
/// at `now_s + horizon_s` drive its utilization balancing, while the
/// cluster's capacity state stays the live one. With a zero horizon the
/// prediction *is* the current TM and this is exactly `Remedy::run`.
pub fn remedy_on_forecast(
    remedy: &Remedy,
    cluster: &mut Cluster,
    current: &PairTraffic,
    forecaster: &dyn RateForecaster,
    now_s: f64,
    horizon_s: f64,
) -> RemedyResult {
    let ahead = predicted_traffic(forecaster, current, now_s, horizon_s);
    remedy.run(cluster, &ahead)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::striped_placement;
    use crate::remedy::RemedyConfig;
    use score_core::{ServerSpec, VmSpec};
    use score_topology::{CanonicalTree, VmId};
    use score_traffic::{EwmaForecaster, PairTrafficBuilder};
    use std::sync::Arc;

    fn cluster_for(traffic: &PairTraffic) -> Cluster {
        let topo = Arc::new(CanonicalTree::small());
        let alloc = striped_placement(traffic.num_vms(), 16, 16);
        Cluster::new(
            topo,
            ServerSpec::paper_default(),
            VmSpec::paper_default(),
            traffic,
            alloc,
        )
        .unwrap()
    }

    #[test]
    fn remedy_plans_on_the_predicted_matrix() {
        // Pair (0, 1) is quiet now but ramping hard; (2, 3) is loud now
        // but collapsing. The forecast-aware run must see the former.
        let mut b = PairTrafficBuilder::new(8);
        b.add(VmId::new(0), VmId::new(1), 1e6);
        b.add(VmId::new(2), VmId::new(3), 9e8);
        let earlier = b.build();
        let mut b = PairTrafficBuilder::new(8);
        b.add(VmId::new(0), VmId::new(1), 2e8);
        b.add(VmId::new(2), VmId::new(3), 4e8);
        let current = b.build();

        let mut f = EwmaForecaster::new(1.0);
        f.prime(&earlier, 0.0);
        f.observe_updates(
            &[
                (VmId::new(0), VmId::new(1), 2e8),
                (VmId::new(2), VmId::new(3), 4e8),
            ],
            10.0,
        );
        let ahead = predicted_traffic(&f, &current, 10.0, 20.0);
        // The ramping pair overtakes the collapsing one at the horizon.
        assert!(ahead.rate(VmId::new(0), VmId::new(1)) > ahead.rate(VmId::new(2), VmId::new(3)));

        // Both runs complete on the same cluster shape; the
        // forecast-aware one consumed the predicted TM (its utilization
        // view differs), and a zero horizon reproduces the current-TM
        // run exactly.
        let remedy = Remedy::new(RemedyConfig::paper_default());
        let mut cluster = cluster_for(&current);
        let now = remedy.run(&mut cluster, &current);
        let mut cluster = cluster_for(&current);
        let zero = remedy_on_forecast(&remedy, &mut cluster, &current, &f, 10.0, 0.0);
        assert_eq!(now.steps.len(), zero.steps.len());
        let mut cluster = cluster_for(&current);
        let _ahead_run = remedy_on_forecast(&remedy, &mut cluster, &current, &f, 10.0, 20.0);
        assert!(cluster.allocation().is_consistent());
    }
}
