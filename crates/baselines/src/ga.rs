//! Genetic-algorithm approximation of the optimal allocation (paper §VI-A).
//!
//! "Centrally calculating the optimal VM allocation is computationally
//! infeasible" (the problem is NP-complete, see the paper's appendix and
//! [`crate::reduction`]), so the paper approximates it with a GA:
//!
//! * population of 1000 individuals of "densely-packed VM distributions";
//! * edge-assembly crossover (EAX) — for placement this means offspring
//!   inherit *co-location groups* from both parents;
//! * tournament-based replacement;
//! * mutation "by swapping a random number of VMs between racks";
//! * termination when improvement stays below 1% for 10 consecutive
//!   generations.
//!
//! The paper treats the GA's result as "optimal" for ratio computations;
//! so do we. Fitness evaluation parallelises across a crossbeam scope.

use crossbeam::thread;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use score_core::{Allocation, CostModel};
use score_topology::{ServerId, Topology};
use score_traffic::PairTraffic;
use serde::{Deserialize, Serialize};

use crate::placement::shuffled_packed_placement;

/// GA tunables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaConfig {
    /// Number of individuals (paper: 1000).
    pub population: usize,
    /// Tournament size for parent/replacement selection.
    pub tournament_k: usize,
    /// Individuals copied unchanged into the next generation.
    pub elite: usize,
    /// Upper bound on mutation swap count ("a random number of VMs").
    pub max_mutation_swaps: u32,
    /// Relative improvement threshold for convergence (paper: 1%).
    pub rel_improvement: f64,
    /// Consecutive low-improvement generations before stopping (paper: 10).
    pub patience: usize,
    /// Hard cap on generations.
    pub max_generations: usize,
    /// RNG seed.
    pub seed: u64,
    /// Number of worker threads for fitness evaluation (1 = serial).
    pub threads: usize,
}

impl GaConfig {
    /// The paper's configuration (population 1000). Expensive — the paper
    /// reports circa 12 hours for a medium-load scenario on 2010s hardware.
    pub fn paper_default() -> Self {
        GaConfig {
            population: 1000,
            tournament_k: 4,
            elite: 4,
            max_mutation_swaps: 8,
            rel_improvement: 0.01,
            patience: 10,
            max_generations: 10_000,
            seed: 0x5_c07e,
            threads: 4,
        }
    }

    /// A reduced configuration for tests and quick experiments.
    pub fn fast() -> Self {
        GaConfig {
            population: 64,
            tournament_k: 3,
            elite: 2,
            max_mutation_swaps: 4,
            rel_improvement: 0.01,
            patience: 8,
            max_generations: 200,
            seed: 0x5_c07e,
            threads: 1,
        }
    }
}

/// Result of a GA run.
#[derive(Debug, Clone)]
pub struct GaResult {
    /// Best allocation found.
    pub best: Allocation,
    /// Its Eq.-(2) communication cost.
    pub best_cost: f64,
    /// Generations executed.
    pub generations: usize,
    /// Best cost after each generation.
    pub history: Vec<f64>,
}

/// GA optimiser over VM allocations.
///
/// # Examples
///
/// ```
/// use score_baselines::{GaConfig, GeneticOptimizer};
/// use score_core::CostModel;
/// use score_topology::CanonicalTree;
/// use score_traffic::WorkloadConfig;
///
/// let topo = CanonicalTree::small();
/// let traffic = WorkloadConfig::new(24, 7).generate();
/// let result = GeneticOptimizer::new(
///     &topo,
///     &traffic,
///     CostModel::paper_default(),
///     16,
///     GaConfig::fast(),
/// )
/// .run();
/// assert!(result.best_cost.is_finite());
/// assert!(result.best.is_consistent());
/// ```
pub struct GeneticOptimizer<'a> {
    topo: &'a dyn Topology,
    traffic: &'a PairTraffic,
    model: CostModel,
    slots_per_server: u32,
    config: GaConfig,
}

impl<'a> std::fmt::Debug for GeneticOptimizer<'a> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GeneticOptimizer")
            .field("topology", &self.topo.name())
            .field("vms", &self.traffic.num_vms())
            .field("config", &self.config)
            .finish()
    }
}

type Genome = Vec<u32>;

impl<'a> GeneticOptimizer<'a> {
    /// Creates an optimiser.
    ///
    /// # Panics
    ///
    /// Panics if the topology cannot hold the VM population or the
    /// configuration is degenerate (empty population, zero tournament).
    pub fn new(
        topo: &'a dyn Topology,
        traffic: &'a PairTraffic,
        model: CostModel,
        slots_per_server: u32,
        config: GaConfig,
    ) -> Self {
        assert!(config.population >= 2, "population must be at least 2");
        assert!(
            config.tournament_k >= 1,
            "tournament size must be at least 1"
        );
        assert!(
            config.elite < config.population,
            "elite must be below population"
        );
        assert!(
            topo.num_servers() as u64 * slots_per_server as u64 >= traffic.num_vms() as u64,
            "topology cannot hold the VM population"
        );
        GeneticOptimizer {
            topo,
            traffic,
            model,
            slots_per_server,
            config,
        }
    }

    fn genome_cost(&self, genome: &Genome) -> f64 {
        let alloc = Allocation::from_fn(
            self.traffic.num_vms(),
            self.topo.num_servers() as u32,
            |vm| ServerId::new(genome[vm.index()]),
        );
        self.model.total_cost(&alloc, self.traffic, self.topo)
    }

    fn evaluate_population(&self, pop: &[Genome]) -> Vec<f64> {
        if self.config.threads <= 1 || pop.len() < 32 {
            return pop.iter().map(|g| self.genome_cost(g)).collect();
        }
        let chunk = pop.len().div_ceil(self.config.threads);
        let mut costs = vec![0.0; pop.len()];
        thread::scope(|s| {
            for (slot, genomes) in costs.chunks_mut(chunk).zip(pop.chunks(chunk)) {
                s.spawn(move |_| {
                    for (c, g) in slot.iter_mut().zip(genomes) {
                        *c = self.genome_cost(g);
                    }
                });
            }
        })
        .expect("fitness workers must not panic");
        costs
    }

    /// Repairs slot-capacity violations: overfull servers evict their
    /// latest arrivals, which go to the first servers with room.
    fn repair(&self, genome: &mut Genome) {
        let servers = self.topo.num_servers();
        let mut occupancy = vec![0u32; servers];
        let mut evicted = Vec::new();
        for (vm, &s) in genome.iter().enumerate() {
            if occupancy[s as usize] < self.slots_per_server {
                occupancy[s as usize] += 1;
            } else {
                evicted.push(vm);
            }
        }
        if evicted.is_empty() {
            return;
        }
        let mut cursor = 0usize;
        for vm in evicted {
            while occupancy[cursor] >= self.slots_per_server {
                cursor += 1;
            }
            genome[vm] = cursor as u32;
            occupancy[cursor] += 1;
        }
    }

    /// Edge-assembly-style crossover: the child starts as parent A and
    /// inherits the complete co-location groups of a random set of servers
    /// from parent B, then is repaired to capacity.
    fn crossover(&self, a: &Genome, b: &Genome, rng: &mut StdRng) -> Genome {
        let servers = self.topo.num_servers() as u32;
        let mut child = a.clone();
        let groups = rng.gen_range(1..=(servers / 4).max(1));
        for _ in 0..groups {
            let s = rng.gen_range(0..servers);
            for (vm, &bs) in b.iter().enumerate() {
                if bs == s {
                    child[vm] = s;
                }
            }
        }
        self.repair(&mut child);
        child
    }

    /// Mutation: swap the servers of a random number of VM pairs
    /// (capacity-preserving by construction).
    fn mutate(&self, genome: &mut Genome, rng: &mut StdRng) {
        let n = genome.len();
        if n < 2 {
            return;
        }
        let swaps = rng.gen_range(1..=self.config.max_mutation_swaps);
        for _ in 0..swaps {
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            genome.swap(i, j);
        }
    }

    fn tournament(&self, costs: &[f64], rng: &mut StdRng) -> usize {
        let mut best = rng.gen_range(0..costs.len());
        for _ in 1..self.config.tournament_k {
            let c = rng.gen_range(0..costs.len());
            if costs[c] < costs[best] {
                best = c;
            }
        }
        best
    }

    /// Runs the GA to convergence.
    pub fn run(&self) -> GaResult {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let num_vms = self.traffic.num_vms();
        let servers = self.topo.num_servers() as u32;

        // Initial population of densely-packed distributions (§VI-A).
        let mut pop: Vec<Genome> = (0..self.config.population)
            .map(|_| {
                shuffled_packed_placement(num_vms, servers, self.slots_per_server, &mut rng)
                    .as_slice()
                    .iter()
                    .map(|s| s.get())
                    .collect()
            })
            .collect();
        let mut costs = self.evaluate_population(&pop);

        let mut history = Vec::new();
        let mut best_idx = argmin(&costs);
        let mut best = (pop[best_idx].clone(), costs[best_idx]);
        history.push(best.1);

        let mut stale = 0usize;
        let mut generations = 0usize;
        while generations < self.config.max_generations && stale < self.config.patience {
            generations += 1;
            // Elitism: carry over the best individuals.
            let mut order: Vec<usize> = (0..pop.len()).collect();
            order.sort_by(|&i, &j| costs[i].partial_cmp(&costs[j]).unwrap());
            let mut next: Vec<Genome> = order
                .iter()
                .take(self.config.elite)
                .map(|&i| pop[i].clone())
                .collect();
            while next.len() < self.config.population {
                let pa = self.tournament(&costs, &mut rng);
                let pb = self.tournament(&costs, &mut rng);
                let mut child = self.crossover(&pop[pa], &pop[pb], &mut rng);
                self.mutate(&mut child, &mut rng);
                self.repair(&mut child);
                next.push(child);
            }
            pop = next;
            costs = self.evaluate_population(&pop);

            best_idx = argmin(&costs);
            let gen_best = costs[best_idx];
            let improvement = if best.1 > 0.0 {
                (best.1 - gen_best) / best.1
            } else {
                0.0
            };
            if gen_best < best.1 {
                best = (pop[best_idx].clone(), gen_best);
            }
            history.push(best.1);
            if improvement < self.config.rel_improvement {
                stale += 1;
            } else {
                stale = 0;
            }
        }

        let alloc = Allocation::from_fn(num_vms, servers, |vm| ServerId::new(best.0[vm.index()]));
        GaResult {
            best: alloc,
            best_cost: best.1,
            generations,
            history,
        }
    }
}

fn argmin(costs: &[f64]) -> usize {
    costs
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .expect("population is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::respects_slots;
    use score_topology::CanonicalTree;
    use score_topology::VmId;
    use score_traffic::{PairTrafficBuilder, WorkloadConfig};

    fn small_world() -> (CanonicalTree, PairTraffic) {
        (
            CanonicalTree::small(),
            WorkloadConfig::new(24, 5).generate(),
        )
    }

    #[test]
    fn ga_result_respects_capacity() {
        let (topo, traffic) = small_world();
        let ga = GeneticOptimizer::new(
            &topo,
            &traffic,
            CostModel::paper_default(),
            4,
            GaConfig::fast(),
        );
        let result = ga.run();
        assert!(respects_slots(&result.best, 4));
        assert!(result.best.is_consistent());
        assert!(result.generations >= 1);
    }

    #[test]
    fn ga_improves_over_random_packing() {
        let (topo, traffic) = small_world();
        let model = CostModel::paper_default();
        let ga = GeneticOptimizer::new(&topo, &traffic, model.clone(), 4, GaConfig::fast());
        let result = ga.run();
        // The GA's best must beat the typical packed individual it started
        // from.
        let mut rng = StdRng::seed_from_u64(99);
        let baseline = shuffled_packed_placement(24, 16, 4, &mut rng);
        let baseline_cost = model.total_cost(&baseline, &traffic, &topo);
        assert!(
            result.best_cost <= baseline_cost,
            "GA {} should beat a random packing {}",
            result.best_cost,
            baseline_cost
        );
        // And its reported cost must match a recomputation.
        let recomputed = model.total_cost(&result.best, &traffic, &topo);
        assert!((recomputed - result.best_cost).abs() < 1e-9);
    }

    #[test]
    fn ga_history_is_monotone_nonincreasing() {
        let (topo, traffic) = small_world();
        let ga = GeneticOptimizer::new(
            &topo,
            &traffic,
            CostModel::paper_default(),
            4,
            GaConfig::fast(),
        );
        let result = ga.run();
        assert!(result.history.windows(2).all(|w| w[1] <= w[0] + 1e-9));
        assert_eq!(result.history.len(), result.generations + 1);
    }

    #[test]
    fn ga_finds_obvious_collocation() {
        // Two heavy 2-VM clusters; the optimum collocates each pair.
        let topo = CanonicalTree::small();
        let mut b = PairTrafficBuilder::new(4);
        b.add(VmId::new(0), VmId::new(1), 1000.0);
        b.add(VmId::new(2), VmId::new(3), 1000.0);
        let traffic = b.build();
        let ga = GeneticOptimizer::new(
            &topo,
            &traffic,
            CostModel::paper_default(),
            4,
            GaConfig::fast(),
        );
        let result = ga.run();
        assert_eq!(result.best_cost, 0.0, "both pairs should be collocated");
    }

    #[test]
    fn parallel_matches_serial_fitness() {
        let (topo, traffic) = small_world();
        let mut cfg = GaConfig::fast();
        cfg.threads = 4;
        cfg.population = 64;
        let ga = GeneticOptimizer::new(&topo, &traffic, CostModel::paper_default(), 4, cfg);
        let mut rng = StdRng::seed_from_u64(5);
        let pop: Vec<Genome> = (0..64)
            .map(|_| {
                shuffled_packed_placement(24, 16, 4, &mut rng)
                    .as_slice()
                    .iter()
                    .map(|s| s.get())
                    .collect()
            })
            .collect();
        let parallel = ga.evaluate_population(&pop);
        let serial: Vec<f64> = pop.iter().map(|g| ga.genome_cost(g)).collect();
        for (p, s) in parallel.iter().zip(&serial) {
            assert!((p - s).abs() < 1e-9);
        }
    }

    #[test]
    fn repair_fixes_overfull_servers() {
        let (topo, traffic) = small_world();
        let ga = GeneticOptimizer::new(
            &topo,
            &traffic,
            CostModel::paper_default(),
            2,
            GaConfig::fast(),
        );
        let mut genome: Genome = vec![0; 24]; // everything on server 0
        ga.repair(&mut genome);
        let alloc = Allocation::from_fn(24, 16, |vm| ServerId::new(genome[vm.index()]));
        assert!(respects_slots(&alloc, 2));
    }

    #[test]
    fn deterministic_under_seed() {
        let (topo, traffic) = small_world();
        let run = || {
            GeneticOptimizer::new(
                &topo,
                &traffic,
                CostModel::paper_default(),
                4,
                GaConfig::fast(),
            )
            .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.best_cost, b.best_cost);
        assert_eq!(a.best, b.best);
        assert_eq!(a.generations, b.generations);
    }

    #[test]
    #[should_panic(expected = "population must be at least 2")]
    fn degenerate_population_rejected() {
        let (topo, traffic) = small_world();
        let mut cfg = GaConfig::fast();
        cfg.population = 1;
        let _ = GeneticOptimizer::new(&topo, &traffic, CostModel::paper_default(), 4, cfg);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn impossible_capacity_rejected() {
        let (topo, traffic) = small_world();
        let _ = GeneticOptimizer::new(&topo, &traffic, CostModel::paper_default(), 1, {
            let mut c = GaConfig::fast();
            c.population = 4;
            c
        });
    }
}
