//! The Graph-Partitioning → Optimal-VM-Allocation reduction (paper
//! appendix), executable.
//!
//! The paper proves OVMA NP-complete by reducing Graph Partitioning (GP,
//! Garey & Johnson) with unit vertex weights to it: vertices become VMs,
//! edge weights become traffic loads λ, the partition capacity `K` becomes
//! the rack capacity, and the cut-weight goal `J` carries over. On a
//! single-level topology (one link weight `c1`) the communication cost of
//! an allocation is `2·c1 ×` the weight of the edges cut by the induced
//! partition, so the decision problems coincide.
//!
//! This module builds the reduced instance on a [`StarTopology`] and
//! verifies the equivalence by brute force on small instances — the
//! appendix, as a test suite.

use score_core::{Allocation, CostModel};
use score_topology::{LinkWeights, ServerId, StarTopology, Topology, VmId};
use score_traffic::{PairTraffic, PairTrafficBuilder};
use serde::{Deserialize, Serialize};

/// A Graph Partitioning instance with unit vertex weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphPartitionInstance {
    /// Number of vertices.
    pub vertices: u32,
    /// Weighted undirected edges `(u, v, l(e))`.
    pub edges: Vec<(u32, u32, f64)>,
    /// Maximum vertices per part (`K`; NP-complete for `K ≥ 3`).
    pub capacity: u32,
    /// Cut-weight goal (`J`).
    pub goal: f64,
}

/// The reduced OVMA instance.
#[derive(Debug, Clone)]
pub struct OvmaInstance {
    /// Pairwise VM traffic: λ(v_i, v_j) = l(e).
    pub traffic: PairTraffic,
    /// One "rack" (here: star-topology server) per potential part.
    pub topology: StarTopology,
    /// Rack capacity `K`.
    pub rack_capacity: u32,
    /// Cost goal: an allocation answers "yes" iff its Eq.-(2) cost is
    /// `≤ 2·c1·J`.
    pub cost_goal: f64,
    /// The cost model with the single link weight `c1`.
    pub model: CostModel,
}

/// Reduces a GP instance to OVMA (polynomial — in fact linear — time).
///
/// # Panics
///
/// Panics if an edge references an out-of-range vertex or has a
/// non-positive weight.
pub fn reduce(gp: &GraphPartitionInstance) -> OvmaInstance {
    let parts = gp.vertices.div_ceil(gp.capacity.max(1)).max(2);
    let mut b = PairTrafficBuilder::new(gp.vertices);
    for &(u, v, w) in &gp.edges {
        b.add(VmId::new(u), VmId::new(v), w);
    }
    let c1 = 1.0;
    OvmaInstance {
        traffic: b.build(),
        // Enough single-server "racks" that every feasible partition is
        // expressible (at most `vertices` parts are ever needed).
        topology: StarTopology::new(gp.vertices.max(parts), 1e9),
        rack_capacity: gp.capacity,
        cost_goal: 2.0 * c1 * gp.goal,
        model: CostModel::new(LinkWeights::new([c1]).expect("single positive weight")),
    }
}

/// Cut weight of the partition induced by an allocation: total weight of
/// edges whose endpoints land on different servers.
pub fn cut_weight(gp: &GraphPartitionInstance, alloc: &Allocation) -> f64 {
    gp.edges
        .iter()
        .filter(|&&(u, v, _)| alloc.server_of(VmId::new(u)) != alloc.server_of(VmId::new(v)))
        .map(|&(_, _, w)| w)
        .sum()
}

/// Brute-force: does a partition with cut weight ≤ `goal` and parts of at
/// most `capacity` vertices exist? Returns the best (minimum) cut weight.
///
/// # Panics
///
/// Panics for instances with more than 10 vertices.
pub fn min_cut_brute_force(gp: &GraphPartitionInstance) -> f64 {
    assert!(gp.vertices <= 10, "brute force limited to 10 vertices");
    let parts = gp.vertices; // at most one part per vertex
    let mut best = f64::INFINITY;
    let n = gp.vertices as usize;
    let total = (parts as u64).pow(n as u32);
    for code in 0..total {
        let mut assignment = vec![0u32; n];
        let mut c = code;
        for slot in assignment.iter_mut() {
            *slot = (c % parts as u64) as u32;
            c /= parts as u64;
        }
        let mut occupancy = vec![0u32; parts as usize];
        let mut feasible = true;
        for &p in &assignment {
            occupancy[p as usize] += 1;
            if occupancy[p as usize] > gp.capacity {
                feasible = false;
                break;
            }
        }
        if !feasible {
            continue;
        }
        let cut: f64 = gp
            .edges
            .iter()
            .filter(|&&(u, v, _)| assignment[u as usize] != assignment[v as usize])
            .map(|&(_, _, w)| w)
            .sum();
        best = best.min(cut);
    }
    best
}

/// Brute-force minimum OVMA cost of a reduced instance.
///
/// # Panics
///
/// Panics for instances with more than 10 VMs.
pub fn min_cost_brute_force(ovma: &OvmaInstance) -> f64 {
    let n = ovma.traffic.num_vms() as usize;
    assert!(n <= 10, "brute force limited to 10 VMs");
    let servers = ovma.topology.num_servers() as u64;
    let mut best = f64::INFINITY;
    for code in 0..servers.pow(n as u32) {
        let mut assignment = vec![0u32; n];
        let mut c = code;
        for slot in assignment.iter_mut() {
            *slot = (c % servers) as u32;
            c /= servers;
        }
        let mut occupancy = vec![0u32; servers as usize];
        let mut feasible = true;
        for &p in &assignment {
            occupancy[p as usize] += 1;
            if occupancy[p as usize] > ovma.rack_capacity {
                feasible = false;
                break;
            }
        }
        if !feasible {
            continue;
        }
        let alloc = Allocation::from_fn(n as u32, servers as u32, |vm| {
            ServerId::new(assignment[vm.index()])
        });
        let cost = ovma.model.total_cost(&alloc, &ovma.traffic, &ovma.topology);
        best = best.min(cost);
    }
    best
}

/// Verifies the reduction on a small instance: the minimum OVMA cost must
/// equal `2·c1 ×` the minimum cut weight, so the decision answers agree
/// for every goal `J`.
pub fn verify_reduction(gp: &GraphPartitionInstance) -> bool {
    let ovma = reduce(gp);
    let min_cut = min_cut_brute_force(gp);
    let min_cost = min_cost_brute_force(&ovma);
    (min_cost - 2.0 * min_cut).abs() < 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> GraphPartitionInstance {
        GraphPartitionInstance {
            vertices: 4,
            edges: vec![(0, 1, 3.0), (1, 2, 2.0), (2, 0, 1.0), (2, 3, 5.0)],
            capacity: 3,
            goal: 3.0,
        }
    }

    #[test]
    fn reduction_structure() {
        let gp = triangle_plus_pendant();
        let ovma = reduce(&gp);
        assert_eq!(ovma.traffic.num_vms(), 4);
        assert_eq!(ovma.traffic.num_pairs(), 4);
        assert_eq!(ovma.rack_capacity, 3);
        assert_eq!(ovma.cost_goal, 6.0);
        assert_eq!(
            ovma.traffic.rate(VmId::new(2), VmId::new(3)),
            5.0,
            "edge weights become traffic loads"
        );
    }

    #[test]
    fn cut_weight_matches_manual() {
        let gp = triangle_plus_pendant();
        // Partition {0,1,2} | {3}: only the (2,3) edge is cut.
        let alloc =
            Allocation::from_fn(4, 4, |vm| ServerId::new(if vm.get() == 3 { 1 } else { 0 }));
        assert_eq!(cut_weight(&gp, &alloc), 5.0);
    }

    #[test]
    fn reduction_is_cost_equivalent() {
        assert!(verify_reduction(&triangle_plus_pendant()));
    }

    #[test]
    fn reduction_equivalence_on_k3_instances() {
        // K=3 keeps GP NP-complete; verify equivalence on several shapes.
        let instances = vec![
            GraphPartitionInstance {
                vertices: 5,
                edges: vec![
                    (0, 1, 1.0),
                    (1, 2, 2.0),
                    (2, 3, 3.0),
                    (3, 4, 4.0),
                    (4, 0, 5.0),
                ],
                capacity: 3,
                goal: 3.0,
            },
            GraphPartitionInstance {
                vertices: 6,
                edges: vec![
                    (0, 1, 10.0),
                    (2, 3, 10.0),
                    (4, 5, 10.0),
                    (1, 2, 1.0),
                    (3, 4, 1.0),
                ],
                capacity: 3,
                goal: 2.0,
            },
        ];
        for gp in instances {
            assert!(verify_reduction(&gp), "equivalence failed for {gp:?}");
        }
    }

    #[test]
    fn min_cut_finds_obvious_partition() {
        // Three heavy pairs with capacity 2: cutting the light chain links
        // is optimal (cut weight 2).
        let gp = GraphPartitionInstance {
            vertices: 6,
            edges: vec![
                (0, 1, 10.0),
                (2, 3, 10.0),
                (4, 5, 10.0),
                (1, 2, 1.0),
                (3, 4, 1.0),
            ],
            capacity: 2,
            goal: 2.0,
        };
        assert_eq!(min_cut_brute_force(&gp), 2.0);
    }

    #[test]
    #[should_panic(expected = "limited to 10")]
    fn brute_force_refuses_large_instances() {
        let gp = GraphPartitionInstance {
            vertices: 11,
            edges: vec![],
            capacity: 3,
            goal: 0.0,
        };
        let _ = min_cut_brute_force(&gp);
    }
}
