//! Baseline VM placement/management algorithms for the S-CORE
//! reproduction.
//!
//! The paper evaluates S-CORE against:
//!
//! * a **GA approximate-optimal** allocation (§VI-A): population 1000,
//!   edge-assembly crossover, tournament selection, rack-swap mutation,
//!   stopping below 1% improvement over 10 generations —
//!   [`GeneticOptimizer`];
//! * **Remedy** (§VI-B, ref. \[15\]): a centralized, OpenFlow-based,
//!   utilization-balancing VM manager — [`Remedy`];
//! * traffic-agnostic initial placements (random / striped / packed) —
//!   [`placement`].
//!
//! Additionally:
//!
//! * [`exhaustive`] provides a provably optimal branch-and-bound search for
//!   tiny instances, used to validate the GA and S-CORE;
//! * [`reduction`] implements the paper's appendix — the Graph-Partitioning
//!   → OVMA NP-completeness reduction — as executable, tested code;
//! * [`forecast`] runs the centralized baselines on the *predicted* TM
//!   (`score_traffic::predicted_traffic`), mirroring the token ring's
//!   forecast-aware decision pipeline.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod exhaustive;
pub mod forecast;
pub mod ga;
pub mod placement;
pub mod reduction;
pub mod remedy;

pub use exhaustive::{exhaustive_optimal, ExhaustiveResult, MAX_STATES};
pub use forecast::remedy_on_forecast;
pub use ga::{GaConfig, GaResult, GeneticOptimizer};
pub use placement::{
    packed_placement, random_placement, respects_slots, shuffled_packed_placement,
    striped_placement,
};
pub use reduction::{
    cut_weight, min_cost_brute_force, min_cut_brute_force, reduce, verify_reduction,
    GraphPartitionInstance, OvmaInstance,
};
pub use remedy::{
    precopy_bytes_estimate, remedy_cost_reduction, Remedy, RemedyConfig, RemedyResult, RemedyStep,
};
