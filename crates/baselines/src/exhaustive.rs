//! Exhaustive optimal allocation for tiny instances.
//!
//! Optimal VM allocation is NP-complete (paper appendix), but for a handful
//! of VMs and servers a branch-and-bound enumeration is tractable. The
//! exhaustive optimum validates both the GA (it must reach or approach it)
//! and S-CORE (its converged cost must be bounded below by it).

use score_core::{Allocation, CostModel};
use score_topology::{ServerId, Topology, VmId};
use score_traffic::PairTraffic;

/// Result of an exhaustive search.
#[derive(Debug, Clone)]
pub struct ExhaustiveResult {
    /// A provably optimal allocation.
    pub best: Allocation,
    /// Its Eq.-(2) cost.
    pub best_cost: f64,
    /// Assignments examined (after pruning).
    pub examined: u64,
}

/// Upper bound on `servers^vms` enumeration effort before
/// [`exhaustive_optimal`] refuses to run.
pub const MAX_STATES: f64 = 5e7;

/// Finds the provably optimal allocation by depth-first enumeration with
/// branch-and-bound pruning on the partial cost.
///
/// # Panics
///
/// Panics if the instance is too large (`servers^vms > MAX_STATES`) or the
/// slot capacity cannot hold the VMs.
pub fn exhaustive_optimal<T: Topology + ?Sized>(
    topo: &T,
    traffic: &PairTraffic,
    model: &CostModel,
    slots_per_server: u32,
) -> ExhaustiveResult {
    let n = traffic.num_vms() as usize;
    let servers = topo.num_servers();
    assert!(
        (servers as f64).powi(n as i32) <= MAX_STATES,
        "instance too large for exhaustive search: {servers}^{n}"
    );
    assert!(
        servers as u64 * slots_per_server as u64 >= n as u64,
        "not enough slots for the VM population"
    );

    let mut assignment = vec![0u32; n];
    let mut occupancy = vec![0u32; servers];
    let mut best_assignment = None;
    let mut best_cost = f64::INFINITY;
    let mut examined = 0u64;

    // Depth-first over VMs in id order; partial cost counts pairs whose
    // both endpoints are already placed.
    #[allow(clippy::too_many_arguments)] // internal DFS carries its whole search state
    fn recurse<T: Topology + ?Sized>(
        vm: usize,
        n: usize,
        servers: usize,
        slots: u32,
        topo: &T,
        traffic: &PairTraffic,
        model: &CostModel,
        assignment: &mut [u32],
        occupancy: &mut [u32],
        partial_cost: f64,
        best_cost: &mut f64,
        best_assignment: &mut Option<Vec<u32>>,
        examined: &mut u64,
    ) {
        if partial_cost >= *best_cost {
            return; // prune: costs only grow as more pairs complete
        }
        if vm == n {
            *examined += 1;
            *best_cost = partial_cost;
            *best_assignment = Some(assignment.to_vec());
            return;
        }
        let u = VmId::new(vm as u32);
        for s in 0..servers {
            if occupancy[s] >= slots {
                continue;
            }
            // Cost added by pairs (u, z) with z already placed.
            let su = ServerId::new(s as u32);
            let mut added = 0.0;
            for &(z, rate) in traffic.peers(u) {
                if (z.index()) < vm {
                    let sz = ServerId::new(assignment[z.index()]);
                    let level = topo.level(su, sz);
                    added += rate * model.weights().prefix(level);
                }
            }
            let added = 2.0 * added;
            assignment[vm] = s as u32;
            occupancy[s] += 1;
            recurse(
                vm + 1,
                n,
                servers,
                slots,
                topo,
                traffic,
                model,
                assignment,
                occupancy,
                partial_cost + added,
                best_cost,
                best_assignment,
                examined,
            );
            occupancy[s] -= 1;
        }
    }

    recurse(
        0,
        n,
        servers,
        slots_per_server,
        topo,
        traffic,
        model,
        &mut assignment,
        &mut occupancy,
        0.0,
        &mut best_cost,
        &mut best_assignment,
        &mut examined,
    );

    let best_vec = best_assignment.expect("at least one feasible assignment exists");
    let best = Allocation::from_fn(n as u32, servers as u32, |vm| {
        ServerId::new(best_vec[vm.index()])
    });
    ExhaustiveResult {
        best,
        best_cost,
        examined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ga::{GaConfig, GeneticOptimizer};
    use score_topology::CanonicalTree;
    use score_traffic::PairTrafficBuilder;

    fn tiny_topo() -> CanonicalTree {
        // 2 racks x 2 hosts, single agg: 4 servers.
        score_topology::CanonicalTreeBuilder::new()
            .racks(2)
            .hosts_per_rack(2)
            .racks_per_agg(2)
            .cores(1)
            .build()
            .unwrap()
    }

    fn chain_traffic(n: u32) -> PairTraffic {
        let mut b = PairTrafficBuilder::new(n);
        for v in 0..n - 1 {
            b.add(VmId::new(v), VmId::new(v + 1), (v + 1) as f64 * 10.0);
        }
        b.build()
    }

    #[test]
    fn optimal_collocates_heavy_chain() {
        let topo = tiny_topo();
        let traffic = chain_traffic(4);
        let result = exhaustive_optimal(&topo, &traffic, &CostModel::paper_default(), 4);
        // All four VMs fit on one server: optimal cost 0.
        assert_eq!(result.best_cost, 0.0);
    }

    #[test]
    fn optimal_with_tight_slots() {
        let topo = tiny_topo();
        let traffic = chain_traffic(4);
        let model = CostModel::paper_default();
        // 2 slots per server: pairs (2,3)-heavy edges should collocate.
        let result = exhaustive_optimal(&topo, &traffic, &model, 2);
        assert!(result.best_cost > 0.0);
        // Verify against a fully naive enumeration of all 4^4 assignments.
        let mut naive_best = f64::INFINITY;
        for mask in 0..(4u32.pow(4)) {
            let digits: Vec<u32> = (0..4).map(|i| (mask / 4u32.pow(i)) % 4).collect();
            let mut occ = [0u32; 4];
            let mut feasible = true;
            for &d in &digits {
                occ[d as usize] += 1;
                if occ[d as usize] > 2 {
                    feasible = false;
                    break;
                }
            }
            if !feasible {
                continue;
            }
            let alloc = Allocation::from_fn(4, 4, |vm| ServerId::new(digits[vm.index()]));
            let cost = model.total_cost(&alloc, &traffic, &topo);
            naive_best = naive_best.min(cost);
        }
        assert!((result.best_cost - naive_best).abs() < 1e-9);
    }

    #[test]
    fn ga_reaches_exhaustive_optimum_on_tiny_instance() {
        let topo = tiny_topo();
        let traffic = chain_traffic(6);
        let model = CostModel::paper_default();
        let exact = exhaustive_optimal(&topo, &traffic, &model, 2);
        let ga = GeneticOptimizer::new(&topo, &traffic, model, 2, GaConfig::fast()).run();
        assert!(
            ga.best_cost <= exact.best_cost * 1.05 + 1e-9,
            "GA {} should be within 5% of optimal {}",
            ga.best_cost,
            exact.best_cost
        );
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_instance_rejected() {
        let topo = CanonicalTree::small(); // 16 servers
        let traffic = chain_traffic(32);
        let _ = exhaustive_optimal(&topo, &traffic, &CostModel::paper_default(), 16);
    }

    #[test]
    fn pruning_still_finds_optimum() {
        // Compare against no-pruning by checking a second traffic shape.
        let topo = tiny_topo();
        let mut b = PairTrafficBuilder::new(5);
        b.add(VmId::new(0), VmId::new(4), 100.0);
        b.add(VmId::new(1), VmId::new(3), 90.0);
        b.add(VmId::new(2), VmId::new(4), 5.0);
        let traffic = b.build();
        let model = CostModel::paper_default();
        let result = exhaustive_optimal(&topo, &traffic, &model, 2);
        let cost = model.total_cost(&result.best, &traffic, &topo);
        assert!((cost - result.best_cost).abs() < 1e-9);
        // Heavy pairs must be collocated in the optimum.
        assert_eq!(
            result.best.server_of(VmId::new(0)),
            result.best.server_of(VmId::new(4))
        );
        assert_eq!(
            result.best.server_of(VmId::new(1)),
            result.best.server_of(VmId::new(3))
        );
    }
}
