//! Traffic-agnostic initial placements.
//!
//! "DCs are built to support a large number of VMs that are initially
//! allocated either at random or in a load-balanced manner" (paper §III).
//! These are the starting points every experiment perturbs, plus the
//! densely-packed placement that seeds the GA's initial population.

use rand::Rng;
use score_core::Allocation;
use score_topology::{ServerId, VmId};

/// Uniform-random placement honouring a per-server slot limit.
///
/// # Panics
///
/// Panics if the total slot capacity cannot hold all VMs.
pub fn random_placement<R: Rng + ?Sized>(
    num_vms: u32,
    num_servers: u32,
    slots_per_server: u32,
    rng: &mut R,
) -> Allocation {
    assert!(
        (num_servers as u64) * (slots_per_server as u64) >= num_vms as u64,
        "not enough slots: {num_servers} servers x {slots_per_server} < {num_vms} VMs"
    );
    let mut occupancy = vec![0u32; num_servers as usize];
    Allocation::from_fn(num_vms, num_servers, |_| loop {
        let s = rng.gen_range(0..num_servers);
        if occupancy[s as usize] < slots_per_server {
            occupancy[s as usize] += 1;
            return ServerId::new(s);
        }
    })
}

/// Load-balanced placement: VM `v` on server `v mod num_servers`
/// (round-robin striping).
///
/// # Panics
///
/// Panics if the striping would exceed `slots_per_server`.
pub fn striped_placement(num_vms: u32, num_servers: u32, slots_per_server: u32) -> Allocation {
    let per_server = num_vms.div_ceil(num_servers.max(1));
    assert!(
        per_server <= slots_per_server,
        "striping puts {per_server} VMs per server, above the limit {slots_per_server}"
    );
    Allocation::from_fn(num_vms, num_servers, |vm| {
        ServerId::new(vm.get() % num_servers)
    })
}

/// Densely packed placement: fill server 0 to its slot limit, then server
/// 1, and so on (first-fit). This is the "densely-packed VM distribution"
/// shape the GA population starts from (§VI-A).
///
/// # Panics
///
/// Panics if the total slot capacity cannot hold all VMs.
pub fn packed_placement(num_vms: u32, num_servers: u32, slots_per_server: u32) -> Allocation {
    assert!(
        (num_servers as u64) * (slots_per_server as u64) >= num_vms as u64,
        "not enough slots"
    );
    Allocation::from_fn(num_vms, num_servers, |vm| {
        ServerId::new(vm.get() / slots_per_server)
    })
}

/// Randomly packed placement: like [`packed_placement`] but the VM order is
/// shuffled, giving a *random* densely-packed individual (the GA's initial
/// population of "densely-packed VM distributions").
pub fn shuffled_packed_placement<R: Rng + ?Sized>(
    num_vms: u32,
    num_servers: u32,
    slots_per_server: u32,
    rng: &mut R,
) -> Allocation {
    assert!(
        (num_servers as u64) * (slots_per_server as u64) >= num_vms as u64,
        "not enough slots"
    );
    let mut vms: Vec<u32> = (0..num_vms).collect();
    // Fisher-Yates shuffle.
    for i in (1..vms.len()).rev() {
        let j = rng.gen_range(0..=i);
        vms.swap(i, j);
    }
    let mut assignment = vec![ServerId::new(0); num_vms as usize];
    for (pos, &vm) in vms.iter().enumerate() {
        assignment[vm as usize] = ServerId::new(pos as u32 / slots_per_server);
    }
    Allocation::from_vec(assignment, num_servers)
}

/// Checks a placement against a uniform slot limit.
pub fn respects_slots(alloc: &Allocation, slots_per_server: u32) -> bool {
    (0..alloc.num_servers()).all(|s| alloc.occupancy(ServerId::new(s)) <= slots_per_server as usize)
}

/// Convenience for experiments: which rack a VM lands on under an
/// allocation and a rack-of-server function.
pub fn rack_of_vm<F>(alloc: &Allocation, vm: VmId, rack_of: F) -> u32
where
    F: Fn(ServerId) -> u32,
{
    rack_of(alloc.server_of(vm))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_respects_capacity() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = random_placement(64, 8, 8, &mut rng);
        assert_eq!(a.num_vms(), 64);
        assert!(respects_slots(&a, 8));
        assert!(a.is_consistent());
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = random_placement(32, 8, 8, &mut StdRng::seed_from_u64(7));
        let b = random_placement(32, 8, 8, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "not enough slots")]
    fn random_rejects_overfull() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = random_placement(65, 8, 8, &mut rng);
    }

    #[test]
    fn striped_balances() {
        let a = striped_placement(16, 4, 8);
        for s in 0..4 {
            assert_eq!(a.occupancy(ServerId::new(s)), 4);
        }
    }

    #[test]
    #[should_panic(expected = "above the limit")]
    fn striped_rejects_overfull() {
        let _ = striped_placement(100, 4, 8);
    }

    #[test]
    fn packed_fills_in_order() {
        let a = packed_placement(10, 4, 4);
        assert_eq!(a.occupancy(ServerId::new(0)), 4);
        assert_eq!(a.occupancy(ServerId::new(1)), 4);
        assert_eq!(a.occupancy(ServerId::new(2)), 2);
        assert_eq!(a.occupancy(ServerId::new(3)), 0);
    }

    #[test]
    fn shuffled_packed_is_packed_but_random() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = shuffled_packed_placement(10, 4, 4, &mut rng);
        assert!(respects_slots(&a, 4));
        // Same density profile as packed: 4, 4, 2 VMs over 3 servers.
        let mut occ: Vec<usize> = (0..4).map(|s| a.occupancy(ServerId::new(s))).collect();
        occ.sort_unstable_by(|x, y| y.cmp(x));
        assert_eq!(occ, vec![4, 4, 2, 0]);
        // Different VM identities than plain packed (with overwhelming
        // probability for this seed).
        assert_ne!(a, packed_placement(10, 4, 4));
    }

    #[test]
    fn rack_of_vm_helper() {
        let a = packed_placement(8, 4, 2);
        assert_eq!(rack_of_vm(&a, VmId::new(5), |s| s.get() / 2), 1);
    }
}
