//! Re-implementation of Remedy (Mann et al., IFIP Networking 2012 — the
//! paper's reference \[15\]), the centralized comparator of §VI-B.
//!
//! Remedy is "network-aware steady state VM management": an OpenFlow
//! controller monitors link utilization globally, detects congested links,
//! and migrates VMs contributing to them onto hosts that *balance* network
//! load — explicitly modelling the cost of each migration as the bytes
//! moved by pre-copy. Unlike S-CORE it aims at balancing utilization, not
//! at localizing traffic to cheap layers, which is why the paper finds it
//! reduces communication cost by only ~10% (vs S-CORE's ~40%) while being
//! more responsive to transient congestion.

use score_core::{Allocation, Cluster, CostModel, LinkLoadMap};
use score_topology::{Level, ServerId, Topology, VmId};
use score_traffic::PairTraffic;
use serde::{Deserialize, Serialize};

/// Estimated bytes transferred by an n-round pre-copy migration — Remedy's
/// migration cost model: a geometric series over the page-dirty/bandwidth
/// ratio, `V · (1 − r^{n+1}) / (1 − r)` with `r = dirty_rate / bandwidth`.
///
/// # Panics
///
/// Panics if `bandwidth_bytes_per_s` is not positive.
pub fn precopy_bytes_estimate(
    ram_bytes: f64,
    dirty_rate_bytes_per_s: f64,
    bandwidth_bytes_per_s: f64,
    rounds: u32,
) -> f64 {
    assert!(bandwidth_bytes_per_s > 0.0, "bandwidth must be positive");
    let r = (dirty_rate_bytes_per_s / bandwidth_bytes_per_s).min(0.99);
    if r <= f64::EPSILON {
        return ram_bytes;
    }
    ram_bytes * (1.0 - r.powi(rounds as i32 + 1)) / (1.0 - r)
}

/// Remedy tunables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RemedyConfig {
    /// Links above this utilization are congested and trigger action.
    pub utilization_threshold: f64,
    /// Lowest link level the controller watches (Remedy cares about the
    /// oversubscribed upper layers).
    pub min_level: Level,
    /// Hard cap on migrations per run.
    pub max_migrations: usize,
    /// How many top contributors of a hot link to consider moving.
    pub candidates_per_step: usize,
    /// How many candidate target hosts to evaluate per VM.
    pub targets_per_candidate: usize,
    /// VM memory for the pre-copy byte estimate, bytes.
    pub vm_ram_bytes: f64,
    /// Page dirty rate, bytes per second.
    pub dirty_rate_bytes_per_s: f64,
    /// Migration-path bandwidth, bytes per second.
    pub migration_bw_bytes_per_s: f64,
    /// Pre-copy rounds assumed by the cost model.
    pub precopy_rounds: u32,
    /// Seconds over which a utilization improvement amortises the
    /// migration bytes (steady-state condition).
    pub amortization_s: f64,
}

impl RemedyConfig {
    /// Configuration matching the paper's comparison setup: 196 MB VMs on
    /// 1 GbE with a moderate dirty rate.
    pub fn paper_default() -> Self {
        RemedyConfig {
            utilization_threshold: 0.05,
            min_level: Level::AGGREGATION,
            max_migrations: 256,
            candidates_per_step: 3,
            targets_per_candidate: 8,
            vm_ram_bytes: 196.0 * 1024.0 * 1024.0,
            dirty_rate_bytes_per_s: 12.0 * 1024.0 * 1024.0,
            migration_bw_bytes_per_s: 125e6, // 1 Gb/s
            precopy_rounds: 4,
            amortization_s: 300.0,
        }
    }
}

impl Default for RemedyConfig {
    fn default() -> Self {
        RemedyConfig::paper_default()
    }
}

/// One migration performed by Remedy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RemedyStep {
    /// The migrated VM.
    pub vm: VmId,
    /// Source server.
    pub from: ServerId,
    /// Destination server.
    pub to: ServerId,
    /// Watched-layer max utilization before the move.
    pub max_util_before: f64,
    /// Watched-layer max utilization after the move.
    pub max_util_after: f64,
    /// Estimated migration traffic in bytes.
    pub migrated_bytes: f64,
}

/// Result of a Remedy run.
#[derive(Debug, Clone, Default)]
pub struct RemedyResult {
    /// Migrations performed, in order.
    pub steps: Vec<RemedyStep>,
    /// Final max utilization on the watched layers.
    pub final_max_util: f64,
}

impl RemedyResult {
    /// Total estimated migration traffic in bytes.
    pub fn total_migrated_bytes(&self) -> f64 {
        self.steps.iter().map(|s| s.migrated_bytes).sum()
    }
}

/// The Remedy controller.
///
/// # Examples
///
/// ```
/// use score_baselines::{Remedy, RemedyConfig};
///
/// let controller = Remedy::new(RemedyConfig::paper_default());
/// // Remedy's own pre-copy cost model prices a 196 MB VM migration.
/// let bytes = controller.migration_bytes();
/// assert!(bytes > 196.0 * 1024.0 * 1024.0);
/// ```
#[derive(Debug, Clone)]
pub struct Remedy {
    config: RemedyConfig,
}

impl Remedy {
    /// Creates a controller.
    pub fn new(config: RemedyConfig) -> Self {
        Remedy { config }
    }

    /// The configuration.
    pub fn config(&self) -> &RemedyConfig {
        &self.config
    }

    /// Per-migration byte cost under the configured pre-copy model.
    pub fn migration_bytes(&self) -> f64 {
        precopy_bytes_estimate(
            self.config.vm_ram_bytes,
            self.config.dirty_rate_bytes_per_s,
            self.config.migration_bw_bytes_per_s,
            self.config.precopy_rounds,
        )
    }

    /// Predicted watched-layer max utilization if `vm` moved to `target`.
    fn predicted_max_util(
        &self,
        vm: VmId,
        target: ServerId,
        alloc: &Allocation,
        traffic: &PairTraffic,
        topo: &dyn Topology,
    ) -> f64 {
        let mut hypothetical = alloc.clone();
        hypothetical.move_vm(vm, target);
        LinkLoadMap::compute(&hypothetical, traffic, topo)
            .max_utilization(self.config.min_level)
            .map_or(0.0, |(_, u)| u)
    }

    /// Candidate target hosts: servers with free capacity, ranked by the
    /// residual headroom of their host link (Remedy balances load, so it
    /// prefers the least-loaded corners of the fabric).
    fn candidate_targets(&self, vm: VmId, cluster: &Cluster, map: &LinkLoadMap) -> Vec<ServerId> {
        let topo = cluster.topo();
        let current = cluster.allocation().server_of(vm);
        let mut targets: Vec<(ServerId, f64)> = topo
            .servers()
            .filter(|&s| s != current)
            .filter(|&s| cluster.can_host(s, vm, 1.0).is_ok())
            .map(|s| {
                // Utilization of the server's access link.
                let shares = topo.route_shares(s, current);
                let host_util = shares
                    .first()
                    .map_or(0.0, |share| map.utilization(share.link));
                (s, host_util)
            })
            .collect();
        targets.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        targets.truncate(self.config.targets_per_candidate);
        targets.into_iter().map(|(s, _)| s).collect()
    }

    /// Runs the controller to steady state (no congested link, no
    /// beneficial move, or the migration cap).
    pub fn run(&self, cluster: &mut Cluster, traffic: &PairTraffic) -> RemedyResult {
        let mut result = RemedyResult::default();
        let bytes_per_migration = self.migration_bytes();

        for _ in 0..self.config.max_migrations {
            let map = LinkLoadMap::compute(cluster.allocation(), traffic, cluster.topo());
            let Some((hot_link, max_util)) = map.max_utilization(self.config.min_level) else {
                break;
            };
            result.final_max_util = max_util;
            if max_util < self.config.utilization_threshold {
                break;
            }

            let contributors =
                LinkLoadMap::contributors(hot_link, cluster.allocation(), traffic, cluster.topo());
            let mut best: Option<(VmId, ServerId, f64)> = None;
            for &(vm, _) in contributors.iter().take(self.config.candidates_per_step) {
                for target in self.candidate_targets(vm, cluster, &map) {
                    let predicted = self.predicted_max_util(
                        vm,
                        target,
                        cluster.allocation(),
                        traffic,
                        cluster.topo(),
                    );
                    if best.as_ref().is_none_or(|&(_, _, b)| predicted < b) {
                        best = Some((vm, target, predicted));
                    }
                }
            }

            let Some((vm, target, predicted)) = best else {
                break;
            };
            // Steady-state gate: the utilization relief, amortised over the
            // configured window on the hot link's capacity, must pay for
            // the migration bytes.
            let relief = max_util - predicted;
            let hot_capacity = cluster.topo().graph().link(hot_link).capacity_bps / 8.0;
            let benefit_bytes = relief * hot_capacity * self.config.amortization_s;
            if relief <= 1e-12 || benefit_bytes <= bytes_per_migration {
                break;
            }
            let from = cluster.allocation().server_of(vm);
            cluster
                .migrate(vm, target, 1.0)
                .expect("candidate_targets validated capacity");
            result.steps.push(RemedyStep {
                vm,
                from,
                to: target,
                max_util_before: max_util,
                max_util_after: predicted,
                migrated_bytes: bytes_per_migration,
            });
            result.final_max_util = predicted;
        }
        result
    }
}

/// Convenience: communication cost before/after a Remedy run (for the
/// Fig. 4b comparison).
pub fn remedy_cost_reduction(
    cluster: &mut Cluster,
    traffic: &PairTraffic,
    model: &CostModel,
    config: RemedyConfig,
) -> (f64, f64, RemedyResult) {
    let before = model.total_cost(cluster.allocation(), traffic, cluster.topo());
    let result = Remedy::new(config).run(cluster, traffic);
    let after = model.total_cost(cluster.allocation(), traffic, cluster.topo());
    (before, after, result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::random_placement;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use score_core::{ServerSpec, VmSpec};
    use score_topology::CanonicalTree;
    use score_traffic::WorkloadConfig;
    use std::sync::Arc;

    fn world(seed: u64) -> (Cluster, PairTraffic) {
        let topo = Arc::new(CanonicalTree::small());
        let traffic = WorkloadConfig::new(48, seed).generate();
        let alloc = random_placement(48, 16, 16, &mut StdRng::seed_from_u64(seed));
        let cluster = Cluster::new(
            topo,
            ServerSpec::paper_default(),
            VmSpec::paper_default(),
            &traffic,
            alloc,
        )
        .unwrap();
        (cluster, traffic)
    }

    #[test]
    fn precopy_estimate_properties() {
        let v = 196e6;
        // No dirtying: exactly the RAM.
        assert_eq!(precopy_bytes_estimate(v, 0.0, 125e6, 4), v);
        // Dirtying inflates the transfer.
        let dirty = precopy_bytes_estimate(v, 30e6, 125e6, 4);
        assert!(dirty > v);
        // More rounds → more bytes, bounded by the geometric limit.
        let more = precopy_bytes_estimate(v, 30e6, 125e6, 8);
        assert!(more >= dirty);
        let limit = v / (1.0 - 30e6 / 125e6);
        assert!(more < limit * 1.001);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn precopy_rejects_zero_bandwidth() {
        let _ = precopy_bytes_estimate(1.0, 1.0, 0.0, 1);
    }

    #[test]
    fn remedy_reduces_max_utilization() {
        let (mut cluster, traffic) = world(11);
        let before = LinkLoadMap::compute(cluster.allocation(), &traffic, cluster.topo())
            .max_utilization(Level::AGGREGATION)
            .unwrap()
            .1;
        let result = Remedy::new(RemedyConfig::paper_default()).run(&mut cluster, &traffic);
        let after = LinkLoadMap::compute(cluster.allocation(), &traffic, cluster.topo())
            .max_utilization(Level::AGGREGATION)
            .unwrap()
            .1;
        assert!(
            after <= before + 1e-12,
            "max util must not increase: {before} -> {after}"
        );
        if !result.steps.is_empty() {
            assert!(after < before, "performed migrations must reduce max util");
            // Every step's bookkeeping is coherent.
            for s in &result.steps {
                assert!(s.max_util_after < s.max_util_before);
                assert!(s.migrated_bytes > 0.0);
            }
        }
    }

    #[test]
    fn remedy_respects_capacity() {
        let (mut cluster, traffic) = world(12);
        Remedy::new(RemedyConfig::paper_default()).run(&mut cluster, &traffic);
        for s in cluster.topo().servers() {
            assert!(cluster.allocation().occupancy(s) <= 16);
        }
        assert!(cluster.allocation().is_consistent());
    }

    #[test]
    fn high_threshold_does_nothing() {
        let (mut cluster, traffic) = world(13);
        let cfg = RemedyConfig {
            utilization_threshold: 1e9,
            ..RemedyConfig::paper_default()
        };
        let result = Remedy::new(cfg).run(&mut cluster, &traffic);
        assert!(result.steps.is_empty());
    }

    #[test]
    fn expensive_migrations_gate_moves() {
        let (mut cluster, traffic) = world(14);
        let cfg = RemedyConfig {
            // Absurd VM size: no relief can amortise it.
            vm_ram_bytes: 1e18,
            ..RemedyConfig::paper_default()
        };
        let result = Remedy::new(cfg).run(&mut cluster, &traffic);
        assert!(result.steps.is_empty());
    }

    #[test]
    fn remedy_cost_reduction_is_modest() {
        // The headline §VI-B contrast: Remedy improves communication cost
        // far less than S-CORE does, because it balances rather than
        // localizes. Here we only assert it does not *increase* cost
        // catastrophically and reports coherent numbers.
        let (mut cluster, traffic) = world(15);
        let model = CostModel::paper_default();
        let (before, after, result) = remedy_cost_reduction(
            &mut cluster,
            &traffic,
            &model,
            RemedyConfig::paper_default(),
        );
        assert!(before > 0.0);
        assert!(after > 0.0);
        assert_eq!(
            result.total_migrated_bytes(),
            result.steps.len() as f64
                * Remedy::new(RemedyConfig::paper_default()).migration_bytes()
        );
    }
}
