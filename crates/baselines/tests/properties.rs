//! Property-based tests for the baselines: GA feasibility/determinism and
//! the NP-reduction equivalence on random instances.

use proptest::prelude::*;
use rand::SeedableRng;
use score_baselines::{
    min_cost_brute_force, min_cut_brute_force, reduce, respects_slots, GaConfig, GeneticOptimizer,
    GraphPartitionInstance, Remedy, RemedyConfig,
};
use score_core::{Cluster, CostModel, ServerSpec, VmSpec};
use score_topology::CanonicalTree;
use score_traffic::WorkloadConfig;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn ga_always_feasible_and_deterministic(seed in 0u64..50, slots in 2u32..6) {
        let topo = CanonicalTree::small();
        let traffic = WorkloadConfig::new(32, seed).generate();
        let mut config = GaConfig::fast();
        config.max_generations = 30;
        config.seed = seed;
        let run = || {
            GeneticOptimizer::new(&topo, &traffic, CostModel::paper_default(), slots, config.clone())
                .run()
        };
        let a = run();
        prop_assert!(respects_slots(&a.best, slots));
        prop_assert!(a.best.is_consistent());
        prop_assert!(a.history.windows(2).all(|w| w[1] <= w[0] + 1e-9));
        let b = run();
        prop_assert_eq!(a.best, b.best);
    }

    #[test]
    fn reduction_equivalence_on_random_instances(
        seed in 0u64..500,
        vertices in 4u32..7,
        extra_edges in 0usize..6,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        // A random connected-ish instance: a path plus random chords.
        let mut edges: Vec<(u32, u32, f64)> =
            (0..vertices - 1).map(|v| (v, v + 1, rng.gen_range(1..10) as f64)).collect();
        for _ in 0..extra_edges {
            let a = rng.gen_range(0..vertices);
            let b = rng.gen_range(0..vertices);
            if a != b && !edges.iter().any(|&(x, y, _)| (x, y) == (a.min(b), a.max(b))) {
                edges.push((a.min(b), a.max(b), rng.gen_range(1..10) as f64));
            }
        }
        let gp = GraphPartitionInstance { vertices, edges, capacity: 3, goal: 5.0 };
        let ovma = reduce(&gp);
        let min_cut = min_cut_brute_force(&gp);
        let min_cost = min_cost_brute_force(&ovma);
        prop_assert!((min_cost - 2.0 * min_cut).abs() < 1e-9,
            "cost {} vs 2 x cut {}", min_cost, min_cut);
    }

    #[test]
    fn remedy_never_worsens_watched_max_util(seed in 0u64..30) {
        use score_core::LinkLoadMap;
        use score_topology::Level;
        let topo: Arc<dyn score_topology::Topology> = Arc::new(CanonicalTree::small());
        let traffic = WorkloadConfig::new(40, seed).generate();
        let alloc = score_baselines::random_placement(
            40, 16, 16, &mut rand::rngs::StdRng::seed_from_u64(seed),
        );
        let mut cluster = Cluster::new(
            Arc::clone(&topo),
            ServerSpec::paper_default(),
            VmSpec::paper_default(),
            &traffic,
            alloc,
        ).unwrap();
        let before = LinkLoadMap::compute(cluster.allocation(), &traffic, cluster.topo())
            .max_utilization(Level::AGGREGATION).map_or(0.0, |(_, u)| u);
        let result = Remedy::new(RemedyConfig::paper_default()).run(&mut cluster, &traffic);
        let after = LinkLoadMap::compute(cluster.allocation(), &traffic, cluster.topo())
            .max_utilization(Level::AGGREGATION).map_or(0.0, |(_, u)| u);
        prop_assert!(after <= before + 1e-9);
        for w in result.steps.windows(2) {
            prop_assert!(w[1].max_util_before <= w[0].max_util_before + 1e-9,
                "Remedy's watched max-util must not regress between steps");
        }
    }
}

/// `rand` is a dev-dependency here; keep the import used even when
/// proptest shrinks aggressively.
#[test]
fn fixture_sanity() {
    let topo = CanonicalTree::small();
    assert_eq!(score_topology::Topology::num_servers(&topo), 16);
}
