//! Property-based tests for the traffic substrate.

use proptest::prelude::*;
use score_topology::{RackId, VmId};
use score_traffic::{
    FlowSampler, PairTrafficBuilder, TrafficIntensity, TrafficMatrix, WorkloadConfig,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pair_rates_symmetric_and_conserved(
        num_vms in 2u32..40,
        edges in prop::collection::vec((0u32..40, 0u32..40, 1.0f64..1e6), 1..60),
    ) {
        let mut b = PairTrafficBuilder::new(num_vms);
        let mut expected_total = 0.0;
        for (u, v, r) in edges {
            let (u, v) = (u % num_vms, v % num_vms);
            if u == v { continue; }
            b.add(VmId::new(u), VmId::new(v), r);
            expected_total += r;
        }
        let t = b.build();
        prop_assert!((t.total_rate() - expected_total).abs() < 1e-6 * expected_total.max(1.0));
        for u in 0..num_vms {
            for &(peer, rate) in t.peers(VmId::new(u)) {
                prop_assert_eq!(t.rate(VmId::new(u), peer), rate);
                prop_assert_eq!(t.rate(peer, VmId::new(u)), rate);
            }
        }
        // Sum of adjacency rates double-counts each pair exactly once.
        let adj_sum: f64 = (0..num_vms)
            .flat_map(|u| t.peers(VmId::new(u)).iter().map(|&(_, r)| r).collect::<Vec<_>>())
            .sum();
        prop_assert!((adj_sum - 2.0 * t.total_rate()).abs() < 1e-6 * adj_sum.max(1.0));
    }

    #[test]
    fn scaling_is_linear(factor in 0.1f64..100.0, seed in 0u64..50) {
        let t = WorkloadConfig::new(60, seed).generate();
        let s = t.scaled(factor);
        prop_assert_eq!(t.num_pairs(), s.num_pairs());
        prop_assert!((s.total_rate() - factor * t.total_rate()).abs()
            < 1e-9 * s.total_rate().max(1.0));
    }

    #[test]
    fn matrix_total_matches_pairs(seed in 0u64..50, racks in 2usize..10) {
        let t = WorkloadConfig::new(80, seed).generate();
        let racks_u = racks as u32;
        let tm = TrafficMatrix::from_pairs(racks, &t, |v| RackId::new(v.get() % racks_u));
        prop_assert!(tm.is_symmetric(1e-9));
        prop_assert!((tm.total() - t.total_rate()).abs() < 1e-6 * t.total_rate().max(1.0));
    }

    #[test]
    fn flow_sampling_conserves_bytes(seed in 0u64..50, window in 1.0f64..100.0) {
        let t = WorkloadConfig::new(30, seed).generate();
        let flows = FlowSampler::new(window, seed).sample(&t);
        let flow_bytes: f64 = flows.iter().map(|f| f.bytes).sum();
        let expected = t.total_rate() / 8.0 * window;
        prop_assert!((flow_bytes - expected).abs() < 1e-6 * expected.max(1.0),
            "flow bytes {} expected {}", flow_bytes, expected);
    }

    #[test]
    fn intensities_are_ordered(seed in 0u64..30) {
        let base = WorkloadConfig::new(100, seed);
        let sparse = base.clone().with_intensity(TrafficIntensity::Sparse).generate();
        let medium = base.clone().with_intensity(TrafficIntensity::Medium).generate();
        let dense = base.with_intensity(TrafficIntensity::Dense).generate();
        prop_assert!(sparse.total_rate() < medium.total_rate());
        prop_assert!(medium.total_rate() < dense.total_rate());
        prop_assert!(sparse.num_pairs() <= medium.num_pairs());
        prop_assert!(medium.num_pairs() <= dense.num_pairs());
    }
}
