//! Synthetic DC workload generator (paper §VI, Fig. 3a–c).
//!
//! The paper built "a DC traffic generator to evaluate S-CORE under
//! realistic DC load patterns at increasing intensities, as these have been
//! reported in a number of DC measurement studies". The salient published
//! properties it reproduces:
//!
//! * the ToR-to-ToR TM is **sparse** and "only a handful of ToRs become
//!   hotspots";
//! * the flow population is **long-tailed**: mice flows dominate counts,
//!   elephants dominate bytes;
//! * application traffic is **clustered**: VMs of a service talk mostly to
//!   one another.
//!
//! Our generator builds a clustered communication graph (services of 4–28
//! VMs with ring + chord structure — large enough that a service does not
//! fit one 16-slot server, so even the optimal allocation pays rack-level
//! cost) plus skewed cross-cluster pairs whose endpoints prefer a small
//! "hot" VM subset. VM ids are shuffled so that id order carries no
//! placement hint (in a real DC, VM ids/IPs are uncorrelated with the
//! service structure — and the Round-Robin token policy must not get an
//! artificial advantage from id-adjacent services).
//!
//! The paper's *medium* and *dense* workloads "scale the initial TM by a
//! factor of 10 and 50": we multiply pair rates by the factor, capped at a
//! per-pair line-rate ceiling (two VMs cannot exchange more than their
//! NICs carry), and densify the cross-cluster pair count sub-linearly
//! (`factor^0.6`) — reproducing the reported harder-to-localise behaviour
//! of denser TMs (the 13% → 28% optimality-gap growth).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use score_topology::VmId;
use serde::{Deserialize, Serialize};

use crate::dist::{LogNormal, RateModel};
use crate::pairwise::{PairTraffic, PairTrafficBuilder};

/// Workload intensity presets matching the paper's three TMs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficIntensity {
    /// The base TM of Fig. 3a.
    Sparse,
    /// The base TM scaled by 10 (Fig. 3b).
    Medium,
    /// The base TM scaled by 50 (Fig. 3c).
    Dense,
}

impl TrafficIntensity {
    /// The paper's scale factor for this intensity (1, 10, 50).
    pub fn scale_factor(self) -> f64 {
        match self {
            TrafficIntensity::Sparse => 1.0,
            TrafficIntensity::Medium => 10.0,
            TrafficIntensity::Dense => 50.0,
        }
    }

    /// Lowercase name for file names and CSV columns.
    pub fn name(self) -> &'static str {
        match self {
            TrafficIntensity::Sparse => "sparse",
            TrafficIntensity::Medium => "medium",
            TrafficIntensity::Dense => "dense",
        }
    }

    /// All intensities in increasing order.
    pub fn all() -> [TrafficIntensity; 3] {
        [
            TrafficIntensity::Sparse,
            TrafficIntensity::Medium,
            TrafficIntensity::Dense,
        ]
    }
}

/// Configuration of the clustered workload generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of VMs (ids `0..num_vms`).
    pub num_vms: u32,
    /// Inclusive range of service-cluster sizes.
    pub cluster_size_range: (u32, u32),
    /// Rate model for intra-cluster pairs (the heavy service traffic).
    pub intra_rate: RateModel,
    /// Rate model for cross-cluster pairs (background chatter).
    pub cross_rate: RateModel,
    /// Base number of cross-cluster pairs per VM at `Sparse` intensity.
    pub cross_pairs_per_vm: f64,
    /// Fraction of VMs designated "hot" (hotspot endpoints).
    pub hot_vm_fraction: f64,
    /// Probability that a cross-pair endpoint is drawn from the hot set.
    pub hot_bias: f64,
    /// Per-pair rate ceiling in bits per second (the line-rate two VM NICs
    /// can sustain for one pair).
    pub pair_rate_cap_bps: f64,
    /// Workload intensity (sparse / medium / dense).
    pub intensity: TrafficIntensity,
    /// RNG seed; equal seeds give identical workloads.
    pub seed: u64,
}

impl WorkloadConfig {
    /// A paper-like configuration for `num_vms` virtual machines.
    pub fn new(num_vms: u32, seed: u64) -> Self {
        WorkloadConfig {
            num_vms,
            cluster_size_range: (4, 28),
            intra_rate: RateModel {
                mice: LogNormal::from_median_sigma(1e6, 1.3),
                ..RateModel::datacenter_default()
            },
            cross_rate: RateModel {
                mice: LogNormal::from_median_sigma(50e3, 1.1),
                ..RateModel::datacenter_default()
            },
            cross_pairs_per_vm: 0.25,
            hot_vm_fraction: 0.05,
            hot_bias: 0.35,
            pair_rate_cap_bps: 250e6,
            intensity: TrafficIntensity::Sparse,
            seed,
        }
    }

    /// Returns a copy with the given intensity.
    pub fn with_intensity(mut self, intensity: TrafficIntensity) -> Self {
        self.intensity = intensity;
        self
    }

    /// Generates the pairwise VM traffic for this configuration.
    ///
    /// # Panics
    ///
    /// Panics if `num_vms == 0` or the cluster size range is empty/zero.
    pub fn generate(&self) -> PairTraffic {
        assert!(self.num_vms > 0, "need at least one VM");
        let (lo, hi) = self.cluster_size_range;
        assert!(lo >= 1 && lo <= hi, "invalid cluster size range");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut builder = PairTrafficBuilder::new(self.num_vms);
        let rate_scale = self.intensity.scale_factor();
        let pair_scale = self.intensity.scale_factor().powf(0.6);
        let cap = self.pair_rate_cap_bps;

        // VM ids carry no structure: shuffle the id space before carving
        // it into service clusters.
        let mut ids: Vec<u32> = (0..self.num_vms).collect();
        for i in (1..ids.len()).rev() {
            let j = rng.gen_range(0..=i);
            ids.swap(i, j);
        }

        // 1. Partition the shuffled ids into service clusters and wire each
        //    cluster as a ring plus random chords (a cheap connected
        //    "multi-tier app").
        let mut start = 0u32;
        while start < self.num_vms {
            let size = rng.gen_range(lo..=hi).min(self.num_vms - start);
            if size >= 2 {
                let member = |i: u32| VmId::new(ids[(start + i) as usize]);
                for i in 0..size {
                    let u = member(i);
                    let v = member((i + 1) % size);
                    if u != v {
                        builder.add(
                            u,
                            v,
                            (self.intra_rate.sample(&mut rng) * rate_scale).min(cap),
                        );
                    }
                }
                let chords = size / 2;
                for _ in 0..chords {
                    let a = member(rng.gen_range(0..size));
                    let b = member(rng.gen_range(0..size));
                    if a != b {
                        builder.add(
                            a,
                            b,
                            (self.intra_rate.sample(&mut rng) * rate_scale).min(cap),
                        );
                    }
                }
            }
            start += size.max(1);
        }

        // 2. Hot VM subset: a handful of endpoints that attract
        //    disproportionate cross-cluster traffic (the TM hotspots).
        let hot_count = ((self.num_vms as f64 * self.hot_vm_fraction).ceil() as u32).max(1);
        let hot: Vec<u32> = (0..hot_count)
            .map(|_| rng.gen_range(0..self.num_vms))
            .collect();

        // 3. Cross-cluster chatter; pair count densifies sub-linearly with
        //    intensity, rates scale linearly (capped).
        let cross_pairs =
            (self.num_vms as f64 * self.cross_pairs_per_vm * pair_scale).round() as u64;
        for _ in 0..cross_pairs {
            let a = if rng.gen::<f64>() < self.hot_bias {
                hot[rng.gen_range(0..hot.len())]
            } else {
                rng.gen_range(0..self.num_vms)
            };
            let b = if rng.gen::<f64>() < self.hot_bias {
                hot[rng.gen_range(0..hot.len())]
            } else {
                rng.gen_range(0..self.num_vms)
            };
            if a != b {
                builder.add(
                    VmId::new(a),
                    VmId::new(b),
                    (self.cross_rate.sample(&mut rng) * rate_scale).min(cap),
                );
            }
        }

        // Accumulated duplicates (ring edge + chord on the same pair) may
        // exceed the ceiling; clamp the final per-pair rates.
        builder.build().capped(cap)
    }
}

/// Convenience: the paper's sparse workload over `num_vms` VMs.
pub fn sparse_workload(num_vms: u32, seed: u64) -> PairTraffic {
    WorkloadConfig::new(num_vms, seed).generate()
}

/// Convenience: the paper's medium (×10) workload.
pub fn medium_workload(num_vms: u32, seed: u64) -> PairTraffic {
    WorkloadConfig::new(num_vms, seed)
        .with_intensity(TrafficIntensity::Medium)
        .generate()
}

/// Convenience: the paper's dense (×50) workload.
pub fn dense_workload(num_vms: u32, seed: u64) -> PairTraffic {
    WorkloadConfig::new(num_vms, seed)
        .with_intensity(TrafficIntensity::Dense)
        .generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let a = sparse_workload(200, 7);
        let b = sparse_workload(200, 7);
        assert_eq!(a, b);
        let c = sparse_workload(200, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn every_vm_covered() {
        let t = sparse_workload(300, 1);
        assert_eq!(t.num_vms(), 300);
        // Clusters of >= 2 give nearly every VM at least one peer; allow a
        // single trailing singleton cluster.
        let isolated = (0..300).filter(|&v| t.degree(VmId::new(v)) == 0).count();
        assert!(isolated <= 1, "{isolated} isolated VMs");
    }

    #[test]
    fn densification_with_intensity() {
        let sparse = sparse_workload(400, 3);
        let medium = medium_workload(400, 3);
        let dense = dense_workload(400, 3);
        assert!(medium.num_pairs() > sparse.num_pairs());
        assert!(dense.num_pairs() > medium.num_pairs());
        // Rates scale with the factor, compressed by the line-rate cap.
        assert!(medium.total_rate() > 2.0 * sparse.total_rate());
        assert!(dense.total_rate() > 1.5 * medium.total_rate());
    }

    #[test]
    fn rates_respect_line_rate_cap() {
        for t in [sparse_workload(300, 9), dense_workload(300, 9)] {
            for (_, _, rate) in t.pairs() {
                assert!(rate <= 250e6 + 1e-6, "pair rate {rate} above cap");
            }
        }
    }

    #[test]
    fn long_tail_property() {
        // The heaviest 10% of pairs should carry the majority of bytes.
        let t = sparse_workload(2000, 11);
        let rates: Vec<f64> = t.pairs().iter().map(|&(_, _, r)| r).collect();
        let total: f64 = rates.iter().sum();
        let mut sorted = rates.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let top10pct: f64 = sorted.iter().take(sorted.len() / 10).sum();
        assert!(
            top10pct / total > 0.5,
            "top 10% of pairs carry {:.2} of bytes",
            top10pct / total
        );
    }

    #[test]
    fn hotspot_skew_exists() {
        // At medium intensity the cross-cluster churn concentrates on the
        // hot VM subset, so the busiest VM far exceeds the mean degree.
        let t = medium_workload(1000, 5);
        let mut degrees: Vec<usize> = (0..1000).map(|v| t.degree(VmId::new(v))).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let mean = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
        assert!(
            degrees[0] as f64 > 2.0 * mean,
            "max {} mean {mean}",
            degrees[0]
        );
    }

    #[test]
    fn ids_carry_no_cluster_structure() {
        // Consecutive ids should usually NOT be cluster peers: with
        // shuffled ids the probability of adjacency is low.
        let t = sparse_workload(1000, 13);
        let adjacent_pairs = (0..999)
            .filter(|&v| t.rate(VmId::new(v), VmId::new(v + 1)) > 0.0)
            .count();
        assert!(
            adjacent_pairs < 100,
            "{adjacent_pairs} of 999 consecutive-id pairs communicate — ids leak structure"
        );
    }

    #[test]
    fn intensity_metadata() {
        assert_eq!(TrafficIntensity::Sparse.scale_factor(), 1.0);
        assert_eq!(TrafficIntensity::Medium.scale_factor(), 10.0);
        assert_eq!(TrafficIntensity::Dense.scale_factor(), 50.0);
        assert_eq!(TrafficIntensity::Dense.name(), "dense");
        assert_eq!(TrafficIntensity::all().len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one VM")]
    fn zero_vms_rejected() {
        let _ = WorkloadConfig::new(0, 1).generate();
    }

    #[test]
    fn tiny_population_works() {
        let t = sparse_workload(2, 9);
        assert_eq!(t.num_vms(), 2);
        assert!(t.num_pairs() <= 1 || t.total_rate() > 0.0);
    }
}
