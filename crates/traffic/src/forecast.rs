//! Short-horizon per-pair rate forecasting (ROADMAP "trace-aware
//! policies").
//!
//! The paper's decision procedure consumes the *current* traffic matrix
//! only, so under time-varying workloads it chases spikes after they
//! land. Predictive dynamic VM management (arXiv:1602.00097) and the
//! migration-timing concerns surveyed in arXiv:1601.03854 both argue
//! for acting on *expected* load instead. [`RateForecaster`] is that
//! contract: an online estimator fed the same absolute re-rates the
//! simulator applies in place, answering "what will λ(u, v) be
//! `horizon_s` seconds from now?".
//!
//! [`EwmaForecaster`] is the measurement-driven implementation: an
//! exponentially weighted linear-trend (Holt-style) estimator per pair,
//! `O(changed pairs)` per observation and deterministic — the same
//! update stream always yields the same predictions, regardless of
//! which thread replays it. The trace-driven *oracle* counterpart
//! (exact lookahead into a compiled trace) lives in
//! `score_trace::OracleForecaster`.

use score_topology::VmId;
use std::collections::HashMap;
use std::fmt;

use crate::pairwise::{PairTraffic, PairTrafficBuilder};

/// An online short-horizon predictor of pairwise traffic rates.
///
/// Implementations are fed the full TM once ([`RateForecaster::prime`])
/// and then the same sparse absolute re-rates the traffic engine
/// applies ([`RateForecaster::observe_updates`]); in return they answer
/// point predictions ([`RateForecaster::predict`]). Predictions must be
/// non-negative and finite, and `predict` must not mutate state — the
/// decision path reads forecasts between observations and must stay
/// side-effect free (the cost ledger, in particular, must never notice
/// a forecaster).
pub trait RateForecaster: fmt::Debug + Send {
    /// Short name for logs and CSV columns (e.g. `"ewma"`, `"oracle"`).
    fn name(&self) -> &'static str;

    /// Resets the estimator onto a full TM observed at `now_s` (session
    /// start, phase rebinds).
    fn prime(&mut self, traffic: &PairTraffic, now_s: f64);

    /// Folds one batch of absolute re-rates observed at `now_s`; each
    /// `(u, v, new_rate)` entry replaces λ(u, v).
    fn observe_updates(&mut self, updates: &[(VmId, VmId, f64)], now_s: f64);

    /// Predicted λ(u, v) in b/s at `now_s + horizon_s`. A horizon of 0
    /// asks for the current estimate.
    fn predict(&self, u: VmId, v: VmId, now_s: f64, horizon_s: f64) -> f64;

    /// Every canonical `(u, v)` pair this forecaster holds state for —
    /// including pairs silent *now* but predicted to appear (a flash
    /// crowd's emerging elephants). Consumers materializing a predicted
    /// TM must union this with the current pairs or they silently drop
    /// exactly the pre-emption cases forecasting exists for.
    fn known_pairs(&self) -> Vec<(VmId, VmId)>;
}

/// Materializes a forecaster's view of the future as a [`PairTraffic`]:
/// the union of `current`'s pairs and the forecaster's
/// [`RateForecaster::known_pairs`], each re-rated to its prediction at
/// `now_s + horizon_s` (pairs predicted to go silent are dropped;
/// pairs silent now but predicted to appear — emerging flash-crowd
/// elephants — are included).
///
/// This is the bridge to the centralized baselines: Remedy, the GA and
/// the exhaustive search all rank placements against a TM, so handing
/// them the *predicted* TM makes every one of them forecast-aware
/// without touching their internals.
pub fn predicted_traffic(
    forecaster: &dyn RateForecaster,
    current: &PairTraffic,
    now_s: f64,
    horizon_s: f64,
) -> PairTraffic {
    let num_vms = current.num_vms();
    let mut pairs: std::collections::BTreeSet<(u32, u32)> = current
        .pairs()
        .iter()
        .map(|&(u, v, _)| (u.get().min(v.get()), u.get().max(v.get())))
        .collect();
    for (u, v) in forecaster.known_pairs() {
        if u.get() < num_vms && v.get() < num_vms {
            pairs.insert((u.get().min(v.get()), u.get().max(v.get())));
        }
    }
    let mut b = PairTrafficBuilder::new(num_vms);
    for (u, v) in pairs {
        let (u, v) = (VmId::new(u), VmId::new(v));
        let rate = forecaster.predict(u, v, now_s, horizon_s);
        if rate > 0.0 && rate.is_finite() {
            b.add(u, v, rate);
        }
    }
    b.build()
}

/// Per-pair state of the EWMA linear-trend estimator.
#[derive(Debug, Clone, Copy)]
struct PairTrend {
    /// Last observed absolute rate (exact — updates are absolute).
    rate: f64,
    /// Smoothed rate-of-change in b/s per second.
    slope: f64,
    /// Time of the last observation.
    last_s: f64,
}

/// Exponentially weighted linear-trend forecaster (Holt-style double
/// smoothing over absolute re-rates).
///
/// The *level* needs no smoothing — observations are absolute rates, so
/// the current level is exact. The *trend* is smoothed: each update
/// blends the instantaneous slope `(new − old) / Δt` into the running
/// slope with weight `alpha`. Prediction extrapolates linearly from the
/// last observation and clamps at zero:
/// `max(0, rate + slope · (now + horizon − last))`.
///
/// # Examples
///
/// ```
/// use score_topology::VmId;
/// use score_traffic::{EwmaForecaster, PairTrafficBuilder, RateForecaster};
///
/// let mut b = PairTrafficBuilder::new(2);
/// b.add(VmId::new(0), VmId::new(1), 1e6);
/// let tm = b.build();
/// let mut f = EwmaForecaster::new(1.0); // no smoothing: pure trend
/// f.prime(&tm, 0.0);
/// // The pair ramps by 1 Mb/s every 10 s …
/// f.observe_updates(&[(VmId::new(0), VmId::new(1), 2e6)], 10.0);
/// // … so 20 s ahead it should sit near 4 Mb/s.
/// let ahead = f.predict(VmId::new(0), VmId::new(1), 10.0, 20.0);
/// assert!((ahead - 4e6).abs() < 1.0);
/// // Horizon 0 returns the current rate exactly.
/// assert_eq!(f.predict(VmId::new(0), VmId::new(1), 10.0, 0.0), 2e6);
/// ```
#[derive(Debug, Clone)]
pub struct EwmaForecaster {
    alpha: f64,
    pairs: HashMap<(u32, u32), PairTrend>,
}

impl EwmaForecaster {
    /// Creates the forecaster with trend-smoothing weight `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 1` (1 = no smoothing, track the
    /// instantaneous slope; small values react slowly but resist
    /// noise).
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0, 1], got {alpha}"
        );
        EwmaForecaster {
            alpha,
            pairs: HashMap::new(),
        }
    }

    /// The trend-smoothing weight.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of pairs currently tracked.
    pub fn tracked_pairs(&self) -> usize {
        self.pairs.len()
    }

    fn key(u: VmId, v: VmId) -> (u32, u32) {
        if u < v {
            (u.get(), v.get())
        } else {
            (v.get(), u.get())
        }
    }
}

impl RateForecaster for EwmaForecaster {
    fn name(&self) -> &'static str {
        "ewma"
    }

    fn prime(&mut self, traffic: &PairTraffic, now_s: f64) {
        self.pairs.clear();
        for (u, v, rate) in traffic.pairs() {
            self.pairs.insert(
                Self::key(u, v),
                PairTrend {
                    rate,
                    slope: 0.0,
                    last_s: now_s,
                },
            );
        }
    }

    fn observe_updates(&mut self, updates: &[(VmId, VmId, f64)], now_s: f64) {
        for &(u, v, new_rate) in updates {
            let key = Self::key(u, v);
            match self.pairs.get_mut(&key) {
                Some(t) => {
                    let dt = now_s - t.last_s;
                    if dt > 0.0 {
                        let inst = (new_rate - t.rate) / dt;
                        t.slope = self.alpha * inst + (1.0 - self.alpha) * t.slope;
                        t.last_s = now_s;
                    }
                    // Repeated observations at one instant: the last
                    // absolute rate wins, the trend keeps its estimate.
                    t.rate = new_rate;
                }
                None => {
                    // A pair appearing out of nowhere carries no trend
                    // information yet; start flat.
                    self.pairs.insert(
                        key,
                        PairTrend {
                            rate: new_rate,
                            slope: 0.0,
                            last_s: now_s,
                        },
                    );
                }
            }
        }
    }

    fn predict(&self, u: VmId, v: VmId, now_s: f64, horizon_s: f64) -> f64 {
        match self.pairs.get(&Self::key(u, v)) {
            Some(t) => (t.rate + t.slope * (now_s + horizon_s - t.last_s)).max(0.0),
            None => 0.0,
        }
    }

    fn known_pairs(&self) -> Vec<(VmId, VmId)> {
        self.pairs
            .keys()
            .map(|&(u, v)| (VmId::new(u), VmId::new(v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vm(i: u32) -> VmId {
        VmId::new(i)
    }

    fn tm(pairs: &[(u32, u32, f64)]) -> PairTraffic {
        let n = pairs
            .iter()
            .map(|&(u, v, _)| u.max(v) + 1)
            .max()
            .unwrap_or(2);
        let mut b = PairTrafficBuilder::new(n);
        for &(u, v, r) in pairs {
            b.add(vm(u), vm(v), r);
        }
        b.build()
    }

    #[test]
    fn primed_pairs_predict_their_rate_flat() {
        let mut f = EwmaForecaster::new(0.5);
        f.prime(&tm(&[(0, 1, 5e6), (1, 2, 1e6)]), 0.0);
        assert_eq!(f.tracked_pairs(), 2);
        // No updates yet: the forecast is the primed rate at any horizon.
        assert_eq!(f.predict(vm(0), vm(1), 0.0, 0.0), 5e6);
        assert_eq!(f.predict(vm(0), vm(1), 50.0, 100.0), 5e6);
        assert_eq!(f.predict(vm(2), vm(3), 0.0, 10.0), 0.0, "unknown pair");
    }

    #[test]
    fn linear_ramp_is_extrapolated() {
        let mut f = EwmaForecaster::new(1.0);
        f.prime(&tm(&[(0, 1, 0.0 + 1e6)]), 0.0);
        for step in 1..=5u32 {
            let t = f64::from(step) * 10.0;
            f.observe_updates(&[(vm(0), vm(1), 1e6 + f64::from(step) * 1e6)], t);
        }
        // Rate at t=50 is 6 Mb/s climbing 0.1 Mb/s²; 30 s ahead ≈ 9 Mb/s.
        let ahead = f.predict(vm(0), vm(1), 50.0, 30.0);
        assert!((ahead - 9e6).abs() < 1.0, "got {ahead}");
    }

    #[test]
    fn declining_pairs_clamp_at_zero() {
        let mut f = EwmaForecaster::new(1.0);
        f.prime(&tm(&[(0, 1, 1e6)]), 0.0);
        f.observe_updates(&[(vm(0), vm(1), 0.5e6)], 10.0);
        // Slope −50 kb/s²: 100 s ahead the linear extrapolation is
        // negative, the forecast is clamped.
        assert_eq!(f.predict(vm(0), vm(1), 10.0, 100.0), 0.0);
    }

    #[test]
    fn direction_is_canonical() {
        let mut f = EwmaForecaster::new(0.5);
        f.prime(&tm(&[(0, 1, 2e6)]), 0.0);
        f.observe_updates(&[(vm(1), vm(0), 4e6)], 5.0);
        assert_eq!(f.tracked_pairs(), 1);
        assert_eq!(f.predict(vm(0), vm(1), 5.0, 0.0), 4e6);
        assert_eq!(
            f.predict(vm(0), vm(1), 5.0, 0.0),
            f.predict(vm(1), vm(0), 5.0, 0.0)
        );
    }

    #[test]
    fn smoothing_damps_noise() {
        let mut smooth = EwmaForecaster::new(0.2);
        let mut jumpy = EwmaForecaster::new(1.0);
        let base = tm(&[(0, 1, 1e6)]);
        smooth.prime(&base, 0.0);
        jumpy.prime(&base, 0.0);
        // A steady ramp followed by one spurious dip.
        for (t, r) in [(10.0, 2e6), (20.0, 3e6), (30.0, 4e6), (40.0, 1e6)] {
            smooth.observe_updates(&[(vm(0), vm(1), r)], t);
            jumpy.observe_updates(&[(vm(0), vm(1), r)], t);
        }
        // α = 1 swings to the dip's full negative slope; α = 0.2 keeps
        // most of the accumulated upward trend.
        let s = smooth.predict(vm(0), vm(1), 40.0, 10.0);
        let j = jumpy.predict(vm(0), vm(1), 40.0, 10.0);
        assert!(s > j, "smoothed {s} vs jumpy {j}");
    }

    #[test]
    fn prime_resets_state() {
        let mut f = EwmaForecaster::new(0.7);
        f.prime(&tm(&[(0, 1, 1e6)]), 0.0);
        f.observe_updates(&[(vm(0), vm(1), 9e6)], 10.0);
        f.prime(&tm(&[(0, 1, 2e6)]), 0.0);
        assert_eq!(f.predict(vm(0), vm(1), 0.0, 100.0), 2e6, "trend cleared");
    }

    #[test]
    fn predicted_traffic_materializes_the_forecast() {
        let mut f = EwmaForecaster::new(1.0);
        let base = tm(&[(0, 1, 1e6), (1, 2, 2e6)]);
        f.prime(&base, 0.0);
        // (0,1) ramps up; (1,2) collapses towards zero.
        f.observe_updates(&[(vm(0), vm(1), 2e6), (vm(1), vm(2), 0.2e6)], 10.0);
        let current = tm(&[(0, 1, 2e6), (1, 2, 0.2e6)]);
        let ahead = predicted_traffic(&f, &current, 10.0, 20.0);
        assert!((ahead.rate(vm(0), vm(1)) - 4e6).abs() < 1.0);
        // The collapsing pair extrapolates below zero and is dropped.
        assert_eq!(ahead.rate(vm(1), vm(2)), 0.0);
        assert_eq!(ahead.num_pairs(), 1);
    }

    #[test]
    fn predicted_traffic_includes_emerging_pairs() {
        // Pair (0, 2) is absent from the *current* TM but the
        // forecaster has seen it appear — the predicted TM must carry
        // it (this is the pre-emption case the bridge exists for).
        let mut b = PairTrafficBuilder::new(4);
        b.add(vm(0), vm(1), 1e6);
        let current = b.build();
        let mut f = EwmaForecaster::new(1.0);
        f.prime(&current, 0.0);
        f.observe_updates(&[(vm(0), vm(2), 5e6)], 10.0);
        assert_eq!(f.known_pairs().len(), 2);
        let ahead = predicted_traffic(&f, &current, 10.0, 20.0);
        assert_eq!(ahead.rate(vm(0), vm(2)), 5e6);
        assert_eq!(ahead.num_pairs(), 2);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn invalid_alpha_rejected() {
        let _ = EwmaForecaster::new(0.0);
    }

    #[test]
    fn forecaster_name() {
        assert_eq!(EwmaForecaster::new(0.5).name(), "ewma");
    }
}
