//! ToR-to-ToR traffic matrices (paper Fig. 3a–c).
//!
//! A [`TrafficMatrix`] aggregates pairwise VM rates to rack granularity
//! given a placement. The paper characterises its generated TMs as *sparse*
//! with "only a handful of ToRs \[becoming\] hotspots", in accordance with
//! published DC measurements.

use score_topology::{RackId, VmId};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

use crate::pairwise::PairTraffic;

/// Dense rack×rack matrix of traffic rates (bits per second).
///
/// Entry `(i, j)` is the rate flowing from rack `i` to rack `j`. Pairwise VM
/// rates are bidirectional aggregates, so aggregation splits them evenly
/// between the two directions; the matrix is therefore symmetric when built
/// from [`PairTraffic`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficMatrix {
    racks: usize,
    cells: Vec<f64>,
}

impl TrafficMatrix {
    /// Creates a zero matrix over `racks` racks.
    ///
    /// # Panics
    ///
    /// Panics if `racks == 0`.
    pub fn zeros(racks: usize) -> Self {
        assert!(racks > 0, "matrix needs at least one rack");
        TrafficMatrix {
            racks,
            cells: vec![0.0; racks * racks],
        }
    }

    /// Aggregates pairwise VM traffic to rack granularity under the given
    /// placement (`rack_of(vm)`).
    ///
    /// Intra-rack traffic lands on the diagonal; it is part of the TM even
    /// though it never crosses a 2-level link.
    ///
    /// # Panics
    ///
    /// Panics if `rack_of` returns an out-of-range rack.
    pub fn from_pairs<F>(racks: usize, traffic: &PairTraffic, mut rack_of: F) -> Self
    where
        F: FnMut(VmId) -> RackId,
    {
        let mut m = TrafficMatrix::zeros(racks);
        for (u, v, rate) in traffic.pairs() {
            let ru = rack_of(u).index();
            let rv = rack_of(v).index();
            assert!(ru < racks && rv < racks, "rack out of range");
            let half = rate / 2.0;
            m.cells[ru * racks + rv] += half;
            m.cells[rv * racks + ru] += half;
        }
        m
    }

    /// Number of racks.
    pub fn racks(&self) -> usize {
        self.racks
    }

    /// Rate from rack `i` to rack `j`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.racks && j < self.racks, "rack index out of range");
        self.cells[i * self.racks + j]
    }

    /// Adds `rate` to the `(i, j)` cell.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range or `rate` is negative.
    pub fn add(&mut self, i: usize, j: usize, rate: f64) {
        assert!(i < self.racks && j < self.racks, "rack index out of range");
        assert!(rate >= 0.0, "rate must be non-negative");
        self.cells[i * self.racks + j] += rate;
    }

    /// Multiplies every cell by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn scale(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "factor must be positive"
        );
        for c in &mut self.cells {
            *c *= factor;
        }
    }

    /// The largest cell value.
    pub fn max(&self) -> f64 {
        self.cells.iter().copied().fold(0.0, f64::max)
    }

    /// Sum of all cells.
    pub fn total(&self) -> f64 {
        self.cells.iter().sum()
    }

    /// Sum of off-diagonal cells — the traffic that must traverse at least
    /// one ToR uplink.
    pub fn inter_rack_total(&self) -> f64 {
        let mut sum = 0.0;
        for i in 0..self.racks {
            for j in 0..self.racks {
                if i != j {
                    sum += self.cells[i * self.racks + j];
                }
            }
        }
        sum
    }

    /// Fraction of cells whose value exceeds `threshold` — the paper's TM
    /// *density*.
    pub fn density(&self, threshold: f64) -> f64 {
        let hot = self.cells.iter().filter(|&&c| c > threshold).count();
        hot as f64 / self.cells.len() as f64
    }

    /// Number of "hotspot" cells: those above `fraction` of the maximum.
    pub fn hotspots(&self, fraction: f64) -> usize {
        let cut = self.max() * fraction;
        if cut == 0.0 {
            return 0;
        }
        self.cells.iter().filter(|&&c| c >= cut).count()
    }

    /// Share of total traffic carried by the hottest `fraction` of cells —
    /// the scale-independent "handful of ToRs become hotspots" property.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `(0, 1]`.
    pub fn top_cell_share(&self, fraction: f64) -> f64 {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        let total = self.total();
        if total == 0.0 {
            return 0.0;
        }
        let mut sorted = self.cells.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        let take = ((sorted.len() as f64 * fraction).ceil() as usize).max(1);
        sorted.iter().take(take).sum::<f64>() / total
    }

    /// Cells normalised to `[0, 1]` by the global maximum (for heatmap
    /// rendering like Fig. 3a–c).
    pub fn normalized(&self) -> Vec<f64> {
        let max = self.max();
        if max == 0.0 {
            return vec![0.0; self.cells.len()];
        }
        self.cells.iter().map(|&c| c / max).collect()
    }

    /// True if the matrix equals its transpose (within `tol`).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for i in 0..self.racks {
            for j in (i + 1)..self.racks {
                if (self.get(i, j) - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Renders the matrix as CSV (`from_rack,to_rack,rate_bps`, hot cells
    /// only: rate > 0).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("from_tor,to_tor,rate_bps,normalized\n");
        let max = self.max().max(f64::MIN_POSITIVE);
        for i in 0..self.racks {
            for j in 0..self.racks {
                let v = self.get(i, j);
                if v > 0.0 {
                    let _ = writeln!(out, "{i},{j},{v:.3},{:.6}", v / max);
                }
            }
        }
        out
    }

    /// Renders a coarse ASCII heatmap (downsampled to at most `size`×`size`
    /// character cells) — a terminal stand-in for Fig. 3a–c.
    pub fn to_ascii_heatmap(&self, size: usize) -> String {
        const SHADES: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
        let size = size.clamp(1, self.racks);
        let max = self.max();
        let mut out = String::new();
        let step = self.racks as f64 / size as f64;
        for bi in 0..size {
            for bj in 0..size {
                let i0 = (bi as f64 * step) as usize;
                let i1 = (((bi + 1) as f64 * step) as usize)
                    .max(i0 + 1)
                    .min(self.racks);
                let j0 = (bj as f64 * step) as usize;
                let j1 = (((bj + 1) as f64 * step) as usize)
                    .max(j0 + 1)
                    .min(self.racks);
                let mut peak: f64 = 0.0;
                for i in i0..i1 {
                    for j in j0..j1 {
                        peak = peak.max(self.get(i, j));
                    }
                }
                let shade = if max == 0.0 {
                    0
                } else {
                    ((peak / max) * (SHADES.len() - 1) as f64).round() as usize
                };
                out.push(SHADES[shade.min(SHADES.len() - 1)]);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairwise::PairTrafficBuilder;

    fn sample_traffic() -> PairTraffic {
        let mut b = PairTrafficBuilder::new(6);
        b.add(VmId::new(0), VmId::new(1), 10.0); // racks 0-0
        b.add(VmId::new(0), VmId::new(2), 20.0); // racks 0-1
        b.add(VmId::new(3), VmId::new(5), 40.0); // racks 1-2
        b.build()
    }

    fn rack_of(vm: VmId) -> RackId {
        RackId::new(vm.get() / 2) // 2 VMs per rack
    }

    #[test]
    fn aggregation_from_pairs() {
        let m = TrafficMatrix::from_pairs(3, &sample_traffic(), rack_of);
        assert_eq!(m.get(0, 0), 10.0); // intra-rack lands on the diagonal
        assert_eq!(m.get(0, 1), 10.0); // half of 20 each way
        assert_eq!(m.get(1, 0), 10.0);
        assert_eq!(m.get(1, 2), 20.0);
        assert!(m.is_symmetric(1e-12));
        assert_eq!(m.total(), 70.0);
        assert_eq!(m.inter_rack_total(), 60.0);
    }

    #[test]
    fn scaling() {
        let mut m = TrafficMatrix::from_pairs(3, &sample_traffic(), rack_of);
        m.scale(10.0);
        assert_eq!(m.get(1, 2), 200.0);
        assert_eq!(m.max(), 200.0);
    }

    #[test]
    fn density_and_hotspots() {
        let m = TrafficMatrix::from_pairs(3, &sample_traffic(), rack_of);
        // 5 cells are nonzero out of 9.
        assert!((m.density(0.0) - 5.0 / 9.0).abs() < 1e-12);
        assert_eq!(m.hotspots(0.9), 2); // the 1-2 and 2-1 cells
        assert_eq!(TrafficMatrix::zeros(2).hotspots(0.5), 0);
    }

    #[test]
    fn top_cell_share_concentration() {
        let m = TrafficMatrix::from_pairs(3, &sample_traffic(), rack_of);
        // The two hottest cells (1-2 and 2-1 at 20 each) carry 40/70.
        let share = m.top_cell_share(2.0 / 9.0);
        assert!((share - 40.0 / 70.0).abs() < 1e-9, "share {share}");
        assert_eq!(m.top_cell_share(1.0), 1.0);
        assert_eq!(TrafficMatrix::zeros(2).top_cell_share(0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn top_cell_share_rejects_zero() {
        let _ = TrafficMatrix::zeros(2).top_cell_share(0.0);
    }

    #[test]
    fn normalization() {
        let m = TrafficMatrix::from_pairs(3, &sample_traffic(), rack_of);
        let n = m.normalized();
        assert!(n.iter().all(|&x| (0.0..=1.0).contains(&x)));
        assert!((n.iter().cloned().fold(0.0, f64::max) - 1.0).abs() < 1e-12);
        assert_eq!(TrafficMatrix::zeros(2).normalized(), vec![0.0; 4]);
    }

    #[test]
    fn csv_contains_hot_cells() {
        let m = TrafficMatrix::from_pairs(3, &sample_traffic(), rack_of);
        let csv = m.to_csv();
        assert!(csv.starts_with("from_tor,to_tor,rate_bps,normalized"));
        assert!(csv.contains("1,2,20.000"));
        // zero cells are omitted
        assert!(!csv.contains("\n0,2,"));
    }

    #[test]
    fn ascii_heatmap_dimensions() {
        let m = TrafficMatrix::from_pairs(3, &sample_traffic(), rack_of);
        let art = m.to_ascii_heatmap(3);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.chars().count() == 3));
        // the hottest cell renders as the densest shade
        assert!(art.contains('@'));
    }

    #[test]
    fn ascii_heatmap_downsamples() {
        let m = TrafficMatrix::zeros(64);
        let art = m.to_ascii_heatmap(8);
        assert_eq!(art.lines().count(), 8);
    }

    #[test]
    #[should_panic(expected = "at least one rack")]
    fn zero_rack_matrix_rejected() {
        let _ = TrafficMatrix::zeros(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let m = TrafficMatrix::zeros(2);
        let _ = m.get(0, 2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_add_panics() {
        let mut m = TrafficMatrix::zeros(2);
        m.add(0, 1, -1.0);
    }
}
