//! Synthetic data-center traffic for the S-CORE reproduction.
//!
//! This crate is the stand-in for the paper's custom "DC traffic generator"
//! (§VI) that produced workloads "under realistic DC load patterns at
//! increasing intensities" calibrated to published measurement studies.
//! It provides:
//!
//! * pairwise VM loads λ(u, v) with per-VM peer sets ([`PairTraffic`]) — the
//!   local information S-CORE's migration condition consumes;
//! * a clustered, hotspot-skewed workload generator with the paper's
//!   sparse / medium (×10) / dense (×50) intensities
//!   ([`WorkloadConfig`], [`TrafficIntensity`]);
//! * ToR-to-ToR traffic matrices for the Fig. 3a–c heatmaps
//!   ([`TrafficMatrix`]);
//! * discrete flow instantiation with long-tail mice/elephant structure
//!   ([`FlowSampler`], [`Flow`]);
//! * short-horizon per-pair rate forecasting for the forecast-aware
//!   decision pipeline ([`RateForecaster`], [`EwmaForecaster`]);
//! * CBR background load for the migration experiments ([`CbrLoad`]);
//! * hand-rolled distributions (log-normal, bounded Pareto, exponential) in
//!   [`dist`].
//!
//! # Examples
//!
//! ```
//! use score_traffic::{sparse_workload, TrafficMatrix};
//! use score_topology::{RackId, VmId};
//!
//! let traffic = sparse_workload(400, 42);
//! // Aggregate to a 20-rack TM with a trivial placement: VM v on rack v/20.
//! let tm = TrafficMatrix::from_pairs(20, &traffic, |v| RackId::new(v.get() / 20));
//! assert!(tm.is_symmetric(1e-9));
//! assert!(tm.total() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cbr;
pub mod dist;
pub mod estimator;
pub mod flows;
pub mod forecast;
pub mod generator;
pub mod matrix;
pub mod pairwise;

pub use cbr::{residual_bandwidth, CbrLoad};
pub use estimator::RateEstimator;
pub use flows::{Flow, FlowClass, FlowSampler, ELEPHANT_THRESHOLD_BPS};
pub use forecast::{predicted_traffic, EwmaForecaster, RateForecaster};
pub use generator::{
    dense_workload, medium_workload, sparse_workload, TrafficIntensity, WorkloadConfig,
};
pub use matrix::TrafficMatrix;
pub use pairwise::{PairHandle, PairTraffic, PairTrafficBuilder};
