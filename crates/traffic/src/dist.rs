//! Random distributions used by the traffic generator.
//!
//! DC measurement studies (Kandula et al. IMC'09, Benson et al. IMC'10 —
//! the paper's refs \[18\]\[19\]\[23\]) report long-tailed flow populations:
//! *mice* flows dominate in number while a small set of *elephants* carries
//! most bytes. We model rates with a log-normal body and a bounded-Pareto
//! tail. The `rand` crate ships only uniform sampling, so the transforms are
//! implemented here from first principles.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Samples a standard normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling U1 from the half-open (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Log-normal distribution parameterised by the underlying normal's
/// mean `mu` and standard deviation `sigma`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use score_traffic::dist::LogNormal;
///
/// let d = LogNormal::from_median_sigma(10_000.0, 1.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let x = d.sample(&mut rng);
/// assert!(x > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates the distribution from the underlying normal parameters.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            mu.is_finite() && sigma.is_finite() && sigma >= 0.0,
            "invalid log-normal"
        );
        LogNormal { mu, sigma }
    }

    /// Creates the distribution from its median (`e^mu`) and `sigma`,
    /// which is how traffic rates are most naturally specified.
    ///
    /// # Panics
    ///
    /// Panics if `median` is not positive.
    pub fn from_median_sigma(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0, "median must be positive");
        LogNormal::new(median.ln(), sigma)
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }

    /// The distribution median `e^mu`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// The distribution mean `e^(mu + sigma²/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }
}

/// Bounded Pareto distribution on `[min, max]` with tail index `alpha`.
///
/// Used for elephant-flow rates: heavy-tailed but capped at a physically
/// plausible maximum (e.g. the NIC line rate).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundedPareto {
    alpha: f64,
    min: f64,
    max: f64,
}

impl BoundedPareto {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min < max` and `alpha > 0`.
    pub fn new(alpha: f64, min: f64, max: f64) -> Self {
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
        assert!(
            min > 0.0 && min < max && max.is_finite(),
            "need 0 < min < max"
        );
        BoundedPareto { alpha, min, max }
    }

    /// Draws one sample by inverse-transform sampling.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen::<f64>().min(1.0 - 1e-12);
        let la = self.min.powf(self.alpha);
        let ha = self.max.powf(self.alpha);
        // Inverse CDF of the bounded Pareto.
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / self.alpha)
    }

    /// Lower bound of the support.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Upper bound of the support.
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Exponential distribution with the given rate (events per unit time),
/// used for flow inter-arrival times.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is positive and finite.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        Exponential { rate }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>();
        -u.ln() / self.rate
    }

    /// The mean inter-arrival time `1 / rate`.
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }
}

/// A two-population rate model: log-normal mice with a probability
/// `elephant_prob` of drawing from a bounded-Pareto elephant tail instead.
///
/// This is the distribution behind every pairwise VM rate λ(u, v) the
/// generator produces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateModel {
    /// Mice-rate distribution.
    pub mice: LogNormal,
    /// Elephant-rate distribution.
    pub elephants: BoundedPareto,
    /// Probability that a pair is an elephant pair.
    pub elephant_prob: f64,
}

impl RateModel {
    /// Rates representative of published DC measurements: mice with a
    /// median of ~50 kb/s, 5% elephant pairs between 10 and 400 Mb/s.
    pub fn datacenter_default() -> Self {
        RateModel {
            mice: LogNormal::from_median_sigma(50e3, 1.2),
            elephants: BoundedPareto::new(1.2, 10e6, 400e6),
            elephant_prob: 0.05,
        }
    }

    /// Draws one pairwise rate in bits per second.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if rng.gen::<f64>() < self.elephant_prob {
            self.elephants.sample(rng)
        } else {
            self.mice.sample(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn lognormal_median_close() {
        let d = LogNormal::from_median_sigma(100.0, 0.8);
        let mut r = rng();
        let mut samples: Vec<f64> = (0..10_001).map(|_| d.sample(&mut r)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[5000];
        assert!((median / 100.0 - 1.0).abs() < 0.15, "median {median}");
        assert!((d.median() - 100.0).abs() < 1e-9);
        assert!(d.mean() > d.median());
    }

    #[test]
    fn bounded_pareto_support() {
        let d = BoundedPareto::new(1.5, 10.0, 1000.0);
        let mut r = rng();
        for _ in 0..10_000 {
            let x = d.sample(&mut r);
            assert!(
                x >= d.min() - 1e-9 && x <= d.max() + 1e-9,
                "sample {x} out of bounds"
            );
        }
    }

    #[test]
    fn bounded_pareto_is_heavy_tailed() {
        // With alpha=1.2 a noticeable fraction of mass sits far above min.
        let d = BoundedPareto::new(1.2, 10.0, 10_000.0);
        let mut r = rng();
        let n = 20_000;
        let over = (0..n).filter(|_| d.sample(&mut r) > 100.0).count();
        let frac = over as f64 / n as f64;
        assert!(frac > 0.02 && frac < 0.3, "tail fraction {frac}");
    }

    #[test]
    fn exponential_mean() {
        let d = Exponential::new(2.0);
        let mut r = rng();
        let n = 20_000;
        let mean = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert_eq!(d.mean(), 0.5);
    }

    #[test]
    fn rate_model_mixes_populations() {
        let m = RateModel::datacenter_default();
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| m.sample(&mut r)).collect();
        let elephants = samples.iter().filter(|&&x| x >= 10e6).count();
        let frac = elephants as f64 / n as f64;
        assert!(frac > 0.02 && frac < 0.10, "elephant fraction {frac}");
        // Elephants should dominate the byte count (long-tail property).
        let total: f64 = samples.iter().sum();
        let elephant_bytes: f64 = samples.iter().filter(|&&x| x >= 10e6).sum();
        assert!(elephant_bytes / total > 0.5, "elephants carry most bytes");
    }

    #[test]
    #[should_panic(expected = "median must be positive")]
    fn lognormal_rejects_bad_median() {
        let _ = LogNormal::from_median_sigma(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "0 < min < max")]
    fn pareto_rejects_inverted_bounds() {
        let _ = BoundedPareto::new(1.0, 10.0, 5.0);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_zero_rate() {
        let _ = Exponential::new(0.0);
    }
}
