//! Pairwise VM traffic loads λ(u, v) — the communication graph.
//!
//! The paper (§III) defines λ(u, v) as the average rate exchanged between
//! VMs u and v (incoming *and* outgoing) over a measurement window.
//! [`PairTraffic`] stores those unordered pairwise rates together with a
//! per-VM adjacency (`Vu`, "the set of VMs that exchange data with VM u"),
//! which is exactly the local information S-CORE consults when a VM holds
//! the migration token.

use score_topology::VmId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Builder that accumulates pairwise rates before freezing them into a
/// [`PairTraffic`].
#[derive(Debug, Clone, Default)]
pub struct PairTrafficBuilder {
    num_vms: u32,
    // Canonically ordered (min, max) pair → accumulated rate.
    rates: BTreeMap<(u32, u32), f64>,
}

impl PairTrafficBuilder {
    /// Creates a builder for VMs `0..num_vms`.
    pub fn new(num_vms: u32) -> Self {
        PairTrafficBuilder {
            num_vms,
            rates: BTreeMap::new(),
        }
    }

    /// Adds `rate` (bits per second, both directions combined) between `u`
    /// and `v`, accumulating with any rate already recorded for the pair.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` (self-traffic never leaves the VM), if either id
    /// is out of range, or if `rate` is not positive and finite.
    pub fn add(&mut self, u: VmId, v: VmId, rate: f64) -> &mut Self {
        assert_ne!(u, v, "self-traffic is not part of the communication graph");
        assert!(u.get() < self.num_vms, "vm {u} out of range");
        assert!(v.get() < self.num_vms, "vm {v} out of range");
        assert!(
            rate.is_finite() && rate > 0.0,
            "rate must be positive and finite"
        );
        let key = if u < v {
            (u.get(), v.get())
        } else {
            (v.get(), u.get())
        };
        *self.rates.entry(key).or_insert(0.0) += rate;
        self
    }

    /// Number of distinct pairs recorded so far.
    pub fn num_pairs(&self) -> usize {
        self.rates.len()
    }

    /// Freezes the builder into an immutable [`PairTraffic`].
    pub fn build(&self) -> PairTraffic {
        let mut adjacency: Vec<Vec<(VmId, f64)>> = vec![Vec::new(); self.num_vms as usize];
        let mut total = 0.0;
        for (&(u, v), &rate) in &self.rates {
            adjacency[u as usize].push((VmId::new(v), rate));
            adjacency[v as usize].push((VmId::new(u), rate));
            total += rate;
        }
        for peers in &mut adjacency {
            peers.sort_by_key(|&(vm, _)| vm);
        }
        PairTraffic {
            num_vms: self.num_vms,
            pairs: self
                .rates
                .iter()
                .map(|(&(u, v), &r)| (VmId::new(u), VmId::new(v), r))
                .collect(),
            adjacency,
            total,
        }
    }
}

/// Immutable pairwise VM traffic: rates λ(u, v) and per-VM peer sets `Vu`.
///
/// # Examples
///
/// ```
/// use score_topology::VmId;
/// use score_traffic::PairTrafficBuilder;
///
/// let mut b = PairTrafficBuilder::new(3);
/// b.add(VmId::new(0), VmId::new(1), 100.0);
/// b.add(VmId::new(1), VmId::new(2), 50.0);
/// let traffic = b.build();
/// assert_eq!(traffic.rate(VmId::new(1), VmId::new(0)), 100.0);
/// assert_eq!(traffic.peers(VmId::new(1)).len(), 2);
/// assert_eq!(traffic.total_rate(), 150.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairTraffic {
    num_vms: u32,
    /// Canonical (u < v) pair list.
    pairs: Vec<(VmId, VmId, f64)>,
    /// `adjacency[u]` = Vu with rates, sorted by peer id.
    adjacency: Vec<Vec<(VmId, f64)>>,
    total: f64,
}

impl PairTraffic {
    /// An empty communication graph over `num_vms` VMs.
    pub fn empty(num_vms: u32) -> Self {
        PairTrafficBuilder::new(num_vms).build()
    }

    /// Number of VMs (ids are dense `0..num_vms`).
    pub fn num_vms(&self) -> u32 {
        self.num_vms
    }

    /// Number of communicating pairs.
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Rate λ(u, v); zero if the pair does not communicate.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn rate(&self, u: VmId, v: VmId) -> f64 {
        assert!(
            u.get() < self.num_vms && v.get() < self.num_vms,
            "vm out of range"
        );
        if u == v {
            return 0.0;
        }
        let peers = &self.adjacency[u.index()];
        match peers.binary_search_by_key(&v, |&(p, _)| p) {
            Ok(i) => peers[i].1,
            Err(_) => 0.0,
        }
    }

    /// The peer set `Vu` of a VM, with rates, sorted by peer id.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn peers(&self, u: VmId) -> &[(VmId, f64)] {
        assert!(u.get() < self.num_vms, "vm {u} out of range");
        &self.adjacency[u.index()]
    }

    /// Number of peers of `u`.
    pub fn degree(&self, u: VmId) -> usize {
        self.peers(u).len()
    }

    /// All pairs `(u, v, λ)` with `u < v`.
    pub fn pairs(&self) -> &[(VmId, VmId, f64)] {
        &self.pairs
    }

    /// Sum of λ over all pairs.
    pub fn total_rate(&self) -> f64 {
        self.total
    }

    /// Average number of peers per VM (communication-graph density).
    pub fn mean_degree(&self) -> f64 {
        if self.num_vms == 0 {
            return 0.0;
        }
        2.0 * self.pairs.len() as f64 / self.num_vms as f64
    }

    /// Returns a copy with every rate multiplied by `factor` — the paper's
    /// "scaled the initial TM by a factor of 10 and 50".
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn scaled(&self, factor: f64) -> PairTraffic {
        assert!(
            factor.is_finite() && factor > 0.0,
            "factor must be positive"
        );
        PairTraffic {
            num_vms: self.num_vms,
            pairs: self
                .pairs
                .iter()
                .map(|&(u, v, r)| (u, v, r * factor))
                .collect(),
            adjacency: self
                .adjacency
                .iter()
                .map(|peers| peers.iter().map(|&(p, r)| (p, r * factor)).collect())
                .collect(),
            total: self.total * factor,
        }
    }

    /// Returns a copy with every pair rate clamped to at most `cap` —
    /// the line-rate ceiling a single VM pair can physically sustain.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is not positive and finite.
    pub fn capped(&self, cap: f64) -> PairTraffic {
        assert!(cap.is_finite() && cap > 0.0, "cap must be positive");
        let pairs: Vec<(VmId, VmId, f64)> = self
            .pairs
            .iter()
            .map(|&(u, v, r)| (u, v, r.min(cap)))
            .collect();
        let adjacency: Vec<Vec<(VmId, f64)>> = self
            .adjacency
            .iter()
            .map(|peers| peers.iter().map(|&(p, r)| (p, r.min(cap))).collect())
            .collect();
        let total = pairs.iter().map(|&(_, _, r)| r).sum();
        PairTraffic {
            num_vms: self.num_vms,
            pairs,
            adjacency,
            total,
        }
    }

    /// Applies absolute-rate updates **in place**: each `(u, v, rate)`
    /// entry *replaces* λ(u, v) (a rate of `0` removes the pair).
    /// Updates are canonicalized and applied in order, so when the same
    /// pair appears twice the later entry wins. Each touched pair costs
    /// one binary search in the pair list and one per endpoint adjacency
    /// — no map rebuild, no reallocation of untouched state — which is
    /// what keeps trace replay at O(changed pairs) per event. The
    /// running total is adjusted incrementally (it can drift from a
    /// fresh summation by ordinary float rounding).
    ///
    /// # Panics
    ///
    /// Panics if an update names a self-pair, an out-of-range VM, or a
    /// negative/non-finite rate.
    pub fn apply_updates(&mut self, updates: &[(VmId, VmId, f64)]) {
        fn set_peer(peers: &mut Vec<(VmId, f64)>, peer: VmId, rate: f64) {
            match peers.binary_search_by_key(&peer, |&(p, _)| p) {
                Ok(i) if rate == 0.0 => {
                    peers.remove(i);
                }
                Ok(i) => peers[i].1 = rate,
                Err(_) if rate == 0.0 => {}
                Err(i) => peers.insert(i, (peer, rate)),
            }
        }
        for &(u, v, rate) in updates {
            assert_ne!(u, v, "self-traffic is not part of the communication graph");
            assert!(
                u.get() < self.num_vms && v.get() < self.num_vms,
                "vm out of range"
            );
            assert!(
                rate.is_finite() && rate >= 0.0,
                "rate must be finite and >= 0"
            );
            let (u, v) = if u < v { (u, v) } else { (v, u) };
            match self
                .pairs
                .binary_search_by_key(&(u, v), |&(a, b, _)| (a, b))
            {
                Ok(i) => {
                    let old = self.pairs[i].2;
                    if old == rate {
                        continue;
                    }
                    if rate == 0.0 {
                        self.pairs.remove(i);
                    } else {
                        self.pairs[i].2 = rate;
                    }
                    set_peer(&mut self.adjacency[u.index()], v, rate);
                    set_peer(&mut self.adjacency[v.index()], u, rate);
                    self.total += rate - old;
                }
                Err(i) => {
                    if rate == 0.0 {
                        continue;
                    }
                    self.pairs.insert(i, (u, v, rate));
                    set_peer(&mut self.adjacency[u.index()], v, rate);
                    set_peer(&mut self.adjacency[v.index()], u, rate);
                    self.total += rate;
                }
            }
        }
    }

    /// Returns a copy with the given absolute-rate updates applied —
    /// [`PairTraffic::apply_updates`] on a clone.
    ///
    /// # Panics
    ///
    /// Panics on the same invalid updates as
    /// [`PairTraffic::apply_updates`].
    #[must_use]
    pub fn updated(&self, updates: &[(VmId, VmId, f64)]) -> PairTraffic {
        let mut next = self.clone();
        next.apply_updates(updates);
        next
    }

    /// Grows the population by one VM (the next dense id), returning the
    /// new VM's id. The newcomer starts with an empty peer set — rates
    /// involving it arrive later through
    /// [`PairTraffic::apply_updates`] — so growth never touches existing
    /// pairs and costs O(1).
    pub fn push_vm(&mut self) -> VmId {
        let vm = VmId::new(self.num_vms);
        self.num_vms += 1;
        self.adjacency.push(Vec::new());
        vm
    }

    /// Merges another communication graph over the same VM population into
    /// this one, accumulating rates of shared pairs.
    ///
    /// # Panics
    ///
    /// Panics if the VM populations differ.
    pub fn merged(&self, other: &PairTraffic) -> PairTraffic {
        assert_eq!(self.num_vms, other.num_vms, "VM populations differ");
        let mut b = PairTrafficBuilder::new(self.num_vms);
        for &(u, v, r) in self.pairs.iter().chain(other.pairs.iter()) {
            b.add(u, v, r);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> PairTraffic {
        let mut b = PairTrafficBuilder::new(4);
        b.add(VmId::new(0), VmId::new(1), 10.0);
        b.add(VmId::new(1), VmId::new(2), 20.0);
        b.add(VmId::new(2), VmId::new(0), 30.0);
        b.build()
    }

    #[test]
    fn rates_are_symmetric() {
        let t = triangle();
        assert_eq!(t.rate(VmId::new(0), VmId::new(1)), 10.0);
        assert_eq!(t.rate(VmId::new(1), VmId::new(0)), 10.0);
        assert_eq!(t.rate(VmId::new(0), VmId::new(3)), 0.0);
        assert_eq!(t.rate(VmId::new(0), VmId::new(0)), 0.0);
    }

    #[test]
    fn adjacency_is_sorted_and_complete() {
        let t = triangle();
        let peers = t.peers(VmId::new(0));
        assert_eq!(peers, &[(VmId::new(1), 10.0), (VmId::new(2), 30.0)]);
        assert_eq!(t.degree(VmId::new(3)), 0);
        assert_eq!(t.degree(VmId::new(1)), 2);
    }

    #[test]
    fn duplicate_adds_accumulate() {
        let mut b = PairTrafficBuilder::new(2);
        b.add(VmId::new(0), VmId::new(1), 5.0);
        b.add(VmId::new(1), VmId::new(0), 7.0);
        let t = b.build();
        assert_eq!(t.rate(VmId::new(0), VmId::new(1)), 12.0);
        assert_eq!(t.num_pairs(), 1);
    }

    #[test]
    fn totals_and_density() {
        let t = triangle();
        assert_eq!(t.total_rate(), 60.0);
        assert_eq!(t.num_pairs(), 3);
        assert!((t.mean_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn scaling_scales_everything() {
        let t = triangle().scaled(10.0);
        assert_eq!(t.rate(VmId::new(0), VmId::new(1)), 100.0);
        assert_eq!(t.total_rate(), 600.0);
        assert_eq!(t.num_pairs(), 3); // pure scaling preserves the pattern
    }

    #[test]
    fn updated_replaces_inserts_and_removes() {
        let t = triangle();
        let next = t.updated(&[
            (VmId::new(1), VmId::new(0), 99.0), // replace (canonicalized)
            (VmId::new(2), VmId::new(0), 0.0),  // remove
            (VmId::new(1), VmId::new(3), 7.0),  // insert
        ]);
        assert_eq!(next.rate(VmId::new(0), VmId::new(1)), 99.0);
        assert_eq!(next.rate(VmId::new(0), VmId::new(2)), 0.0);
        assert_eq!(next.rate(VmId::new(1), VmId::new(3)), 7.0);
        assert_eq!(next.rate(VmId::new(1), VmId::new(2)), 20.0); // untouched
        assert_eq!(next.num_pairs(), 3);
        assert_eq!(next.total_rate(), 99.0 + 7.0 + 20.0);
        // Adjacency stays consistent with the pair list.
        assert_eq!(next.peers(VmId::new(0)), &[(VmId::new(1), 99.0)]);
        assert_eq!(next.degree(VmId::new(3)), 1);
        // The original is untouched.
        assert_eq!(t.num_pairs(), 3);
    }

    #[test]
    fn updated_matches_builder_equivalent() {
        let t = triangle();
        let next = t.updated(&[(VmId::new(0), VmId::new(3), 5.0)]);
        let mut b = PairTrafficBuilder::new(4);
        b.add(VmId::new(0), VmId::new(1), 10.0);
        b.add(VmId::new(1), VmId::new(2), 20.0);
        b.add(VmId::new(2), VmId::new(0), 30.0);
        b.add(VmId::new(0), VmId::new(3), 5.0);
        assert_eq!(next, b.build());
        // Later duplicate update wins; empty updates are identity.
        let twice = t.updated(&[
            (VmId::new(0), VmId::new(1), 1.0),
            (VmId::new(0), VmId::new(1), 2.0),
        ]);
        assert_eq!(twice.rate(VmId::new(0), VmId::new(1)), 2.0);
        assert_eq!(t.updated(&[]), t);
        // Removing a pair that does not exist is a no-op.
        assert_eq!(t.updated(&[(VmId::new(0), VmId::new(3), 0.0)]), t);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn updated_rejects_negative_rates() {
        let _ = triangle().updated(&[(VmId::new(0), VmId::new(1), -1.0)]);
    }

    #[test]
    fn merge_accumulates() {
        let t = triangle();
        let m = t.merged(&t);
        assert_eq!(m.rate(VmId::new(0), VmId::new(1)), 20.0);
        assert_eq!(m.num_pairs(), 3);
    }

    #[test]
    fn empty_graph() {
        let t = PairTraffic::empty(5);
        assert_eq!(t.num_vms(), 5);
        assert_eq!(t.num_pairs(), 0);
        assert_eq!(t.total_rate(), 0.0);
        assert_eq!(t.mean_degree(), 0.0);
    }

    #[test]
    #[should_panic(expected = "self-traffic")]
    fn rejects_self_pairs() {
        PairTrafficBuilder::new(2).add(VmId::new(1), VmId::new(1), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        PairTrafficBuilder::new(2).add(VmId::new(0), VmId::new(5), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_non_positive_rate() {
        PairTrafficBuilder::new(2).add(VmId::new(0), VmId::new(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "populations differ")]
    fn merge_rejects_mismatched_populations() {
        let a = PairTraffic::empty(2);
        let b = PairTraffic::empty(3);
        let _ = a.merged(&b);
    }
}
