//! Pairwise VM traffic loads λ(u, v) — the communication graph.
//!
//! The paper (§III) defines λ(u, v) as the average rate exchanged between
//! VMs u and v (incoming *and* outgoing) over a measurement window.
//! [`PairTraffic`] stores those unordered pairwise rates together with a
//! per-VM adjacency (`Vu`, "the set of VMs that exchange data with VM u"),
//! which is exactly the local information S-CORE consults when a VM holds
//! the migration token.
//!
//! # Storage layout (struct of arrays)
//!
//! Rates live in flat parallel arrays — `ep_u[h]`, `ep_v[h]`, `rates[h]`
//! — indexed by a stable integer [`PairHandle`] `h`. Removing a pair
//! tombstones its slot (rate 0) and recycles the handle through a free
//! list; nothing else moves, so every other handle stays valid. A dense
//! per-VM adjacency index (`Vu` sorted by peer id, position-aligned with
//! the owning handles) resolves `(u, v)` → handle in O(log degree) —
//! *degree*, not cluster size, which is what keeps sparse trace deltas
//! flat as pair counts grow into the millions. Dense rescales
//! ([`PairTraffic::scale_all_in_place`]) are a single sweep over the one
//! contiguous rate array plus the adjacency mirror — a vectorizable loop
//! instead of a per-pair search cascade.
//!
//! ## Handle stability contract
//!
//! A [`PairHandle`] obtained from [`PairTraffic::handle`] stays valid —
//! same pair, O(1) access — for as long as the pair is live. Setting a
//! pair's rate to 0 removes it and *invalidates* its handle; the slot may
//! be recycled for a future insertion. Accessing a stale handle panics
//! (the slot is either tombstoned or owned by a different pair).
//! Canonical iteration order ([`PairTraffic::pairs`]) is by `(u, v)`,
//! independent of handle numbering, so cost summation order — and with
//! it byte-identical reports — survives any churn history.

use score_topology::VmId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Builder that accumulates pairwise rates before freezing them into a
/// [`PairTraffic`].
#[derive(Debug, Clone, Default)]
pub struct PairTrafficBuilder {
    num_vms: u32,
    // Canonically ordered (min, max) pair → accumulated rate.
    rates: BTreeMap<(u32, u32), f64>,
}

impl PairTrafficBuilder {
    /// Creates a builder for VMs `0..num_vms`.
    pub fn new(num_vms: u32) -> Self {
        PairTrafficBuilder {
            num_vms,
            rates: BTreeMap::new(),
        }
    }

    /// Adds `rate` (bits per second, both directions combined) between `u`
    /// and `v`, accumulating with any rate already recorded for the pair.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` (self-traffic never leaves the VM), if either id
    /// is out of range, or if `rate` is not positive and finite.
    pub fn add(&mut self, u: VmId, v: VmId, rate: f64) -> &mut Self {
        assert_ne!(u, v, "self-traffic is not part of the communication graph");
        assert!(u.get() < self.num_vms, "vm {u} out of range");
        assert!(v.get() < self.num_vms, "vm {v} out of range");
        assert!(
            rate.is_finite() && rate > 0.0,
            "rate must be positive and finite"
        );
        let key = if u < v {
            (u.get(), v.get())
        } else {
            (v.get(), u.get())
        };
        *self.rates.entry(key).or_insert(0.0) += rate;
        self
    }

    /// Number of distinct pairs recorded so far.
    pub fn num_pairs(&self) -> usize {
        self.rates.len()
    }

    /// Freezes the builder into an immutable [`PairTraffic`].
    pub fn build(&self) -> PairTraffic {
        let n = self.rates.len();
        let mut ep_u = Vec::with_capacity(n);
        let mut ep_v = Vec::with_capacity(n);
        let mut rates = Vec::with_capacity(n);
        // (peer, rate, handle) staging rows, sorted by peer id below.
        let mut adj: Vec<Vec<(VmId, f64, u32)>> = vec![Vec::new(); self.num_vms as usize];
        let mut total = 0.0;
        for (h, (&(u, v), &rate)) in self.rates.iter().enumerate() {
            ep_u.push(VmId::new(u));
            ep_v.push(VmId::new(v));
            rates.push(rate);
            adj[u as usize].push((VmId::new(v), rate, h as u32));
            adj[v as usize].push((VmId::new(u), rate, h as u32));
            total += rate;
        }
        let mut adjacency = Vec::with_capacity(adj.len());
        let mut adj_handles = Vec::with_capacity(adj.len());
        for mut rows in adj {
            rows.sort_by_key(|&(vm, _, _)| vm);
            adjacency.push(rows.iter().map(|&(vm, r, _)| (vm, r)).collect());
            adj_handles.push(rows.iter().map(|&(_, _, h)| h).collect());
        }
        PairTraffic {
            num_vms: self.num_vms,
            ep_u,
            ep_v,
            rates,
            free: Vec::new(),
            live: n,
            canonical: true,
            adjacency,
            adj_handles,
            total,
        }
    }
}

/// A stable integer handle naming one live communicating pair inside a
/// [`PairTraffic`] (see the module docs for the stability contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PairHandle(u32);

impl PairHandle {
    /// The handle's slot index into the flat rate array.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Pairwise VM traffic: rates λ(u, v) and per-VM peer sets `Vu`, stored
/// struct-of-arrays with stable pair handles (see the module docs).
///
/// # Examples
///
/// ```
/// use score_topology::VmId;
/// use score_traffic::PairTrafficBuilder;
///
/// let mut b = PairTrafficBuilder::new(3);
/// b.add(VmId::new(0), VmId::new(1), 100.0);
/// b.add(VmId::new(1), VmId::new(2), 50.0);
/// let traffic = b.build();
/// assert_eq!(traffic.rate(VmId::new(1), VmId::new(0)), 100.0);
/// assert_eq!(traffic.peers(VmId::new(1)).len(), 2);
/// assert_eq!(traffic.total_rate(), 150.0);
/// let h = traffic.handle(VmId::new(0), VmId::new(1)).unwrap();
/// assert_eq!(traffic.rate_of(h), 100.0);
/// ```
#[derive(Debug, Clone)]
pub struct PairTraffic {
    num_vms: u32,
    /// Slot arrays: endpoint `u < v` and the rate, indexed by handle.
    /// Tombstoned slots carry rate 0 and sit on the free list.
    ep_u: Vec<VmId>,
    ep_v: Vec<VmId>,
    rates: Vec<f64>,
    /// Recycled slot indices (tombstones).
    free: Vec<u32>,
    /// Number of live pairs.
    live: usize,
    /// True while iterating slots `0..len` in index order (skipping
    /// tombstones) yields pairs in canonical `(u, v)` order. Builders
    /// emit canonical layouts; re-rates and removals preserve the
    /// property (a subsequence of a sorted sequence stays sorted);
    /// insertions clear it.
    canonical: bool,
    /// `adjacency[u]` = Vu with rates, sorted by peer id.
    adjacency: Vec<Vec<(VmId, f64)>>,
    /// `adj_handles[u][i]` = slot of the pair `(u, adjacency[u][i].0)`.
    adj_handles: Vec<Vec<u32>>,
    total: f64,
}

impl PartialEq for PairTraffic {
    /// Semantic equality: same population and same live `(u, v, λ)` set
    /// (and identical running total). Slot numbering, tombstones and
    /// free-list state are storage details two equal graphs may differ
    /// in — a builder-built graph equals its churned-into twin.
    fn eq(&self, other: &Self) -> bool {
        self.num_vms == other.num_vms
            && self.live == other.live
            && self.total == other.total
            && self.pairs() == other.pairs()
    }
}

impl Serialize for PairTraffic {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("num_vms".to_string(), self.num_vms.to_value()),
            ("pairs".to_string(), self.pairs().to_value()),
        ])
    }
}

impl Deserialize for PairTraffic {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected PairTraffic object"))?;
        let num_vms = u32::from_value(serde::field(obj, "num_vms")?)?;
        let pairs = Vec::<(VmId, VmId, f64)>::from_value(serde::field(obj, "pairs")?)?;
        let mut b = PairTrafficBuilder::new(num_vms);
        for (u, v, r) in pairs {
            b.add(u, v, r);
        }
        Ok(b.build())
    }
}

impl PairTraffic {
    /// An empty communication graph over `num_vms` VMs.
    pub fn empty(num_vms: u32) -> Self {
        PairTrafficBuilder::new(num_vms).build()
    }

    /// Number of VMs (ids are dense `0..num_vms`).
    pub fn num_vms(&self) -> u32 {
        self.num_vms
    }

    /// Number of communicating pairs.
    pub fn num_pairs(&self) -> usize {
        self.live
    }

    /// Rate λ(u, v); zero if the pair does not communicate.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn rate(&self, u: VmId, v: VmId) -> f64 {
        assert!(
            u.get() < self.num_vms && v.get() < self.num_vms,
            "vm out of range"
        );
        if u == v {
            return 0.0;
        }
        let peers = &self.adjacency[u.index()];
        match peers.binary_search_by_key(&v, |&(p, _)| p) {
            Ok(i) => peers[i].1,
            Err(_) => 0.0,
        }
    }

    /// The stable handle of a live pair, or `None` if the pair does not
    /// communicate. Costs one O(log degree) search; the returned handle
    /// then gives O(1) access ([`PairTraffic::rate_of`],
    /// [`PairTraffic::endpoints`]) until the pair is removed.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn handle(&self, u: VmId, v: VmId) -> Option<PairHandle> {
        assert!(
            u.get() < self.num_vms && v.get() < self.num_vms,
            "vm out of range"
        );
        if u == v {
            return None;
        }
        let (u, v) = if u < v { (u, v) } else { (v, u) };
        self.adjacency[u.index()]
            .binary_search_by_key(&v, |&(p, _)| p)
            .ok()
            .map(|i| PairHandle(self.adj_handles[u.index()][i]))
    }

    /// The canonical `(u, v)` endpoints of a live pair (`u < v`).
    ///
    /// # Panics
    ///
    /// Panics on a stale handle (the pair was removed).
    pub fn endpoints(&self, h: PairHandle) -> (VmId, VmId) {
        self.check_live(h);
        (self.ep_u[h.index()], self.ep_v[h.index()])
    }

    /// The current rate of a live pair — an O(1) array read.
    ///
    /// # Panics
    ///
    /// Panics on a stale handle (the pair was removed).
    pub fn rate_of(&self, h: PairHandle) -> f64 {
        self.check_live(h);
        self.rates[h.index()]
    }

    fn check_live(&self, h: PairHandle) {
        assert!(
            h.index() < self.rates.len() && self.rates[h.index()] > 0.0,
            "stale pair handle {h:?} (pair was removed)"
        );
    }

    /// The peer set `Vu` of a VM, with rates, sorted by peer id.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn peers(&self, u: VmId) -> &[(VmId, f64)] {
        assert!(u.get() < self.num_vms, "vm {u} out of range");
        &self.adjacency[u.index()]
    }

    /// Number of peers of `u`.
    pub fn degree(&self, u: VmId) -> usize {
        self.peers(u).len()
    }

    /// All live pairs `(u, v, λ)` with `u < v`, in canonical `(u, v)`
    /// order — the iteration order every cost summation uses, which is
    /// why it is independent of slot numbering and churn history.
    pub fn pairs(&self) -> Vec<(VmId, VmId, f64)> {
        let mut out = Vec::with_capacity(self.live);
        for h in 0..self.rates.len() {
            if self.rates[h] > 0.0 {
                out.push((self.ep_u[h], self.ep_v[h], self.rates[h]));
            }
        }
        if !self.canonical {
            out.sort_by_key(|&(u, v, _)| (u, v));
        }
        out
    }

    /// Sum of λ over all pairs.
    pub fn total_rate(&self) -> f64 {
        self.total
    }

    /// Average number of peers per VM (communication-graph density).
    pub fn mean_degree(&self) -> f64 {
        if self.num_vms == 0 {
            return 0.0;
        }
        2.0 * self.live as f64 / self.num_vms as f64
    }

    /// Returns a copy with every rate multiplied by `factor` — the paper's
    /// "scaled the initial TM by a factor of 10 and 50".
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn scaled(&self, factor: f64) -> PairTraffic {
        assert!(
            factor.is_finite() && factor > 0.0,
            "factor must be positive"
        );
        let mut next = self.clone();
        for r in &mut next.rates {
            *r *= factor;
        }
        for peers in &mut next.adjacency {
            for p in peers {
                p.1 *= factor;
            }
        }
        next.total = self.total * factor;
        next
    }

    /// Rescales every rate **in place** by `factor` — the dense
    /// (`ScaleAll`) fast path: one saturating sweep over the contiguous
    /// rate array plus the adjacency mirror, no per-pair searches. Rates
    /// saturate at `f64::MAX` exactly as the trace compiler's expanded
    /// per-pair updates do. The running total is rescaled directly
    /// (Eq. (2) is linear in λ, so downstream ledgers may do the same);
    /// it can drift from a fresh summation by ordinary float rounding.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn scale_all_in_place(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "factor must be positive"
        );
        // Tombstones hold 0.0, which rescales to 0.0 — the sweep can
        // stay branch-free over the whole slot array.
        for r in &mut self.rates {
            *r = (*r * factor).min(f64::MAX);
        }
        for peers in &mut self.adjacency {
            for p in peers {
                p.1 = (p.1 * factor).min(f64::MAX);
            }
        }
        self.total = (self.total * factor).min(f64::MAX);
    }

    /// Returns a copy with every pair rate clamped to at most `cap` —
    /// the line-rate ceiling a single VM pair can physically sustain.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is not positive and finite.
    pub fn capped(&self, cap: f64) -> PairTraffic {
        assert!(cap.is_finite() && cap > 0.0, "cap must be positive");
        let mut next = self.clone();
        for r in &mut next.rates {
            *r = r.min(cap);
        }
        for peers in &mut next.adjacency {
            for p in peers {
                p.1 = p.1.min(cap);
            }
        }
        next.total = next.pairs().iter().map(|&(_, _, r)| r).sum();
        next
    }

    /// Applies absolute-rate updates **in place**: each `(u, v, rate)`
    /// entry *replaces* λ(u, v) (a rate of `0` removes the pair).
    /// Updates are canonicalized and applied in order, so when the same
    /// pair appears twice the later entry wins. Each touched pair costs
    /// one O(log degree) adjacency probe to resolve its slot handle and
    /// then O(1) flat-array writes — no global pair-list search, no map
    /// rebuild, no reallocation of untouched state — which is what keeps
    /// trace replay flat as clusters grow to millions of pairs. The
    /// running total is adjusted incrementally (it can drift from a
    /// fresh summation by ordinary float rounding).
    ///
    /// # Panics
    ///
    /// Panics if an update names a self-pair, an out-of-range VM, or a
    /// negative/non-finite rate.
    pub fn apply_updates(&mut self, updates: &[(VmId, VmId, f64)]) {
        for &(u, v, rate) in updates {
            assert_ne!(u, v, "self-traffic is not part of the communication graph");
            assert!(
                u.get() < self.num_vms && v.get() < self.num_vms,
                "vm out of range"
            );
            assert!(
                rate.is_finite() && rate >= 0.0,
                "rate must be finite and >= 0"
            );
            let (u, v) = if u < v { (u, v) } else { (v, u) };
            match self.adjacency[u.index()].binary_search_by_key(&v, |&(p, _)| p) {
                Ok(i) => {
                    let h = self.adj_handles[u.index()][i] as usize;
                    let old = self.rates[h];
                    if old == rate {
                        continue;
                    }
                    if rate == 0.0 {
                        self.remove_slot(h, u, v, i);
                    } else {
                        self.rates[h] = rate;
                        self.adjacency[u.index()][i].1 = rate;
                        let j = self.adjacency[v.index()]
                            .binary_search_by_key(&u, |&(p, _)| p)
                            .expect("adjacency is symmetric");
                        self.adjacency[v.index()][j].1 = rate;
                    }
                    self.total += rate - old;
                }
                Err(i) => {
                    if rate == 0.0 {
                        continue;
                    }
                    self.insert_slot(u, v, rate, i);
                    self.total += rate;
                }
            }
        }
    }

    /// Re-rates a live pair through its handle: the O(1)-slot variant of
    /// a single-pair [`PairTraffic::apply_updates`] (a rate of `0`
    /// removes the pair and invalidates the handle). The two adjacency
    /// mirror entries still cost one O(log degree) probe each.
    ///
    /// # Panics
    ///
    /// Panics on a stale handle or a negative/non-finite rate.
    pub fn set_rate(&mut self, h: PairHandle, rate: f64) {
        self.check_live(h);
        assert!(
            rate.is_finite() && rate >= 0.0,
            "rate must be finite and >= 0"
        );
        let (u, v) = (self.ep_u[h.index()], self.ep_v[h.index()]);
        let old = self.rates[h.index()];
        if old == rate {
            return;
        }
        let i = self.adjacency[u.index()]
            .binary_search_by_key(&v, |&(p, _)| p)
            .expect("adjacency is symmetric");
        if rate == 0.0 {
            self.remove_slot(h.index(), u, v, i);
        } else {
            self.rates[h.index()] = rate;
            self.adjacency[u.index()][i].1 = rate;
            let j = self.adjacency[v.index()]
                .binary_search_by_key(&u, |&(p, _)| p)
                .expect("adjacency is symmetric");
            self.adjacency[v.index()][j].1 = rate;
        }
        self.total += rate - old;
    }

    /// Tombstones slot `h` for canonical pair `(u, v)` whose entry in
    /// `adjacency[u]` sits at position `i`.
    fn remove_slot(&mut self, h: usize, u: VmId, v: VmId, i: usize) {
        self.adjacency[u.index()].remove(i);
        self.adj_handles[u.index()].remove(i);
        let j = self.adjacency[v.index()]
            .binary_search_by_key(&u, |&(p, _)| p)
            .expect("adjacency is symmetric");
        self.adjacency[v.index()].remove(j);
        self.adj_handles[v.index()].remove(j);
        self.rates[h] = 0.0;
        self.free.push(h as u32);
        self.live -= 1;
        // A subsequence of a canonically ordered slot walk stays
        // canonically ordered: `canonical` is preserved.
    }

    /// Inserts canonical pair `(u, v)` at rate `rate > 0`, with `i` the
    /// insertion position in `adjacency[u]`, reusing a tombstoned slot
    /// when one is free.
    fn insert_slot(&mut self, u: VmId, v: VmId, rate: f64, i: usize) {
        let h = match self.free.pop() {
            Some(h) => {
                self.ep_u[h as usize] = u;
                self.ep_v[h as usize] = v;
                self.rates[h as usize] = rate;
                h
            }
            None => {
                self.ep_u.push(u);
                self.ep_v.push(v);
                self.rates.push(rate);
                (self.rates.len() - 1) as u32
            }
        };
        self.adjacency[u.index()].insert(i, (v, rate));
        self.adj_handles[u.index()].insert(i, h);
        let j = self.adjacency[v.index()]
            .binary_search_by_key(&u, |&(p, _)| p)
            .expect_err("pair missing from one side must be missing from both");
        self.adjacency[v.index()].insert(j, (u, rate));
        self.adj_handles[v.index()].insert(j, h);
        self.live += 1;
        self.canonical = false;
    }

    /// Returns a copy with the given absolute-rate updates applied —
    /// [`PairTraffic::apply_updates`] on a clone.
    ///
    /// # Panics
    ///
    /// Panics on the same invalid updates as
    /// [`PairTraffic::apply_updates`].
    #[must_use]
    pub fn updated(&self, updates: &[(VmId, VmId, f64)]) -> PairTraffic {
        let mut next = self.clone();
        next.apply_updates(updates);
        next
    }

    /// Grows the population by one VM (the next dense id), returning the
    /// new VM's id. The newcomer starts with an empty peer set — rates
    /// involving it arrive later through
    /// [`PairTraffic::apply_updates`] — so growth never touches existing
    /// pairs and costs O(1).
    pub fn push_vm(&mut self) -> VmId {
        let vm = VmId::new(self.num_vms);
        self.num_vms += 1;
        self.adjacency.push(Vec::new());
        self.adj_handles.push(Vec::new());
        vm
    }

    /// Merges another communication graph over the same VM population into
    /// this one, accumulating rates of shared pairs.
    ///
    /// # Panics
    ///
    /// Panics if the VM populations differ.
    pub fn merged(&self, other: &PairTraffic) -> PairTraffic {
        assert_eq!(self.num_vms, other.num_vms, "VM populations differ");
        let mut b = PairTrafficBuilder::new(self.num_vms);
        for &(u, v, r) in self.pairs().iter().chain(other.pairs().iter()) {
            b.add(u, v, r);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> PairTraffic {
        let mut b = PairTrafficBuilder::new(4);
        b.add(VmId::new(0), VmId::new(1), 10.0);
        b.add(VmId::new(1), VmId::new(2), 20.0);
        b.add(VmId::new(2), VmId::new(0), 30.0);
        b.build()
    }

    #[test]
    fn rates_are_symmetric() {
        let t = triangle();
        assert_eq!(t.rate(VmId::new(0), VmId::new(1)), 10.0);
        assert_eq!(t.rate(VmId::new(1), VmId::new(0)), 10.0);
        assert_eq!(t.rate(VmId::new(0), VmId::new(3)), 0.0);
        assert_eq!(t.rate(VmId::new(0), VmId::new(0)), 0.0);
    }

    #[test]
    fn adjacency_is_sorted_and_complete() {
        let t = triangle();
        let peers = t.peers(VmId::new(0));
        assert_eq!(peers, &[(VmId::new(1), 10.0), (VmId::new(2), 30.0)]);
        assert_eq!(t.degree(VmId::new(3)), 0);
        assert_eq!(t.degree(VmId::new(1)), 2);
    }

    #[test]
    fn duplicate_adds_accumulate() {
        let mut b = PairTrafficBuilder::new(2);
        b.add(VmId::new(0), VmId::new(1), 5.0);
        b.add(VmId::new(1), VmId::new(0), 7.0);
        let t = b.build();
        assert_eq!(t.rate(VmId::new(0), VmId::new(1)), 12.0);
        assert_eq!(t.num_pairs(), 1);
    }

    #[test]
    fn totals_and_density() {
        let t = triangle();
        assert_eq!(t.total_rate(), 60.0);
        assert_eq!(t.num_pairs(), 3);
        assert!((t.mean_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn scaling_scales_everything() {
        let t = triangle().scaled(10.0);
        assert_eq!(t.rate(VmId::new(0), VmId::new(1)), 100.0);
        assert_eq!(t.total_rate(), 600.0);
        assert_eq!(t.num_pairs(), 3); // pure scaling preserves the pattern
    }

    #[test]
    fn scale_all_in_place_matches_scaled() {
        let mut t = triangle();
        t.scale_all_in_place(10.0);
        assert_eq!(t, triangle().scaled(10.0));
        // Saturation mirrors the trace compiler's expanded updates.
        let mut hot = triangle().scaled(f64::MAX / 40.0);
        hot.scale_all_in_place(4.0);
        assert_eq!(hot.rate(VmId::new(2), VmId::new(0)), f64::MAX);
        assert!(hot.total_rate().is_finite());
    }

    #[test]
    fn updated_replaces_inserts_and_removes() {
        let t = triangle();
        let next = t.updated(&[
            (VmId::new(1), VmId::new(0), 99.0), // replace (canonicalized)
            (VmId::new(2), VmId::new(0), 0.0),  // remove
            (VmId::new(1), VmId::new(3), 7.0),  // insert
        ]);
        assert_eq!(next.rate(VmId::new(0), VmId::new(1)), 99.0);
        assert_eq!(next.rate(VmId::new(0), VmId::new(2)), 0.0);
        assert_eq!(next.rate(VmId::new(1), VmId::new(3)), 7.0);
        assert_eq!(next.rate(VmId::new(1), VmId::new(2)), 20.0); // untouched
        assert_eq!(next.num_pairs(), 3);
        assert_eq!(next.total_rate(), 99.0 + 7.0 + 20.0);
        // Adjacency stays consistent with the pair list.
        assert_eq!(next.peers(VmId::new(0)), &[(VmId::new(1), 99.0)]);
        assert_eq!(next.degree(VmId::new(3)), 1);
        // The original is untouched.
        assert_eq!(t.num_pairs(), 3);
    }

    #[test]
    fn updated_matches_builder_equivalent() {
        let t = triangle();
        let next = t.updated(&[(VmId::new(0), VmId::new(3), 5.0)]);
        let mut b = PairTrafficBuilder::new(4);
        b.add(VmId::new(0), VmId::new(1), 10.0);
        b.add(VmId::new(1), VmId::new(2), 20.0);
        b.add(VmId::new(2), VmId::new(0), 30.0);
        b.add(VmId::new(0), VmId::new(3), 5.0);
        assert_eq!(next, b.build());
        // Later duplicate update wins; empty updates are identity.
        let twice = t.updated(&[
            (VmId::new(0), VmId::new(1), 1.0),
            (VmId::new(0), VmId::new(1), 2.0),
        ]);
        assert_eq!(twice.rate(VmId::new(0), VmId::new(1)), 2.0);
        assert_eq!(t.updated(&[]), t);
        // Removing a pair that does not exist is a no-op.
        assert_eq!(t.updated(&[(VmId::new(0), VmId::new(3), 0.0)]), t);
    }

    #[test]
    fn canonical_order_survives_churn() {
        // Remove then insert: the recycled slot sits out of (u, v) order
        // in the flat arrays, but pairs() re-canonicalizes.
        let mut t = triangle();
        t.apply_updates(&[(VmId::new(1), VmId::new(2), 0.0)]); // tombstone
        t.apply_updates(&[(VmId::new(0), VmId::new(3), 5.0)]); // recycles slot
        assert_eq!(
            t.pairs(),
            vec![
                (VmId::new(0), VmId::new(1), 10.0),
                (VmId::new(0), VmId::new(2), 30.0),
                (VmId::new(0), VmId::new(3), 5.0),
            ]
        );
        assert_eq!(t.num_pairs(), 3);
    }

    #[test]
    fn handles_are_stable_across_unrelated_churn() {
        let mut t = triangle();
        let h01 = t.handle(VmId::new(0), VmId::new(1)).unwrap();
        assert_eq!(t.endpoints(h01), (VmId::new(0), VmId::new(1)));
        assert_eq!(t.rate_of(h01), 10.0);
        // Reversed endpoint order resolves to the same handle.
        assert_eq!(t.handle(VmId::new(1), VmId::new(0)), Some(h01));
        assert_eq!(t.handle(VmId::new(0), VmId::new(3)), None);
        assert_eq!(t.handle(VmId::new(2), VmId::new(2)), None);

        // Unrelated removals and insertions leave the handle intact.
        t.apply_updates(&[
            (VmId::new(1), VmId::new(2), 0.0),
            (VmId::new(2), VmId::new(3), 8.0),
        ]);
        assert_eq!(t.rate_of(h01), 10.0);
        t.set_rate(h01, 42.0);
        assert_eq!(t.rate(VmId::new(0), VmId::new(1)), 42.0);
        assert_eq!(t.total_rate(), 42.0 + 30.0 + 8.0);
    }

    #[test]
    #[should_panic(expected = "stale pair handle")]
    fn stale_handle_panics() {
        let mut t = triangle();
        let h = t.handle(VmId::new(0), VmId::new(1)).unwrap();
        t.set_rate(h, 0.0); // removes the pair, invalidating h
        let _ = t.rate_of(h);
    }

    #[test]
    fn set_rate_matches_apply_updates() {
        let mut by_handle = triangle();
        let h = by_handle.handle(VmId::new(1), VmId::new(2)).unwrap();
        by_handle.set_rate(h, 7.5);
        let by_update = triangle().updated(&[(VmId::new(1), VmId::new(2), 7.5)]);
        assert_eq!(by_handle, by_update);
        assert_eq!(by_handle.total_rate(), by_update.total_rate());
        // Identical-rate writes are no-ops on the running total.
        by_handle.set_rate(h, 7.5);
        assert_eq!(by_handle.total_rate(), by_update.total_rate());
    }

    #[test]
    fn serde_round_trip_preserves_semantics() {
        use serde::{Deserialize as _, Serialize as _};
        let mut t = triangle();
        // Churn so the slot layout differs from a fresh build.
        t.apply_updates(&[
            (VmId::new(1), VmId::new(2), 0.0),
            (VmId::new(0), VmId::new(3), 5.0),
        ]);
        let back = PairTraffic::from_value(&t.to_value()).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.peers(VmId::new(0)), t.peers(VmId::new(0)));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn updated_rejects_negative_rates() {
        let _ = triangle().updated(&[(VmId::new(0), VmId::new(1), -1.0)]);
    }

    #[test]
    fn merge_accumulates() {
        let t = triangle();
        let m = t.merged(&t);
        assert_eq!(m.rate(VmId::new(0), VmId::new(1)), 20.0);
        assert_eq!(m.num_pairs(), 3);
    }

    #[test]
    fn empty_graph() {
        let t = PairTraffic::empty(5);
        assert_eq!(t.num_vms(), 5);
        assert_eq!(t.num_pairs(), 0);
        assert_eq!(t.total_rate(), 0.0);
        assert_eq!(t.mean_degree(), 0.0);
    }

    #[test]
    #[should_panic(expected = "self-traffic")]
    fn rejects_self_pairs() {
        PairTrafficBuilder::new(2).add(VmId::new(1), VmId::new(1), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        PairTrafficBuilder::new(2).add(VmId::new(0), VmId::new(5), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_non_positive_rate() {
        PairTrafficBuilder::new(2).add(VmId::new(0), VmId::new(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "populations differ")]
    fn merge_rejects_mismatched_populations() {
        let a = PairTraffic::empty(2);
        let b = PairTraffic::empty(3);
        let _ = a.merged(&b);
    }
}
