//! Discrete flow instantiation of pairwise loads.
//!
//! The simulator and the flow-table experiments need *flows* (5-tuple-like
//! records with byte counts and durations), not just average rates.
//! [`FlowSampler`] turns a [`PairTraffic`] into a set of flows over a
//! measurement window such that each pair's byte total matches
//! `λ(u, v) × window`: elephant pairs become a few long-lived flows, mice
//! pairs a burst of short ones — the long-tail structure S-CORE exploits
//! (paper §V-C).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use score_topology::VmId;
use serde::{Deserialize, Serialize};

use crate::pairwise::PairTraffic;

/// Classification threshold: pairs above 1 Mb/s average are elephants.
pub const ELEPHANT_THRESHOLD_BPS: f64 = 1e6;

/// Mouse or elephant, per the DC measurement literature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowClass {
    /// Short, small flow; dominates flow *counts*.
    Mouse,
    /// Long, large flow; dominates *bytes*.
    Elephant,
}

/// A single flow between two VMs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Flow {
    /// Source VM.
    pub src: VmId,
    /// Destination VM.
    pub dst: VmId,
    /// Bytes carried by this flow over its lifetime.
    pub bytes: f64,
    /// Start time within the window, seconds.
    pub start_s: f64,
    /// Duration, seconds.
    pub duration_s: f64,
}

impl Flow {
    /// Average throughput of the flow in bits per second.
    ///
    /// # Panics
    ///
    /// Panics if the flow has zero duration.
    pub fn throughput_bps(&self) -> f64 {
        assert!(self.duration_s > 0.0, "flow has zero duration");
        self.bytes * 8.0 / self.duration_s
    }

    /// Classifies the flow by its average throughput.
    pub fn class(&self) -> FlowClass {
        if self.throughput_bps() >= ELEPHANT_THRESHOLD_BPS {
            FlowClass::Elephant
        } else {
            FlowClass::Mouse
        }
    }
}

/// Samples concrete flows from pairwise average rates.
#[derive(Debug, Clone)]
pub struct FlowSampler {
    window_s: f64,
    seed: u64,
}

impl FlowSampler {
    /// Creates a sampler for a measurement window of `window_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `window_s` is not positive and finite.
    pub fn new(window_s: f64, seed: u64) -> Self {
        assert!(
            window_s.is_finite() && window_s > 0.0,
            "window must be positive"
        );
        FlowSampler { window_s, seed }
    }

    /// The window length in seconds.
    pub fn window_s(&self) -> f64 {
        self.window_s
    }

    /// Instantiates flows for every communicating pair.
    ///
    /// Per-pair byte conservation: the sampled flows' bytes sum to
    /// `λ(u, v) / 8 × window` exactly.
    pub fn sample(&self, traffic: &PairTraffic) -> Vec<Flow> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut flows = Vec::new();
        for (u, v, rate) in traffic.pairs() {
            let pair_bytes = rate / 8.0 * self.window_s;
            let n_flows = if rate >= ELEPHANT_THRESHOLD_BPS {
                // One to three long-lived elephant flows.
                rng.gen_range(1..=3)
            } else {
                // A handful of mice; heavier pairs burst more often.
                rng.gen_range(2..=8)
            };
            // Split bytes over flows with random positive weights.
            let weights: Vec<f64> = (0..n_flows).map(|_| rng.gen_range(0.2..1.0)).collect();
            let weight_sum: f64 = weights.iter().sum();
            for w in weights {
                let bytes = pair_bytes * w / weight_sum;
                let duration = if rate >= ELEPHANT_THRESHOLD_BPS {
                    rng.gen_range(0.5..1.0) * self.window_s
                } else {
                    rng.gen_range(0.001..0.1) * self.window_s
                };
                let start = rng.gen_range(0.0..(self.window_s - duration).max(f64::MIN_POSITIVE));
                flows.push(Flow {
                    src: u,
                    dst: v,
                    bytes,
                    start_s: start,
                    duration_s: duration,
                });
            }
        }
        flows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairwise::PairTrafficBuilder;

    fn two_pair_traffic() -> PairTraffic {
        let mut b = PairTrafficBuilder::new(4);
        b.add(VmId::new(0), VmId::new(1), 8e6); // elephant pair: 8 Mb/s
        b.add(VmId::new(2), VmId::new(3), 8e3); // mouse pair: 8 kb/s
        b.build()
    }

    #[test]
    fn bytes_conserved_per_pair() {
        let t = two_pair_traffic();
        let flows = FlowSampler::new(10.0, 3).sample(&t);
        let elephant_bytes: f64 = flows
            .iter()
            .filter(|f| f.src == VmId::new(0))
            .map(|f| f.bytes)
            .sum();
        // 8e6 bps / 8 * 10 s = 1e7 bytes
        assert!((elephant_bytes - 1e7).abs() < 1.0, "bytes {elephant_bytes}");
        let mouse_bytes: f64 = flows
            .iter()
            .filter(|f| f.src == VmId::new(2))
            .map(|f| f.bytes)
            .sum();
        assert!((mouse_bytes - 1e4).abs() < 0.01, "bytes {mouse_bytes}");
    }

    #[test]
    fn flows_fit_in_window() {
        let t = two_pair_traffic();
        let sampler = FlowSampler::new(10.0, 4);
        for f in sampler.sample(&t) {
            assert!(f.start_s >= 0.0);
            assert!(f.start_s + f.duration_s <= 10.0 + 1e-9);
            assert!(f.duration_s > 0.0);
        }
    }

    #[test]
    fn classification() {
        let f = Flow {
            src: VmId::new(0),
            dst: VmId::new(1),
            bytes: 125e6, // 1e9 bits over 10 s = 100 Mb/s
            start_s: 0.0,
            duration_s: 10.0,
        };
        assert_eq!(f.class(), FlowClass::Elephant);
        let m = Flow { bytes: 125.0, ..f }; // 100 b/s
        assert_eq!(m.class(), FlowClass::Mouse);
    }

    #[test]
    fn deterministic_under_seed() {
        let t = two_pair_traffic();
        let a = FlowSampler::new(10.0, 5).sample(&t);
        let b = FlowSampler::new(10.0, 5).sample(&t);
        assert_eq!(a, b);
    }

    #[test]
    fn elephants_get_fewer_longer_flows() {
        let t = two_pair_traffic();
        let flows = FlowSampler::new(10.0, 6).sample(&t);
        let elephant_flows: Vec<_> = flows.iter().filter(|f| f.src == VmId::new(0)).collect();
        let mouse_flows: Vec<_> = flows.iter().filter(|f| f.src == VmId::new(2)).collect();
        assert!(elephant_flows.len() <= 3);
        assert!(mouse_flows.len() >= 2);
        let mean_e: f64 =
            elephant_flows.iter().map(|f| f.duration_s).sum::<f64>() / elephant_flows.len() as f64;
        let mean_m: f64 =
            mouse_flows.iter().map(|f| f.duration_s).sum::<f64>() / mouse_flows.len() as f64;
        assert!(mean_e > mean_m, "elephants should live longer");
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = FlowSampler::new(0.0, 1);
    }

    #[test]
    #[should_panic(expected = "zero duration")]
    fn zero_duration_throughput_panics() {
        let f = Flow {
            src: VmId::new(0),
            dst: VmId::new(1),
            bytes: 1.0,
            start_s: 0.0,
            duration_s: 0.0,
        };
        let _ = f.throughput_bps();
    }
}
