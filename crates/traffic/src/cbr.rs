//! Constant-bit-rate background traffic (paper §VI-C).
//!
//! The testbed experiments load the migration path with CBR traffic of
//! increasing intensity ("the ratio of 1 Gb/s CBR"). [`CbrLoad`] is that
//! ratio as a validated newtype; [`residual_bandwidth`] is the share left
//! for a migration flow competing with the CBR source.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Background network load as a fraction of link capacity, in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct CbrLoad(f64);

impl CbrLoad {
    /// No background traffic.
    pub const IDLE: CbrLoad = CbrLoad(0.0);

    /// Creates a load ratio.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not in `[0, 1]`.
    pub fn new(ratio: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&ratio),
            "CBR load must be in [0, 1], got {ratio}"
        );
        CbrLoad(ratio)
    }

    /// The ratio as a plain `f64`.
    pub fn get(self) -> f64 {
        self.0
    }

    /// The load sweep used in Fig. 5c/5d: `0.0, 0.1, …, 1.0`.
    pub fn paper_sweep() -> Vec<CbrLoad> {
        (0..=10).map(|i| CbrLoad(i as f64 / 10.0)).collect()
    }
}

impl Default for CbrLoad {
    fn default() -> Self {
        CbrLoad::IDLE
    }
}

impl fmt::Display for CbrLoad {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0}%", self.0 * 100.0)
    }
}

/// Bandwidth available to a migration flow competing with CBR background
/// traffic on a link of `capacity_bps`.
///
/// A TCP migration stream sharing a bottleneck with an open-loop CBR source
/// of intensity ρ gets the leftover capacity, but never starves completely:
/// the CBR source is not congestion-controlled, yet packet-level
/// interleaving leaves the TCP flow a small share even at ρ = 1. We model
/// the residual as `capacity × max(1 − ρ, floor)` with `floor = 0.12`,
/// calibrated so migration times match the paper's 2.94 s (idle) → 9.34 s
/// (saturated) range for ~127 MB of migrated state.
pub fn residual_bandwidth(capacity_bps: f64, load: CbrLoad) -> f64 {
    const FLOOR: f64 = 0.12;
    assert!(capacity_bps > 0.0, "capacity must be positive");
    capacity_bps * (1.0 - load.get()).max(FLOOR)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_validation() {
        assert_eq!(CbrLoad::new(0.5).get(), 0.5);
        assert_eq!(CbrLoad::IDLE.get(), 0.0);
        assert_eq!(CbrLoad::default(), CbrLoad::IDLE);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn load_rejects_out_of_range() {
        let _ = CbrLoad::new(1.5);
    }

    #[test]
    fn paper_sweep_covers_unit_interval() {
        let sweep = CbrLoad::paper_sweep();
        assert_eq!(sweep.len(), 11);
        assert_eq!(sweep[0], CbrLoad::IDLE);
        assert_eq!(sweep[10].get(), 1.0);
    }

    #[test]
    fn residual_decreases_with_load() {
        let cap = 1e9;
        let idle = residual_bandwidth(cap, CbrLoad::IDLE);
        let half = residual_bandwidth(cap, CbrLoad::new(0.5));
        let full = residual_bandwidth(cap, CbrLoad::new(1.0));
        assert_eq!(idle, 1e9);
        assert_eq!(half, 0.5e9);
        assert!(full > 0.0, "TCP never fully starves");
        assert!((full - 0.12e9).abs() < 1e-6);
        assert!(idle > half && half > full);
    }

    #[test]
    fn display_format() {
        assert_eq!(CbrLoad::new(0.3).to_string(), "30%");
    }
}
