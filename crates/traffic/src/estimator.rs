//! Windowed traffic-rate estimation (paper §IV).
//!
//! S-CORE does not act on instantaneous rates: "traffic load λ(u, v) can be
//! captured dynamically by monitoring incoming and outgoing traffic …
//! averaged over a given time interval", with the window sized "on the
//! order of minutes to hours" so the algorithm "capture\[s\] steady-state and
//! avoid\[s\] reacting to instantaneous fluctuations". This module provides
//! that estimator: per-pair byte accounting over a sliding window, plus the
//! conversion into the [`PairTraffic`] snapshot the decision engine
//! consumes.
//!
//! The burst-insensitivity the paper argues for in §VI-B ("the short-term
//! effects of sudden arrivals of mice flows are canceled out when averaged
//! over one iteration") is a property of exactly this window.

use score_topology::VmId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

use crate::pairwise::{PairTraffic, PairTrafficBuilder};

/// Sliding-window rate estimator over pairwise byte observations.
///
/// # Examples
///
/// ```
/// use score_topology::VmId;
/// use score_traffic::RateEstimator;
///
/// let mut est = RateEstimator::new(4, 60.0);
/// // 125 kB/s observed for a full minute ≈ 1 Mb/s.
/// for t in 0..60 {
///     est.observe(VmId::new(0), VmId::new(1), 125_000.0, t as f64);
/// }
/// let rate = est.rate(VmId::new(0), VmId::new(1), 60.0);
/// assert!((rate - 1e6).abs() < 0.05e6);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RateEstimator {
    window_s: f64,
    /// Per (min, max) VM pair: FIFO of `(timestamp, bytes)` samples inside
    /// the window, plus the running byte sum.
    samples: HashMap<(u32, u32), PairWindow>,
    num_vms: u32,
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct PairWindow {
    fifo: VecDeque<(f64, f64)>,
    bytes: f64,
}

impl PairWindow {
    fn push(&mut self, t: f64, bytes: f64) {
        self.fifo.push_back((t, bytes));
        self.bytes += bytes;
    }

    fn expire(&mut self, horizon: f64) {
        while let Some(&(t, b)) = self.fifo.front() {
            if t < horizon {
                self.fifo.pop_front();
                self.bytes -= b;
            } else {
                break;
            }
        }
        if self.fifo.is_empty() {
            self.bytes = 0.0;
        }
    }
}

impl RateEstimator {
    /// Creates an estimator over VMs `0..num_vms` with the given window.
    ///
    /// # Panics
    ///
    /// Panics if `window_s` is not positive and finite.
    pub fn new(num_vms: u32, window_s: f64) -> Self {
        assert!(
            window_s.is_finite() && window_s > 0.0,
            "window must be positive"
        );
        RateEstimator {
            window_s,
            samples: HashMap::new(),
            num_vms,
        }
    }

    /// The window length in seconds.
    pub fn window_s(&self) -> f64 {
        self.window_s
    }

    /// Records `bytes` exchanged between `u` and `v` at time `now_s`
    /// (both directions are aggregated, like the dom0 flow table does).
    ///
    /// # Panics
    ///
    /// Panics if `u == v`, either id is out of range, or `bytes` is
    /// negative.
    pub fn observe(&mut self, u: VmId, v: VmId, bytes: f64, now_s: f64) {
        assert_ne!(u, v, "self-traffic is not observable");
        assert!(
            u.get() < self.num_vms && v.get() < self.num_vms,
            "vm out of range"
        );
        assert!(bytes >= 0.0, "bytes must be non-negative");
        if bytes == 0.0 {
            return;
        }
        let key = if u < v {
            (u.get(), v.get())
        } else {
            (v.get(), u.get())
        };
        self.samples.entry(key).or_default().push(now_s, bytes);
    }

    /// Current rate estimate λ̂(u, v) in bits per second at time `now_s`:
    /// window bytes × 8 / window.
    pub fn rate(&mut self, u: VmId, v: VmId, now_s: f64) -> f64 {
        let key = if u < v {
            (u.get(), v.get())
        } else {
            (v.get(), u.get())
        };
        match self.samples.get_mut(&key) {
            Some(w) => {
                w.expire(now_s - self.window_s);
                w.bytes * 8.0 / self.window_s
            }
            None => 0.0,
        }
    }

    /// Snapshots every pair's estimate into a [`PairTraffic`] — the input
    /// the decision engine consumes. Pairs whose window emptied disappear
    /// from the communication graph (their `Vu` membership lapses).
    pub fn snapshot(&mut self, now_s: f64) -> PairTraffic {
        let horizon = now_s - self.window_s;
        let mut builder = PairTrafficBuilder::new(self.num_vms);
        self.samples.retain(|&(u, v), w| {
            w.expire(horizon);
            if w.bytes > 0.0 {
                builder.add(VmId::new(u), VmId::new(v), w.bytes * 8.0 / self.window_s);
                true
            } else {
                false
            }
        });
        builder.build()
    }

    /// Number of pairs currently holding samples.
    pub fn tracked_pairs(&self) -> usize {
        self.samples.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vm(i: u32) -> VmId {
        VmId::new(i)
    }

    #[test]
    fn steady_flow_converges_to_true_rate() {
        let mut est = RateEstimator::new(4, 60.0);
        // 1 Mb/s = 125_000 B/s, observed once per second for 2 windows.
        for t in 0..120 {
            est.observe(vm(0), vm(1), 125_000.0, t as f64);
        }
        let rate = est.rate(vm(0), vm(1), 120.0);
        assert!((rate - 1e6).abs() < 0.05e6, "rate {rate}");
    }

    #[test]
    fn short_burst_is_attenuated() {
        let mut est = RateEstimator::new(4, 300.0);
        // A single 10 MB burst inside a 5-minute window.
        est.observe(vm(0), vm(1), 10e6, 100.0);
        let rate = est.rate(vm(0), vm(1), 101.0);
        // Instantaneous rate would be 80 Mb/s; the window reports ~0.27.
        assert!(rate < 0.3e6, "burst insufficiently attenuated: {rate}");
    }

    #[test]
    fn old_samples_expire() {
        let mut est = RateEstimator::new(4, 10.0);
        est.observe(vm(0), vm(1), 1000.0, 0.0);
        assert!(est.rate(vm(0), vm(1), 5.0) > 0.0);
        assert_eq!(est.rate(vm(0), vm(1), 20.1), 0.0);
    }

    #[test]
    fn snapshot_builds_pair_traffic() {
        let mut est = RateEstimator::new(4, 10.0);
        for t in 0..10 {
            est.observe(vm(0), vm(1), 1250.0, t as f64); // 1250 B/s = 10 kb/s
            est.observe(vm(2), vm(3), 12_500.0, t as f64); // 100 kb/s
        }
        let snap = est.snapshot(10.0);
        assert_eq!(snap.num_pairs(), 2);
        assert!((snap.rate(vm(0), vm(1)) - 1e4).abs() < 500.0);
        assert!((snap.rate(vm(2), vm(3)) - 1e5).abs() < 5e3);
        // Peer sets are derived from observations.
        assert_eq!(snap.peers(vm(0)).len(), 1);
    }

    #[test]
    fn lapsed_pairs_leave_the_graph() {
        let mut est = RateEstimator::new(4, 10.0);
        est.observe(vm(0), vm(1), 1000.0, 0.0);
        est.observe(vm(2), vm(3), 1000.0, 95.0);
        let snap = est.snapshot(100.0);
        assert_eq!(snap.num_pairs(), 1);
        assert_eq!(snap.rate(vm(0), vm(1)), 0.0);
        assert_eq!(est.tracked_pairs(), 1);
    }

    #[test]
    fn direction_is_aggregated() {
        let mut est = RateEstimator::new(4, 10.0);
        est.observe(vm(0), vm(1), 500.0, 1.0);
        est.observe(vm(1), vm(0), 500.0, 2.0);
        let rate = est.rate(vm(0), vm(1), 5.0);
        assert!((rate - 1000.0 * 8.0 / 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = RateEstimator::new(2, 0.0);
    }

    #[test]
    #[should_panic(expected = "self-traffic")]
    fn self_observation_rejected() {
        let mut est = RateEstimator::new(2, 10.0);
        est.observe(vm(1), vm(1), 1.0, 0.0);
    }
}
