//! Bring your own fabric: implement [`Topology`] for a two-tier leaf–spine
//! network and run S-CORE on it unchanged.
//!
//! The S-CORE cost model only needs hop counts (levels) and route shares,
//! so any layered fabric plugs in. Leaf–spine has two levels: same-leaf
//! (level 1) and cross-leaf via a spine (level 2).
//!
//! ```sh
//! cargo run --example custom_topology
//! ```

use s_core::core::ScoreConfig;
use s_core::sim::{EngineSpec, PlacementSpec, PolicyKind, Scenario};
use s_core::topology::{
    Level, LinkId, LinkWeights, NetGraph, NodeId, NodeKind, RackId, RouteShare, ServerId, Topology,
};
use s_core::traffic::{CbrLoad, WorkloadConfig};
use s_core::xen::PreCopyConfig;
use std::ops::Range;
use std::sync::Arc;

/// `leaves` leaf switches × `hosts_per_leaf` servers, fully meshed to
/// `spines` spine switches.
#[derive(Debug)]
struct LeafSpine {
    leaves: u32,
    hosts_per_leaf: u32,
    spines: u32,
    graph: NetGraph,
    host_nodes: Vec<NodeId>,
    host_links: Vec<LinkId>,
    leaf_spine_links: Vec<Vec<LinkId>>,
}

impl LeafSpine {
    fn new(leaves: u32, hosts_per_leaf: u32, spines: u32) -> Self {
        let mut graph = NetGraph::new();
        let host_nodes: Vec<NodeId> = (0..leaves * hosts_per_leaf)
            .map(|_| graph.add_node(NodeKind::Host))
            .collect();
        let leaf_nodes: Vec<NodeId> = (0..leaves).map(|_| graph.add_node(NodeKind::Tor)).collect();
        let spine_nodes: Vec<NodeId> = (0..spines)
            .map(|_| graph.add_node(NodeKind::Aggregation))
            .collect();
        let host_links = host_nodes
            .iter()
            .enumerate()
            .map(|(h, &hn)| graph.add_link(hn, leaf_nodes[h / hosts_per_leaf as usize], 1, 10e9))
            .collect();
        let leaf_spine_links = leaf_nodes
            .iter()
            .map(|&ln| {
                spine_nodes
                    .iter()
                    .map(|&sn| graph.add_link(ln, sn, 2, 40e9))
                    .collect()
            })
            .collect();
        LeafSpine {
            leaves,
            hosts_per_leaf,
            spines,
            graph,
            host_nodes,
            host_links,
            leaf_spine_links,
        }
    }

    fn leaf_of(&self, s: ServerId) -> u32 {
        s.get() / self.hosts_per_leaf
    }
}

impl Topology for LeafSpine {
    fn name(&self) -> &str {
        "leaf-spine"
    }

    fn num_servers(&self) -> usize {
        (self.leaves * self.hosts_per_leaf) as usize
    }

    fn num_racks(&self) -> usize {
        self.leaves as usize
    }

    fn rack_of(&self, s: ServerId) -> RackId {
        RackId::new(self.leaf_of(s))
    }

    fn servers_in_rack(&self, r: RackId) -> Range<u32> {
        let start = r.get() * self.hosts_per_leaf;
        start..start + self.hosts_per_leaf
    }

    fn hops(&self, a: ServerId, b: ServerId) -> u32 {
        if a == b {
            0
        } else if self.leaf_of(a) == self.leaf_of(b) {
            2
        } else {
            4
        }
    }

    fn max_level(&self) -> Level {
        Level::AGGREGATION
    }

    fn graph(&self) -> &NetGraph {
        &self.graph
    }

    fn host_node(&self, s: ServerId) -> NodeId {
        self.host_nodes[s.index()]
    }

    fn route_shares(&self, a: ServerId, b: ServerId) -> Vec<RouteShare> {
        if a == b {
            return Vec::new();
        }
        let mut shares = vec![
            RouteShare::new(self.host_links[a.index()], 1.0),
            RouteShare::new(self.host_links[b.index()], 1.0),
        ];
        let (la, lb) = (self.leaf_of(a) as usize, self.leaf_of(b) as usize);
        if la != lb {
            let frac = 1.0 / self.spines as f64;
            for s in 0..self.spines as usize {
                shares.push(RouteShare::new(self.leaf_spine_links[la][s], frac));
                shares.push(RouteShare::new(self.leaf_spine_links[lb][s], frac));
            }
        }
        shares
    }
}

fn main() {
    let topo: Arc<dyn Topology> = Arc::new(LeafSpine::new(8, 8, 4));
    let num_vms = 128;
    let traffic = WorkloadConfig::new(num_vms, 5).generate();

    // A two-level fabric wants a two-level weight vector; everything else
    // of the scenario (placement, policy, timing) is declarative.
    let weights = LinkWeights::new([1.0, std::f64::consts::E]).expect("valid weights");
    let scenario = Scenario::builder()
        .placement(PlacementSpec::Striped)
        .policy(PolicyKind::RoundRobin)
        .engine(EngineSpec::Custom {
            score: ScoreConfig::paper_default(),
            weights,
            precopy: PreCopyConfig::paper_default(),
            background: CbrLoad::IDLE,
        })
        .horizon(1e6)
        .build();

    let mut session = scenario
        .session_with(Arc::clone(&topo), traffic)
        .expect("striped placement fits");
    let initial = session.initial_cost();
    session.run(4);
    let final_cost = session.current_cost();

    println!("leaf-spine fabric: {} leaves x {} hosts", 8, 8);
    println!(
        "cost: {initial:.3e} -> {final_cost:.3e} ({:.1}% reduction)",
        (1.0 - final_cost / initial) * 100.0
    );
    println!("S-CORE ran unmodified on a user-defined Topology implementation.");
}
