//! Trace-driven time-varying workloads: the offered traffic drifts and
//! spikes *while the token circulates*, and every change lands on the
//! cluster in place — O(changed-pairs) cost-ledger re-pricing between
//! token holds, no cluster rebuild, no full Eq.-(2) resync.
//!
//! ```sh
//! cargo run --example trace_replay
//! ```

use s_core::sim::{PolicyKind, Scenario, TraceSpec};
use s_core::trace::{DiurnalShape, FlashCrowdShape, Trace};
use s_core::traffic::TrafficIntensity;

fn main() {
    // A day/night cycle: the whole TM swings ±60 % over a 300 s horizon,
    // re-rated every 2 seconds (149 mid-run deltas).
    let diurnal = TraceSpec::Diurnal {
        num_vms: 256,
        intensity: TrafficIntensity::Sparse,
        seed: 11,
        shape: DiurnalShape {
            period_s: 150.0,
            amplitude: 0.6,
            step_s: 2.0,
            horizon_s: 300.0,
        },
    };
    // Flash crowds: 12 spikes of 8-way 200 Mb/s surges that later subside.
    let flash = TraceSpec::FlashCrowd {
        num_vms: 256,
        intensity: TrafficIntensity::Sparse,
        seed: 11,
        shape: FlashCrowdShape {
            spikes: 12,
            fanout: 8,
            surge_bps: 2e8,
            hold_s: 40.0,
            horizon_s: 300.0,
        },
    };

    println!("S-CORE under time-varying traffic (HLF, 256 VMs):\n");
    for (name, spec) in [("diurnal drift", diurnal), ("flash crowds", flash.clone())] {
        let scenario = Scenario::builder()
            .trace(spec)
            .policy(PolicyKind::HighestLevelFirst)
            .seed(11)
            .build();
        let mut session = scenario.session().expect("trace scenario is feasible");
        session.run_to_horizon();
        let report = session.report();
        println!(
            "{name:>13}: cost {:.3e} -> {:.3e} | {:>3} migrations | {:>3} deltas \
             re-pricing {:>5} pairs in place ({:.0} µs each, {} full resyncs)",
            report.initial_cost,
            report.final_cost,
            report.migrations.len(),
            report.trace.events_applied,
            report.trace.pairs_repriced,
            report.trace.mean_apply_ns() / 1e3,
            session.ledger_resyncs(),
        );
    }

    // Traces are plain data: a scenario's trace serializes to JSONL and
    // reloads as a literal — the same schedule, replayable anywhere.
    let scenario = Scenario::builder().trace(flash).build();
    let trace = scenario.workload.build_trace().expect("trace workload");
    let jsonl = trace.to_jsonl();
    let reloaded = Trace::from_jsonl(&jsonl).expect("own output parses");
    assert_eq!(reloaded, trace);
    println!(
        "\nThe flash-crowd schedule round-trips through JSONL: {} lines, {} events, \
         identical after reload.",
        jsonl.lines().count(),
        reloaded.num_events()
    );
}
