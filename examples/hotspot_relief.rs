//! Core-layer congestion relief: compare link-utilization CDFs before and
//! after S-CORE, against the Remedy baseline (the Fig. 4a scenario).
//!
//! ```sh
//! cargo run --example hotspot_relief
//! ```

use s_core::baselines::{Remedy, RemedyConfig};
use s_core::core::LinkLoadMap;
use s_core::sim::{PolicyKind, Scenario};
use s_core::topology::Level;
use s_core::traffic::TrafficIntensity;

fn describe(label: &str, cluster: &s_core::core::Cluster, traffic: &s_core::traffic::PairTraffic) {
    let map = LinkLoadMap::compute(cluster.allocation(), traffic, cluster.topo());
    let mut row = format!("{label:<12}");
    for (name, level) in [("core", Level::CORE), ("agg", Level::AGGREGATION)] {
        let cdf = map.utilization_cdf(level);
        let mean = cdf.iter().sum::<f64>() / cdf.len() as f64;
        let p95 = cdf[((cdf.len() - 1) as f64 * 0.95) as usize];
        row.push_str(&format!("  {name}: mean {mean:>7.4} p95 {p95:>7.4}"));
    }
    let total_core = map.total_load_at_level(Level::CORE) / 1e9;
    row.push_str(&format!("  core load {total_core:>6.2} Gb/s"));
    println!("{row}");
}

fn main() {
    let mut scenario = Scenario::small_canonical(TrafficIntensity::Sparse, 23);
    scenario.policy = PolicyKind::HighestLevelFirst;
    scenario.timing.t_end_s = 500.0;

    let session0 = scenario.session().expect("preset scenario is feasible");
    println!("link utilization before/after (sparse TM, random initial placement):\n");
    describe("initial", session0.cluster(), session0.traffic());

    // S-CORE localizes traffic to the cheap layers.
    let mut score_session = scenario.session().expect("preset scenario is feasible");
    score_session.run_to_horizon();
    let report = score_session.report();
    describe("s-core", score_session.cluster(), score_session.traffic());

    // Remedy balances utilization instead.
    let mut remedy_session = scenario.session().expect("preset scenario is feasible");
    let (cluster, traffic) = remedy_session.split_mut();
    let result = Remedy::new(RemedyConfig::paper_default()).run(cluster, traffic);
    describe("remedy", remedy_session.cluster(), remedy_session.traffic());

    println!(
        "\nS-CORE migrated {} VMs and cut communication cost by {:.1}%;",
        report.migrations.len(),
        (1.0 - report.final_cost / report.initial_cost) * 100.0
    );
    println!(
        "Remedy performed {} migrations aimed at its hottest links only.",
        result.steps.len()
    );
    println!("S-CORE empties the expensive layers; Remedy merely flattens them.");
}
