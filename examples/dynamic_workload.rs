//! Always-on operation: the traffic matrix shifts mid-run and S-CORE
//! re-converges — the property that distinguishes it from initial-placement
//! schemes (paper §I: "deals with maintaining steady-state throughout the
//! system's evolution").
//!
//! ```sh
//! cargo run --example dynamic_workload
//! ```

use s_core::sim::{PolicyKind, Scenario, TrafficPhase};
use s_core::traffic::{TrafficIntensity, WorkloadConfig};

fn main() {
    let mut scenario = Scenario::small_canonical(TrafficIntensity::Sparse, 31);
    scenario.policy = PolicyKind::HighestLevelFirst;
    let mut session = scenario.session().expect("preset scenario is feasible");
    let num_vms = session.traffic().num_vms();

    // Three epochs: the original workload, a completely re-clustered one
    // (services redeployed), then a denser variant of the second.
    let workload_b = WorkloadConfig::new(num_vms, 777).generate();
    let workload_c = WorkloadConfig::new(num_vms, 777)
        .with_intensity(TrafficIntensity::Medium)
        .generate();
    let phases = vec![
        TrafficPhase {
            duration_s: 250.0,
            traffic: session.traffic().clone(),
        },
        TrafficPhase {
            duration_s: 250.0,
            traffic: workload_b,
        },
        TrafficPhase {
            duration_s: 250.0,
            traffic: workload_c,
        },
    ];

    let reports = session.run_phases(&phases).expect("phases bind cleanly");

    println!("S-CORE across three traffic epochs (250 s each):\n");
    for (i, report) in reports.iter().enumerate() {
        println!(
            "epoch {}: cost {:.3e} -> {:.3e} ({:>5.1}% reduction), {:>3} migrations, {:>6.1} MB moved",
            i + 1,
            report.initial_cost,
            report.final_cost,
            (1.0 - report.final_cost / report.initial_cost) * 100.0,
            report.migrations.len(),
            report.total_migration_bytes() / (1024.0 * 1024.0),
        );
    }
    println!(
        "\nEach epoch starts with the *previous* epoch's allocation — the TM shift \
         re-raises the cost and the circulating token locks onto the new pattern \
         without any central recomputation."
    );
}
