//! A DC operator's consolidation campaign: sweep the migration cost `c_m`
//! and pick the operating point balancing communication-cost reduction
//! against migration churn (bytes moved, cumulative downtime).
//!
//! This exercises Theorem 1's role as a *knob*: with `c_m = 0` every
//! improving move happens; raising `c_m` keeps only the big wins.
//!
//! ```sh
//! cargo run --example consolidation_campaign
//! ```

use s_core::baselines::{GaConfig, GeneticOptimizer};
use s_core::core::CostModel;
use s_core::sim::{PolicyKind, Scenario};
use s_core::traffic::TrafficIntensity;

fn main() {
    let base = Scenario::small_canonical(TrafficIntensity::Medium, 7);
    let model = CostModel::paper_default();

    // The centralized GA bound, for context (the paper's "optimal").
    let ga_session = base.session().expect("preset scenario is feasible");
    let ga = GeneticOptimizer::new(
        ga_session.topo().as_ref(),
        ga_session.traffic(),
        model.clone(),
        ga_session.cluster().server_spec().vm_slots,
        GaConfig::fast(),
    )
    .run();
    println!(
        "GA-optimal cost bound: {:.3e} ({} generations)\n",
        ga.best_cost, ga.generations
    );

    println!(
        "{:>12} {:>10} {:>12} {:>12} {:>14} {:>12}",
        "cm", "migrations", "final cost", "vs GA", "bytes moved", "downtime"
    );
    for cm_scale in [0.0, 1e8, 1e9, 5e9, 2e10] {
        let mut scenario = base.clone();
        scenario.policy = PolicyKind::HighestLevelFirst;
        scenario.timing.t_end_s = 400.0;
        scenario.engine = scenario.engine.with_migration_cost(cm_scale);
        let mut session = scenario.session().expect("preset scenario is feasible");
        session.run_to_horizon();
        let report = session.report();
        println!(
            "{:>12.0} {:>10} {:>12.3e} {:>11.2}x {:>11.1} MB {:>9.0} ms",
            cm_scale,
            report.migrations.len(),
            report.final_cost,
            report.final_cost / ga.best_cost,
            report.total_migration_bytes() / (1024.0 * 1024.0),
            report.total_downtime_s() * 1e3,
        );
    }
    println!(
        "\nHigher cm trades residual communication cost for drastically less \
         migration traffic — Theorem 1 as an operator policy knob."
    );
}
