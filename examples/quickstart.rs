//! Quickstart: run S-CORE on a small data center and watch the
//! communication cost fall.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use s_core::core::{CostModel, HighestLevelFirst, ScoreEngine, TokenRing};
use s_core::sim::{build_world, ScenarioConfig};
use s_core::traffic::TrafficIntensity;

fn main() {
    // A 32-rack canonical tree with 320 VMs running a sparse, clustered
    // workload, initially placed at random.
    let scenario = ScenarioConfig::small_canonical(TrafficIntensity::Sparse, 42);
    let mut world = build_world(&scenario);
    let model = CostModel::paper_default();

    let initial =
        model.total_cost(world.cluster.allocation(), &world.traffic, world.cluster.topo());
    println!("servers: {}", world.topo.num_servers());
    println!("VMs:     {}", world.traffic.num_vms());
    println!("initial communication cost: {initial:.3e}");

    // Circulate the migration token with the Highest-Level-First policy.
    let mut ring = TokenRing::new(
        ScoreEngine::paper_default(),
        HighestLevelFirst::new(),
        world.traffic.num_vms(),
    );
    for iteration in 1..=5 {
        let stats = ring.run_iteration(&mut world.cluster, &world.traffic);
        let cost =
            model.total_cost(world.cluster.allocation(), &world.traffic, world.cluster.topo());
        println!(
            "iteration {iteration}: {:>4} migrations ({:>5.1}% of VMs), cost {cost:.3e} ({:.1}% of initial)",
            stats.migrations,
            stats.migration_ratio() * 100.0,
            cost / initial * 100.0,
        );
    }

    let final_cost =
        model.total_cost(world.cluster.allocation(), &world.traffic, world.cluster.topo());
    println!(
        "total reduction: {:.1}% — migrations stop once the allocation is traffic-local",
        (1.0 - final_cost / initial) * 100.0
    );
}
