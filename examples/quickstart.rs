//! Quickstart: declare a scenario, run it, watch the communication cost
//! fall.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use s_core::sim::{PolicyKind, Scenario};

fn main() {
    // A 32-rack canonical tree with 320 VMs running a sparse, clustered
    // workload, initially placed at random, driven by the
    // Highest-Level-First token policy.
    let scenario = Scenario::builder()
        .canonical_tree(32, 5)
        .sparse_traffic(42)
        .policy(PolicyKind::HighestLevelFirst)
        .build();

    // The spec is plain data: print it, save it, re-load it.
    println!("scenario:\n{}\n", scenario.to_json_pretty());

    let mut session = scenario.session().expect("scenario is feasible");
    let initial = session.initial_cost();
    println!("servers: {}", session.topo().num_servers());
    println!("VMs:     {}", session.traffic().num_vms());
    println!("initial communication cost: {initial:.3e}");

    // Advance one full token iteration (|V| holds) at a time.
    for iteration in 1..=5 {
        let stats = session.run(1);
        let Some(stats) = stats.first() else { break };
        let cost = session.current_cost();
        println!(
            "iteration {iteration}: {:>4} migrations ({:>5.1}% of VMs), cost {cost:.3e} ({:.1}% of initial)",
            stats.migrations,
            stats.migration_ratio() * 100.0,
            cost / initial * 100.0,
        );
    }

    let report = session.report();
    println!(
        "total reduction: {:.1}% — migrations stop once the allocation is traffic-local",
        report.cost_reduction() * 100.0
    );
}
