//! # s-core — facade crate for the S-CORE reproduction
//!
//! One-stop import for the full reproduction of **"Scalable Traffic-Aware
//! Virtual Machine Management for Cloud Data Centers"** (Tso, Oikonomou,
//! Kavvadia, Pezaros — IEEE ICDCS 2014):
//!
//! * [`topology`] — canonical-tree / fat-tree / star DC fabrics, levels,
//!   link weights, addressing;
//! * [`traffic`] — synthetic DC workloads (sparse/medium/dense), traffic
//!   matrices, flows, CBR;
//! * [`flowtable`] — the dom0 flow-monitoring table;
//! * [`core`] — the S-CORE algorithm: cost model, token, RR/HLF policies,
//!   decision engine, cluster state;
//! * [`baselines`] — GA approximate-optimal, Remedy, naive placements, the
//!   NP-completeness reduction;
//! * [`xen`] — pre-copy live-migration model and dom0 control plane;
//! * [`trace`] — trace-driven time-varying workloads: traffic-delta
//!   event streams, JSONL persistence, synthetic generators;
//! * [`obs`] — metrics + decision-journal telemetry, attachable to any
//!   session or daemon without perturbing results;
//! * [`sim`] — the flow-level discrete-event simulator and the
//!   `Scenario`/`Session` experiment API.
//!
//! ## Quickstart
//!
//! Every experiment is two moves: *declare* a [`sim::Scenario`] (builder,
//! preset, or JSON — the spec is fully serde-round-trippable), then
//! *materialize* it into a [`sim::Session`] and run:
//!
//! ```
//! use s_core::sim::{PolicyKind, Scenario};
//!
//! let scenario = Scenario::builder()
//!     .canonical_tree(32, 5)
//!     .sparse_traffic(42)
//!     .policy(PolicyKind::HighestLevelFirst)
//!     .horizon(60.0)
//!     .build();
//!
//! let mut session = scenario.session().expect("scenario is feasible");
//! session.run_to_horizon();
//! let report = session.report();
//! println!(
//!     "communication cost: {:.3e} -> {:.3e} ({} migrations)",
//!     report.initial_cost,
//!     report.final_cost,
//!     report.migrations.len()
//! );
//! assert!(report.final_cost <= report.initial_cost);
//!
//! // The spec round-trips through JSON, and the report serializes to the
//! // same machine-readable format every experiment binary emits.
//! assert_eq!(Scenario::from_json(&scenario.to_json()).unwrap(), scenario);
//! let _json = report.to_json();
//! ```
//!
//! See `examples/` for richer scenarios (dynamic workloads, custom
//! fabrics, `c_m` sweeps) and `crates/experiments` for the binaries
//! regenerating every figure of the paper.

pub use score_baselines as baselines;
pub use score_core as core;
pub use score_flowtable as flowtable;
pub use score_obs as obs;
pub use score_sim as sim;
pub use score_topology as topology;
pub use score_trace as trace;
pub use score_traffic as traffic;
pub use score_xen as xen;
