//! # s-core — facade crate for the S-CORE reproduction
//!
//! One-stop import for the full reproduction of **"Scalable Traffic-Aware
//! Virtual Machine Management for Cloud Data Centers"** (Tso, Oikonomou,
//! Kavvadia, Pezaros — IEEE ICDCS 2014):
//!
//! * [`topology`] — canonical-tree / fat-tree / star DC fabrics, levels,
//!   link weights, addressing;
//! * [`traffic`] — synthetic DC workloads (sparse/medium/dense), traffic
//!   matrices, flows, CBR;
//! * [`flowtable`] — the dom0 flow-monitoring table;
//! * [`core`] — the S-CORE algorithm: cost model, token, RR/HLF policies,
//!   decision engine, cluster state;
//! * [`baselines`] — GA approximate-optimal, Remedy, naive placements, the
//!   NP-completeness reduction;
//! * [`xen`] — pre-copy live-migration model and dom0 control plane;
//! * [`sim`] — the flow-level discrete-event simulator and scenario
//!   runner.
//!
//! ## Quickstart
//!
//! ```
//! use s_core::sim::{build_world, run_simulation, PolicyKind, ScenarioConfig, SimConfig};
//! use s_core::traffic::TrafficIntensity;
//!
//! let scenario = ScenarioConfig::small_canonical(TrafficIntensity::Sparse, 42);
//! let mut world = build_world(&scenario);
//! let config = SimConfig { t_end_s: 60.0, ..SimConfig::paper_default() };
//! let report = run_simulation(
//!     &mut world.cluster,
//!     &world.traffic,
//!     PolicyKind::HighestLevelFirst,
//!     &config,
//! );
//! println!(
//!     "communication cost: {:.3e} -> {:.3e} ({} migrations)",
//!     report.initial_cost,
//!     report.final_cost,
//!     report.migrations.len()
//! );
//! assert!(report.final_cost <= report.initial_cost);
//! ```
//!
//! See `examples/` for richer scenarios and `crates/experiments` for the
//! binaries regenerating every figure of the paper.

pub use score_baselines as baselines;
pub use score_core as core;
pub use score_flowtable as flowtable;
pub use score_sim as sim;
pub use score_topology as topology;
pub use score_traffic as traffic;
pub use score_xen as xen;
