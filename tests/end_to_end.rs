//! Cross-crate integration tests driven through the `s-core` facade.

use rand::rngs::StdRng;
use rand::SeedableRng;
use s_core::baselines::{exhaustive_optimal, random_placement, GaConfig, GeneticOptimizer};
use s_core::core::{
    Allocation, CapacityReport, Cluster, CostModel, HighestLevelFirst, RoundRobin, ScoreEngine,
    ServerSpec, Token, TokenRing, VmSpec,
};
use s_core::topology::{
    AddressPlan, CanonicalTree, CanonicalTreeBuilder, ServerId, Topology, VmId,
};
use s_core::traffic::{PairTrafficBuilder, WorkloadConfig};
use s_core::xen::ControlPlane;
use std::sync::Arc;

fn small_cluster(seed: u64) -> (Cluster, s_core::traffic::PairTraffic) {
    let topo: Arc<dyn Topology> = Arc::new(CanonicalTree::small());
    let traffic = WorkloadConfig::new(48, seed).generate();
    let alloc = random_placement(48, 16, 16, &mut StdRng::seed_from_u64(seed));
    let cluster = Cluster::new(
        topo,
        ServerSpec::paper_default(),
        VmSpec::paper_default(),
        &traffic,
        alloc,
    )
    .unwrap();
    (cluster, traffic)
}

#[test]
fn facade_pipeline_reduces_cost_and_respects_invariants() {
    let (mut cluster, traffic) = small_cluster(1);
    let model = CostModel::paper_default();
    let initial = model.total_cost(cluster.allocation(), &traffic, cluster.topo());

    let mut ring = TokenRing::new(ScoreEngine::paper_default(), HighestLevelFirst::new(), 48);
    let stats = ring.run_iterations(6, &mut cluster, &traffic);
    let final_cost = model.total_cost(cluster.allocation(), &traffic, cluster.topo());

    assert!(
        final_cost < initial,
        "S-CORE must improve a random placement"
    );
    assert_eq!(stats.last().unwrap().migrations, 0, "must converge");
    assert!(cluster.allocation().is_consistent());
    for s in cluster.topo().servers() {
        assert!(cluster.allocation().occupancy(s) <= 16);
    }
}

#[test]
fn ga_bound_dominates_distributed_result_on_average() {
    // The GA sees the whole instance; S-CORE only local info. Averaged
    // over seeds, the GA must be at least as good.
    let model = CostModel::paper_default();
    let mut ga_total = 0.0;
    let mut score_total = 0.0;
    for seed in 0..6 {
        let (mut cluster, traffic) = small_cluster(seed);
        let ga = GeneticOptimizer::new(
            cluster.topo(),
            &traffic,
            model.clone(),
            16,
            GaConfig::fast(),
        )
        .run();
        let mut ring = TokenRing::new(ScoreEngine::paper_default(), RoundRobin::new(), 48);
        ring.run_iterations(6, &mut cluster, &traffic);
        ga_total += ga.best_cost;
        score_total += model.total_cost(cluster.allocation(), &traffic, cluster.topo());
    }
    assert!(
        ga_total <= score_total * 1.1,
        "GA mean {ga_total} should not lose badly to S-CORE mean {score_total}"
    );
}

#[test]
fn exhaustive_bounds_ga_and_score_on_tiny_instance() {
    let topo = CanonicalTreeBuilder::new()
        .racks(2)
        .hosts_per_rack(2)
        .racks_per_agg(2)
        .cores(1)
        .build()
        .unwrap();
    let mut b = PairTrafficBuilder::new(6);
    b.add(VmId::new(0), VmId::new(3), 100.0);
    b.add(VmId::new(1), VmId::new(4), 80.0);
    b.add(VmId::new(2), VmId::new(5), 60.0);
    b.add(VmId::new(0), VmId::new(1), 5.0);
    let traffic = b.build();
    let model = CostModel::paper_default();

    let exact = exhaustive_optimal(&topo, &traffic, &model, 3);
    let ga = GeneticOptimizer::new(&topo, &traffic, model.clone(), 3, GaConfig::fast()).run();
    assert!(
        ga.best_cost + 1e-9 >= exact.best_cost,
        "exhaustive is a lower bound"
    );

    let alloc = Allocation::from_fn(6, 4, |vm| ServerId::new(vm.get() % 4));
    let topo_arc: Arc<dyn Topology> = Arc::new(topo);
    let spec = ServerSpec {
        vm_slots: 3,
        ..ServerSpec::paper_default()
    };
    let mut cluster =
        Cluster::new(topo_arc, spec, VmSpec::paper_default(), &traffic, alloc).unwrap();
    let mut ring = TokenRing::new(ScoreEngine::paper_default(), RoundRobin::new(), 6);
    ring.run_iterations(8, &mut cluster, &traffic);
    let score_cost = model.total_cost(cluster.allocation(), &traffic, cluster.topo());
    assert!(
        score_cost + 1e-9 >= exact.best_cost,
        "S-CORE cannot beat the true optimum"
    );
}

#[test]
fn token_travels_the_control_plane() {
    // Wire a token through the dom0 NAT machinery end to end.
    let topo = CanonicalTree::small();
    let plan = AddressPlan::new(&topo);
    let mut cp = ControlPlane::new();
    for s in 0..topo.num_servers() as u32 {
        cp.add_host(
            plan.server_ip(ServerId::new(s)),
            CapacityReport {
                free_slots: 16,
                free_ram_mb: 4096,
            },
        );
    }
    // VM addresses from a disjoint space, routed to their hosts.
    let vm_ip = |v: u32| s_core::topology::Ip4::from_octets(172, 16, (v >> 8) as u8, v as u8);
    for v in 0..32u32 {
        cp.place_vm(vm_ip(v), (v % 16) as usize);
    }

    let mut token = Token::for_vms((0..32).map(VmId::new));
    token.set_level(VmId::new(3), s_core::topology::Level::CORE);
    let wire = token.encode();

    // Pass the token around the full ring.
    let mut holder = VmId::new(0);
    for _ in 0..32 {
        let host = cp.send_token(vm_ip(holder.get()), &wire).unwrap();
        assert_eq!(host, (holder.get() % 16) as usize);
        holder = token.next_after(holder).unwrap();
    }
    assert_eq!(holder, VmId::new(0), "round robin wraps to the start");
    assert_eq!(cp.stats().tokens, 32);
    assert_eq!(cp.stats().bytes, 32 * 32 * 5); // 32 passes x 32 entries x 5 B

    // Location and capacity probes resolve correctly.
    let dom0 = cp.location_probe(vm_ip(5)).unwrap();
    assert_eq!(dom0, plan.server_ip(ServerId::new(5)));
    let report = cp.capacity_probe(dom0).unwrap();
    assert!(report.can_host(&VmSpec::paper_default()));

    // The decoded token matches what was sent.
    let decoded = Token::decode(&wire).unwrap();
    assert_eq!(decoded, token);
}

#[test]
fn runs_are_deterministic_across_invocations() {
    let run = |seed| {
        let (mut cluster, traffic) = small_cluster(seed);
        let mut ring = TokenRing::new(ScoreEngine::paper_default(), HighestLevelFirst::new(), 48);
        ring.run_iterations(5, &mut cluster, &traffic);
        CostModel::paper_default().total_cost(cluster.allocation(), &traffic, cluster.topo())
    };
    assert_eq!(run(3), run(3));
    assert_ne!(run(3), run(4));
}
