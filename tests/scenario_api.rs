//! Acceptance tests for the `Scenario`/`Session` API: serde round-trips
//! that preserve behavior exactly, and a smoke matrix over every policy
//! and fabric family.

use s_core::sim::{
    EngineSpec, PlacementSpec, PolicyKind, RunReport, Scenario, TopologySpec, WorkloadSpec,
};
use s_core::traffic::TrafficIntensity;

fn quick(policy: PolicyKind, topology: TopologySpec) -> Scenario {
    let mut scenario = Scenario::builder()
        .topology(topology)
        .sparse_traffic(7)
        .policy(policy)
        .horizon(60.0)
        .build();
    scenario.timing.token_hold_s = 0.05;
    scenario.timing.token_pass_s = 0.01;
    scenario
}

/// Spec → JSON → spec must be identity.
#[test]
fn scenario_json_round_trip_is_identity() {
    let scenarios = [
        Scenario::small_canonical(TrafficIntensity::Sparse, 1),
        Scenario::small_fattree(TrafficIntensity::Medium, 2),
        Scenario::paper_canonical(TrafficIntensity::Dense, 3),
        Scenario::builder()
            .fat_tree(4)
            .dense_traffic(9)
            .policy(PolicyKind::HighestCostFirst)
            .migration_cost(5e8)
            .placement(PlacementSpec::Striped)
            .num_vms(64)
            .horizon(90.0)
            .seed(1234)
            .build(),
        Scenario::builder()
            .star(16)
            .policy(PolicyKind::Random)
            .build(),
        // Explicit pair lists and non-default resource specs round-trip
        // like every other dimension.
        Scenario::builder()
            .star(8)
            .explicit_pairs(6, vec![(0, 1, 2.5e8), (1, 2, 1e7), (4, 5, 3.0)])
            .build(),
        Scenario::builder()
            .server_spec(s_core::core::ServerSpec {
                vm_slots: 4,
                ram_mb: 8192,
                cpu_cores: 16.0,
                nic_bps: 10e9,
            })
            .vm_spec(s_core::core::VmSpec {
                ram_mb: 1024,
                cpu_cores: 2.0,
            })
            .build(),
    ];
    for scenario in scenarios {
        let json = scenario.to_json();
        let back = Scenario::from_json(&json).expect("round-trip parses");
        assert_eq!(back, scenario, "round-trip must be identity for {json}");
        let pretty = Scenario::from_json(&scenario.to_json_pretty()).expect("pretty parses");
        assert_eq!(pretty, scenario);
    }
}

/// A deserialized spec must produce *bit-identical* session behavior
/// under a fixed seed: same costs, same migrations, same everything.
#[test]
fn deserialized_scenario_behaves_identically() {
    let original = quick(
        PolicyKind::HighestLevelFirst,
        TopologySpec::small_canonical(),
    );
    let restored = Scenario::from_json(&original.to_json()).expect("round-trip parses");

    let run = |scenario: &Scenario| -> RunReport {
        let mut session = scenario.session().expect("scenario is feasible");
        session.run_to_horizon();
        session.report()
    };
    let a = run(&original);
    let b = run(&restored);
    assert_eq!(
        a, b,
        "original and round-tripped scenarios must behave identically"
    );
    assert!(
        a.final_cost < a.initial_cost,
        "the run actually did something"
    );
    assert!(!a.migrations.is_empty());
}

/// Every policy × both paper topologies runs one full iteration.
#[test]
fn smoke_every_policy_on_both_topologies() {
    for topology in [
        TopologySpec::small_canonical(),
        TopologySpec::small_fattree(),
    ] {
        for policy in PolicyKind::all() {
            let mut scenario = quick(policy, topology);
            // One iteration needs |V| holds; leave generous sim time.
            scenario.timing.t_end_s = 1e5;
            let mut session = scenario
                .session()
                .unwrap_or_else(|e| panic!("{}/{}: {e}", topology.name(), policy.name()));
            let stats = session.run(1);
            assert_eq!(
                stats.len(),
                1,
                "{}/{}: one iteration must complete",
                topology.name(),
                policy.name()
            );
            assert_eq!(stats[0].steps, session.traffic().num_vms() as usize);
            assert!(
                session.current_cost() <= session.initial_cost() + 1e-9,
                "{}/{}: cost must not increase",
                topology.name(),
                policy.name()
            );
            let report = session.report();
            assert_eq!(report.policy, policy.name());
            assert_eq!(report.topology, topology.name());
            // The unified report serializes for every combination.
            let back = RunReport::from_json(&report.to_json()).expect("report round-trips");
            assert_eq!(back, report);
        }
    }
}

/// The engine spec's knobs reach the decision procedure: a prohibitive
/// migration cost suppresses all migrations.
#[test]
fn migration_cost_knob_reaches_the_engine() {
    let mut scenario = quick(
        PolicyKind::HighestLevelFirst,
        TopologySpec::small_canonical(),
    );
    scenario.engine = EngineSpec::Paper.with_migration_cost(1e30);
    let mut session = scenario.session().expect("scenario is feasible");
    session.run_to_horizon();
    let report = session.report();
    assert!(
        report.migrations.is_empty(),
        "a prohibitive c_m must veto every move"
    );
    assert_eq!(report.final_cost, report.initial_cost);
}

/// Unusable timing parameters are rejected at materialization instead
/// of hanging (zero sample interval) or panicking (negative delays)
/// inside the event loop.
#[test]
fn bad_timing_is_an_error_not_a_hang() {
    use s_core::sim::ScenarioError;
    let base = quick(PolicyKind::RoundRobin, TopologySpec::small_canonical());
    for (patch, label) in [
        ((0.0, 5.0, 0.05, 0.01), "zero horizon"),
        ((60.0, 0.0, 0.05, 0.01), "zero sample interval"),
        ((60.0, 5.0, -0.05, 0.01), "negative token hold"),
        ((60.0, 5.0, 0.05, f64::NAN), "NaN token pass"),
        ((60.0, 5.0, 0.0, 0.0), "zero token hold and pass"),
    ] {
        let mut scenario = base.clone();
        (
            scenario.timing.t_end_s,
            scenario.timing.sample_interval_s,
            scenario.timing.token_hold_s,
            scenario.timing.token_pass_s,
        ) = patch;
        // The spec still round-trips (it is just data) …
        if patch.3.is_finite() {
            assert_eq!(Scenario::from_json(&scenario.to_json()).unwrap(), scenario);
        }
        // … but cannot be materialized.
        assert!(
            matches!(scenario.session(), Err(ScenarioError::Timing(_))),
            "{label} must be rejected"
        );
    }
}

/// Non-finite engine parameters are rejected at materialization: the
/// JSON writer renders them as `null`, so an emitted spec would be
/// unreloadable.
#[test]
fn non_finite_engine_params_are_an_error() {
    use s_core::sim::ScenarioError;
    let mut scenario = quick(PolicyKind::RoundRobin, TopologySpec::small_canonical());
    scenario.engine = EngineSpec::Paper.with_migration_cost(f64::NAN);
    assert!(matches!(scenario.session(), Err(ScenarioError::Engine(_))));
}

/// The builder's canonical-tree derivation must always pick a valid
/// aggregation grouping (a divisor of the rack count).
#[test]
fn canonical_tree_builder_accepts_awkward_rack_counts() {
    for racks in [1u32, 2, 3, 9, 11, 13, 14, 15, 17, 18, 32, 128] {
        let scenario = Scenario::builder()
            .canonical_tree(racks, 2)
            .num_vms(racks)
            .horizon(1.0)
            .build();
        let session = scenario
            .session()
            .unwrap_or_else(|e| panic!("racks={racks}: {e}"));
        assert_eq!(session.topo().num_racks(), racks as usize);
    }
}

/// Workload specs with an explicit population are honoured.
#[test]
fn fixed_vm_population_is_honoured() {
    let scenario = Scenario::builder().num_vms(48).sparse_traffic(5).build();
    assert_eq!(
        scenario.workload,
        WorkloadSpec::FixedVms {
            intensity: TrafficIntensity::Sparse,
            num_vms: 48,
            seed: 5
        }
    );
    let session = scenario.session().expect("scenario is feasible");
    assert_eq!(session.traffic().num_vms(), 48);
    assert_eq!(session.cluster().num_vms(), 48);
}
