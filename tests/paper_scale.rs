//! Full paper-scale smoke tests (2560-host canonical tree, k = 16
//! fat-tree). Ignored by default; run explicitly with
//!
//! ```sh
//! cargo test --release --test paper_scale -- --ignored
//! ```

use s_core::sim::Scenario;
use s_core::topology::{CanonicalTree, FatTree, Topology};
use s_core::traffic::TrafficIntensity;

#[test]
fn paper_topologies_have_the_published_dimensions() {
    // Cheap enough to always run.
    let tree = CanonicalTree::paper_default();
    assert_eq!(tree.num_servers(), 2560);
    assert_eq!(tree.num_racks(), 128);
    let fat = FatTree::paper_default();
    assert_eq!(fat.num_servers(), 1024);
    assert!(tree.graph().is_connected());
    assert!(fat.graph().is_connected());
}

#[test]
#[ignore = "paper-scale run: ~5120 VMs, minutes in debug builds"]
fn full_scale_canonical_tree_converges() {
    let scenario = Scenario::paper_canonical(TrafficIntensity::Sparse, 7);
    let mut session = scenario
        .session()
        .expect("paper-scale scenario is feasible");
    let num_vms = session.traffic().num_vms();
    assert_eq!(num_vms, 5120);
    let initial = session.initial_cost();
    let stats = session.run(3);
    let final_cost = session.current_cost();
    assert!(
        final_cost < initial * 0.5,
        "{initial:.3e} -> {final_cost:.3e}"
    );
    assert!(stats[0].migration_ratio() > 0.3);
    assert!(stats[2].migration_ratio() < stats[0].migration_ratio() * 0.25);
}

#[test]
#[ignore = "paper-scale run: 1024-host fat-tree"]
fn full_scale_fattree_converges() {
    let scenario = Scenario::paper_fattree(TrafficIntensity::Sparse, 7);
    let mut session = scenario
        .session()
        .expect("paper-scale scenario is feasible");
    let num_vms = session.traffic().num_vms();
    assert_eq!(num_vms, 2048);
    let initial = session.initial_cost();
    session.run(3);
    let final_cost = session.current_cost();
    assert!(
        final_cost < initial * 0.6,
        "{initial:.3e} -> {final_cost:.3e}"
    );
}
