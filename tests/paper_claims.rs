//! The paper's headline claims, asserted as integration tests.
//!
//! Each test names the claim and the paper section it comes from. These are
//! shape assertions (who wins, roughly by how much, where trends point),
//! not absolute-number matches — our substrate is a simulator, not the
//! authors' testbed.

use s_core::baselines::{verify_reduction, GraphPartitionInstance, Remedy, RemedyConfig};
use s_core::core::{CostModel, LinkLoadMap};
use s_core::sim::{PolicyKind, Scenario};
use s_core::topology::Level;
use s_core::traffic::{CbrLoad, TrafficIntensity};
use s_core::xen::{load_sweep, migrated_bytes_histogram, PreCopyModel};

/// §VI-B / Fig. 2: "the ratio of migrated VMs plummets after the second
/// token-passing iteration".
#[test]
fn convergence_within_two_iterations() {
    let mut scenario = Scenario::small_canonical(TrafficIntensity::Sparse, 7);
    scenario.policy = PolicyKind::RoundRobin;
    let topo = scenario
        .topology
        .build()
        .expect("preset dimensions are valid");
    let num_vms = scenario.workload.num_vms(topo.as_ref()) as f64;
    scenario.timing.t_end_s = 6.5 * num_vms * 0.06;
    scenario.timing.token_hold_s = 0.05;
    scenario.timing.token_pass_s = 0.01;
    let mut session = scenario.session().expect("preset scenario is feasible");
    session.run_to_horizon();
    let report = session.report();
    let ratios: Vec<f64> = report.migration_ratios.iter().take(5).copied().collect();
    assert!(
        ratios.len() >= 4,
        "need at least 4 iterations, got {}",
        ratios.len()
    );
    assert!(
        ratios[0] > 0.1,
        "first iteration migrates substantially: {ratios:?}"
    );
    assert!(
        ratios[2] < ratios[0] * 0.25,
        "third iteration must be a small fraction of the first: {ratios:?}"
    );
}

/// §VI-B / Fig. 3: S-CORE reaches a large share of the GA-optimal
/// reduction (72–87% at paper scale) and HLF converges at least as close
/// as RR.
#[test]
fn score_captures_most_of_the_optimal_reduction() {
    let (cells, _) = score_experiments_like_fig3();
    for (name, reduction) in &cells {
        assert!(
            *reduction > 0.7,
            "{name}: captured only {:.0}% of the GA-optimal reduction",
            reduction * 100.0
        );
    }
}

fn score_experiments_like_fig3() -> (Vec<(String, f64)>, ()) {
    use s_core::baselines::{GaConfig, GeneticOptimizer};
    let base = Scenario::small_canonical(TrafficIntensity::Sparse, 11);
    let ga_session = base.session().expect("preset scenario is feasible");
    let ga = GeneticOptimizer::new(
        ga_session.topo().as_ref(),
        ga_session.traffic(),
        CostModel::paper_default(),
        16,
        GaConfig::fast(),
    )
    .run();
    let mut cells = Vec::new();
    for policy in PolicyKind::paper_policies() {
        let mut scenario = base.clone();
        scenario.policy = policy;
        scenario.timing.t_end_s = 500.0;
        let mut session = scenario.session().expect("preset scenario is feasible");
        session.run_to_horizon();
        let report = session.report();
        let reduction = (report.initial_cost - report.final_cost)
            / (report.initial_cost - ga.best_cost).max(f64::MIN_POSITIVE);
        cells.push((policy.name().to_string(), reduction));
    }
    (cells, ())
}

/// §VI-B / Fig. 4: on a sparse TM, S-CORE reduces communication cost far
/// more than Remedy (paper: ~40% vs ~10%) and relieves core links more.
#[test]
fn score_outperforms_remedy() {
    let mut scenario = Scenario::small_canonical(TrafficIntensity::Sparse, 23);
    scenario.policy = PolicyKind::HighestLevelFirst;
    scenario.timing.t_end_s = 500.0;

    let mut score_session = scenario.session().expect("preset scenario is feasible");
    let initial = score_session.initial_cost();
    score_session.run_to_horizon();
    let report = score_session.report();
    let score_reduction = 1.0 - report.final_cost / initial;

    let mut remedy_session = scenario.session().expect("preset scenario is feasible");
    {
        let (cluster, traffic) = remedy_session.split_mut();
        Remedy::new(RemedyConfig::paper_default()).run(cluster, traffic);
    }
    let remedy_cost = remedy_session.current_cost();
    let remedy_reduction = 1.0 - remedy_cost / initial;

    assert!(
        score_reduction > remedy_reduction + 0.1,
        "S-CORE ({:.0}%) must clearly beat Remedy ({:.0}%)",
        score_reduction * 100.0,
        remedy_reduction * 100.0
    );

    // Core-layer relief (Fig. 4a): S-CORE shifts the core CDF further left.
    let score_core = LinkLoadMap::compute(
        score_session.cluster().allocation(),
        score_session.traffic(),
        score_session.cluster().topo(),
    )
    .utilization_cdf(Level::CORE);
    let remedy_core = LinkLoadMap::compute(
        remedy_session.cluster().allocation(),
        remedy_session.traffic(),
        remedy_session.cluster().topo(),
    )
    .utilization_cdf(Level::CORE);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(mean(&score_core) < mean(&remedy_core));
}

/// §VI-C / Fig. 5b: migrated bytes ≈ 127 ± 11 MB for 196 MB VMs.
#[test]
fn migrated_bytes_distribution_matches() {
    let (_, stats) = migrated_bytes_histogram(&PreCopyModel::default(), 300, 5.0, 99);
    assert!((stats.mean - 127.0).abs() < 8.0, "mean {:.1}", stats.mean);
    assert!((stats.std - 11.0).abs() < 7.0, "std {:.1}", stats.std);
}

/// §VI-C / Fig. 5c+5d: migration time 2.94 s → 9.34 s sub-linearly;
/// downtime an order of magnitude smaller, below 50 ms throughout.
#[test]
fn migration_time_and_downtime_anchors() {
    let sweep = load_sweep(&PreCopyModel::default(), 80, 5);
    assert!((sweep[0].time.mean - 2.94).abs() < 0.5);
    assert!((sweep[10].time.mean - 9.34).abs() < 1.6);
    for p in &sweep {
        assert!(p.downtime.max < 0.050);
        assert!(
            p.downtime.mean < p.time.mean / 10.0,
            "downtime is an order smaller"
        );
    }
    // Sub-linear: the second half of the sweep grows slower than 1:1 with
    // the first jump.
    let first_jump = sweep[1].time.mean - sweep[0].time.mean;
    let mid_jump = sweep[6].time.mean - sweep[5].time.mean;
    assert!(mid_jump < first_jump * 1.5);
    let _ = CbrLoad::paper_sweep();
}

/// Appendix: the GP → OVMA reduction is cost-equivalent (NP-completeness
/// construction), executable on concrete instances.
#[test]
fn np_reduction_equivalence() {
    let gp = GraphPartitionInstance {
        vertices: 6,
        edges: vec![
            (0, 1, 4.0),
            (1, 2, 1.0),
            (2, 3, 4.0),
            (3, 4, 1.0),
            (4, 5, 4.0),
            (5, 0, 1.0),
        ],
        capacity: 3,
        goal: 3.0,
    };
    assert!(verify_reduction(&gp));
}

/// §V-B2: the token wire format is 5 bytes per VM — "the size of the
/// message is of the order of the number of VMs in the network".
#[test]
fn token_size_is_linear_in_population() {
    use s_core::core::Token;
    use s_core::topology::VmId;
    for n in [10u32, 1000, 100_000] {
        let token = Token::for_vms((0..n).map(VmId::new));
        assert_eq!(token.encoded_len(), n as usize * 5);
    }
}
