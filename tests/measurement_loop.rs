//! The full measurement loop of §IV/§V-B: ground-truth traffic is sampled
//! into discrete flows, observed through the windowed rate estimator (as
//! the dom0 flow table would), and the *estimated* rates drive S-CORE's
//! decisions. Decisions under estimates must match decisions under ground
//! truth once the window has converged.

use s_core::core::{
    Allocation, Cluster, CostModel, RoundRobin, ScoreEngine, ServerSpec, TokenRing, VmSpec,
};
use s_core::topology::{CanonicalTree, ServerId, Topology};
use s_core::traffic::{FlowSampler, RateEstimator, WorkloadConfig};
use std::sync::Arc;

#[test]
fn estimated_rates_drive_equivalent_decisions() {
    let topo: Arc<dyn Topology> = Arc::new(CanonicalTree::small());
    let num_vms = 40u32;
    let truth = WorkloadConfig::new(num_vms, 99).generate();

    // Observe one full measurement window of sampled flows.
    let window_s = 60.0;
    let flows = FlowSampler::new(window_s, 5).sample(&truth);
    let mut estimator = RateEstimator::new(num_vms, window_s);
    for f in &flows {
        // Attribute each flow's bytes to its midpoint; the window makes
        // exact timing immaterial.
        estimator.observe(f.src, f.dst, f.bytes, f.start_s + f.duration_s / 2.0);
    }
    let estimated = estimator.snapshot(window_s);

    // Estimated rates match ground truth within sampling error.
    assert_eq!(estimated.num_pairs(), truth.num_pairs());
    assert!(
        (estimated.total_rate() - truth.total_rate()).abs() < 1e-6 * truth.total_rate(),
        "window-aggregate rates must reproduce the ground truth: {} vs {}",
        estimated.total_rate(),
        truth.total_rate()
    );

    // Run S-CORE once against ground truth, once against the estimates.
    let run = |traffic: &s_core::traffic::PairTraffic| {
        let alloc = Allocation::from_fn(num_vms, 16, |vm| ServerId::new(vm.get() % 16));
        let mut cluster = Cluster::new(
            Arc::clone(&topo),
            ServerSpec::paper_default(),
            VmSpec::paper_default(),
            traffic,
            alloc,
        )
        .unwrap();
        let mut ring = TokenRing::new(ScoreEngine::paper_default(), RoundRobin::new(), num_vms);
        ring.run_iterations(5, &mut cluster, traffic);
        cluster
    };
    let truth_cluster = run(&truth);
    let est_cluster = run(&estimated);

    // Evaluate BOTH final allocations against the ground truth λ.
    let model = CostModel::paper_default();
    let cost_truth = model.total_cost(truth_cluster.allocation(), &truth, truth_cluster.topo());
    let cost_est = model.total_cost(est_cluster.allocation(), &truth, est_cluster.topo());
    assert!(
        cost_est <= cost_truth * 1.05 + 1e-9,
        "estimate-driven allocation ({cost_est:.3e}) must match truth-driven ({cost_truth:.3e})"
    );
}

#[test]
fn stale_estimates_decay_and_new_traffic_dominates() {
    // A pair that stops talking leaves the communication graph after one
    // window; a new pair shows up immediately.
    let num_vms = 4u32;
    let mut estimator = RateEstimator::new(num_vms, 30.0);
    use s_core::topology::VmId;
    for t in 0..30 {
        estimator.observe(VmId::new(0), VmId::new(1), 10_000.0, t as f64);
    }
    for t in 60..90 {
        estimator.observe(VmId::new(2), VmId::new(3), 10_000.0, t as f64);
    }
    let snap = estimator.snapshot(90.0);
    assert_eq!(
        snap.rate(VmId::new(0), VmId::new(1)),
        0.0,
        "stale pair must lapse"
    );
    assert!(snap.rate(VmId::new(2), VmId::new(3)) > 0.0);
    assert_eq!(snap.peers(VmId::new(0)).len(), 0);
}
