//! Acceptance tests for the trace-driven workload subsystem: a
//! `WorkloadSpec::Trace` scenario must run end-to-end through the
//! `Session` event clock, applying 100+ mid-run traffic deltas through
//! the sparse O(changed-pairs) path — zero full ledger resyncs — while
//! the incremental cost stays exact, and traces must round-trip through
//! both Scenario JSON and the JSONL file format.

use s_core::sim::{PolicyKind, Scenario, TraceSpec, WorkloadSpec};
use s_core::trace::{DiurnalShape, FlashCrowdShape, Trace};
use s_core::traffic::TrafficIntensity;

fn diurnal_scenario() -> Scenario {
    Scenario::builder()
        .trace(TraceSpec::Diurnal {
            num_vms: 256,
            intensity: TrafficIntensity::Sparse,
            seed: 77,
            shape: DiurnalShape {
                period_s: 150.0,
                amplitude: 0.6,
                step_s: 2.0,
                horizon_s: 300.0,
            },
        })
        .policy(PolicyKind::HighestLevelFirst)
        .seed(77)
        .build()
}

#[test]
fn trace_scenario_applies_hundreds_of_deltas_without_resync() {
    let scenario = diurnal_scenario();
    let mut session = scenario.session().expect("trace scenario materializes");
    session.run_to_horizon();
    let report = session.report();
    // ≥ 100 mid-run deltas through the event clock (149 sine steps).
    assert!(
        report.trace.events_applied >= 100,
        "only {} deltas applied",
        report.trace.events_applied
    );
    assert!(report.trace.pairs_repriced >= report.trace.events_applied);
    // Every one took the sparse path: no full Eq.-(2) resync.
    assert_eq!(session.ledger_resyncs(), 0);
    // And the incrementally maintained cost is still exact.
    let fresh = session.cost_model().total_cost(
        session.cluster().allocation(),
        session.traffic(),
        session.cluster().topo(),
    );
    assert!(
        (session.current_cost() - fresh).abs() <= 1e-9 * fresh.max(1.0),
        "ledger {} vs fresh {fresh}",
        session.current_cost()
    );
    // S-CORE still converges while the ground shifts under it.
    assert!(report.final_cost < report.initial_cost);
    assert!(!report.migrations.is_empty());
}

#[test]
fn trace_scenarios_are_deterministic_and_serializable() {
    let scenario = diurnal_scenario();
    // The spec round-trips through Scenario JSON like every other
    // workload dimension.
    let back = Scenario::from_json(&scenario.to_json()).unwrap();
    assert_eq!(back, scenario);
    // Two runs of the same spec agree on everything but wall-clock
    // rebind latencies.
    let run = |s: &Scenario| {
        let mut session = s.session().unwrap();
        session.run_to_horizon();
        session.report()
    };
    let (a, b) = (run(&scenario), run(&back));
    assert_eq!(a.cost_series, b.cost_series);
    assert_eq!(a.migrations, b.migrations);
    assert_eq!(a.trace.events_applied, b.trace.events_applied);
    assert_eq!(a.trace.pairs_repriced, b.trace.pairs_repriced);
}

#[test]
fn multi_segment_traces_report_per_phase() {
    // A marked trace: steady state, then a flash-crowd phase built from
    // explicit events, each segment reported separately.
    let trace = Trace::builder(6, 120.0)
        .base_pair(0, 1, 2e6)
        .base_pair(2, 3, 1e6)
        .base_pair(4, 5, 5e5)
        .set_rate(30.0, 0, 2, 8e6) // mid-segment delta
        .marker(60.0, "crowd")
        .set_rate(60.0, 0, 3, 9e6) // boundary fold into segment 2
        .scale_all(90.0, 0.5) // mid-segment delta in segment 2
        .build()
        .unwrap();
    let scenario = Scenario::builder()
        .star(6)
        .literal_trace(trace)
        .policy(PolicyKind::RoundRobin)
        .build();
    let mut session = scenario.session().unwrap();
    assert_eq!(session.trace_segments_remaining(), 1);
    let reports = session.run_trace().unwrap();
    assert_eq!(reports.len(), 2);
    assert_eq!(reports[0].trace.events_applied, 1);
    assert_eq!(reports[1].trace.events_applied, 1);
    assert_eq!(session.trace_segments_remaining(), 0);
    assert_eq!(session.ledger_resyncs(), 0);
}

#[test]
fn jsonl_files_round_trip_through_scenarios() {
    let scenario = Scenario::builder()
        .trace(TraceSpec::FlashCrowd {
            num_vms: 32,
            intensity: TrafficIntensity::Sparse,
            seed: 3,
            shape: FlashCrowdShape {
                spikes: 4,
                fanout: 4,
                surge_bps: 1e8,
                hold_s: 20.0,
                horizon_s: 200.0,
            },
        })
        .build();
    let trace = scenario.workload.build_trace().unwrap();
    let path = std::env::temp_dir().join("score_trace_api_test.jsonl");
    trace.save(&path).unwrap();
    let reloaded = Trace::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(reloaded, trace);
    // A literal scenario over the reloaded trace replays the same
    // schedule the generator spec produces.
    let literal = Scenario::builder()
        .workload(WorkloadSpec::Trace {
            spec: TraceSpec::Literal {
                trace: reloaded,
                seed: 3,
            },
        })
        .build();
    let run = |s: &Scenario| {
        let mut session = s.session().unwrap();
        session.run_to_horizon();
        session.report()
    };
    let (from_gen, from_file) = (run(&scenario), run(&literal));
    assert_eq!(from_gen.cost_series, from_file.cost_series);
    assert_eq!(
        from_gen.trace.events_applied,
        from_file.trace.events_applied
    );
}
